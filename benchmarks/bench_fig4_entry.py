"""FIG4 — Figure 4: the profile entry for EXAMPLE, regenerated.

Reconstructs the exact workload behind every number in the paper's
Figure 4 (see tests/test_figure4.py for the derivation), runs the full
analysis pipeline on it (the benchmarked operation), and prints the
entry next to the paper's values.
"""

import pytest

from repro.core import AnalysisOptions, analyze
from repro.report import format_entry

from benchmarks.conftest import report
from tests.test_figure4 import NAMES, figure4_profile
from tests.helpers import make_symbols, profile_data


def test_fig4_example_entry(benchmark):
    profile = benchmark(figure4_profile)
    entry = profile.entry("EXAMPLE")
    paper = {
        "%time": 41.5,
        "self": 0.50,
        "descendants": 3.00,
        "called": "10+4",
        "CALLER1": (0.20, 1.20, "4/10"),
        "CALLER2": (0.30, 1.80, "6/10"),
        "SUB1<cycle1>": (1.50, 1.00, "20/40"),
        "SUB2": (0.00, 0.50, "1/5"),
        "SUB3": (0.00, 0.00, "0/5"),
    }
    parents = {p.name: p for p in entry.parents}
    children = {c.name: c for c in entry.children}
    rows = [
        ("%time", paper["%time"], round(entry.percent, 1)),
        ("self", paper["self"], round(entry.self_seconds, 2)),
        ("descendants", paper["descendants"], round(entry.child_seconds, 2)),
        ("called", paper["called"], f"{entry.ncalls}+{entry.self_calls}"),
    ]
    for name, key in (("CALLER1", "CALLER1"), ("CALLER2", "CALLER2"),
                      ("SUB1", "SUB1<cycle1>"), ("SUB2", "SUB2"),
                      ("SUB3", "SUB3")):
        line = parents.get(name) or children.get(name)
        want = paper[key]
        rows.append(
            (
                key,
                f"{want[0]:.2f}/{want[1]:.2f} {want[2]}",
                f"{line.self_share:.2f}/{line.child_share:.2f} "
                f"{line.count}/{line.total}",
            )
        )
    report("Figure 4: EXAMPLE entry, paper vs measured",
           rows, header=("field", "paper", "measured"))
    print()
    print(format_entry(profile, "EXAMPLE"))

    assert entry.percent == pytest.approx(41.5, abs=0.05)
    assert entry.self_seconds == pytest.approx(0.50)
    assert entry.child_seconds == pytest.approx(3.00)
    assert (entry.ncalls, entry.self_calls) == (10, 4)
    assert parents["CALLER1"].self_share == pytest.approx(0.20)
    assert children["SUB1"].child_share == pytest.approx(1.00)
