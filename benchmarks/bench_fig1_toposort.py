"""FIG1 — Figure 1: topological numbering of an acyclic call graph.

Regenerates the figure's content (a numbering in which "all edges in
the graph go from higher numbered nodes to lower numbered nodes") on
the ten-node stand-in graph, prints the numbering, and benchmarks the
numbering pass.
"""

from repro.core.cycles import number_graph, paper_numbering, verify_topological

from benchmarks.conftest import report
from tests.helpers import graph_from_edges
from tests.test_figures import FIG1_EDGES


def test_fig1_topological_numbering(benchmark):
    graph = graph_from_edges(*FIG1_EDGES)
    numbered = benchmark(number_graph, graph)
    verify_topological(numbered)
    numbering = paper_numbering(numbered)
    report(
        "Figure 1: topological numbering (edges descend)",
        sorted(numbering.items(), key=lambda kv: -kv[1]),
        header=("node", "number"),
    )
    assert sorted(numbering.values()) == list(range(1, 11))
    for src, dst in FIG1_EDGES:
        assert numbering[src] > numbering[dst]
