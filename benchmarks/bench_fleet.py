"""T-FLEET — fleet-scale merging: the streaming driver vs the old fold.

The paper merged a handful of runs; the production target merges
thousands of ``gmon.out`` files per program.  This benchmark pits the
:mod:`repro.fleet` streaming tree-reduction driver against the legacy
pairwise ``merge_profiles`` fold on the same synthetic fleet, and
asserts the two contracts the subsystem lives by:

* **byte-identity** — driver output written as ``gmon.sum`` is
  identical to the sequential fold's, for any worker count;
* **throughput** — the driver is strictly faster than the pairwise
  fold (the committed BENCH_fleet.json records 4-7x on fleets of
  10-1000 files; here we only assert direction, not magnitude, to
  stay robust on loaded CI machines).

``benchmarks/emit_bench.py`` is the standalone runner that measures
the full 10/100/1000 trajectory and writes BENCH_fleet.json.
"""

import functools

import pytest

from repro.core import merge_profiles
from repro.fleet import ProfileAccumulator, tree_reduce
from repro.gmon import dumps_gmon, read_gmon

from benchmarks.conftest import report
from benchmarks.emit_bench import build_corpus, legacy_pairwise_fold

FLEET_SIZE = 80


@pytest.fixture(scope="module")
def fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet_bench")
    return build_corpus(root, FLEET_SIZE, nbuckets=400, narcs=80,
                        arc_sites=120)


def test_driver_merge_throughput(benchmark, fleet):
    merged = benchmark(tree_reduce, fleet)
    assert merged.runs == FLEET_SIZE
    assert dumps_gmon(merged) == dumps_gmon(legacy_pairwise_fold(fleet))


def test_legacy_fold_baseline(benchmark, fleet):
    """The shape being escaped: every step re-merges the running sum."""
    merged = benchmark(legacy_pairwise_fold, fleet)
    assert merged.runs == FLEET_SIZE


def test_streaming_accumulator_throughput(benchmark, fleet):
    def stream():
        acc = ProfileAccumulator()
        for path in fleet:
            acc.add(path)
        return acc.result()

    merged = benchmark(stream)
    assert merged.runs == FLEET_SIZE


def test_driver_beats_the_pairwise_fold(fleet):
    """Directional check, every pytest run (magnitudes in BENCH_fleet.json)."""
    import time

    def best_of(fn, k=3):
        best = float("inf")
        for _ in range(k):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    legacy = best_of(lambda: legacy_pairwise_fold(fleet))
    driver = best_of(lambda: tree_reduce(fleet))
    report(
        "Fleet merge, 80 files: pairwise fold vs streaming driver",
        [
            ("pairwise fold", f"{FLEET_SIZE / legacy:,.0f} p/s"),
            ("fleet driver", f"{FLEET_SIZE / driver:,.0f} p/s"),
            ("speedup", f"{legacy / driver:.2f}x"),
        ],
        header=("merge path", "throughput"),
    )
    assert driver < legacy


def test_batch_merge_profiles_matches_driver(fleet):
    """The rewritten one-shot merge_profiles is the same algebra."""
    batch = merge_profiles([read_gmon(p) for p in fleet])
    assert dumps_gmon(batch) == dumps_gmon(tree_reduce(fleet))


def test_fold_in_any_grouping_is_byte_identical(fleet):
    """Associativity at benchmark scale: 8-chunk tree == flat fold."""
    chunk = FLEET_SIZE // 8
    groups = [fleet[i:i + chunk] for i in range(0, FLEET_SIZE, chunk)]
    tree = functools.reduce(
        lambda a, b: merge_profiles([a, b]),
        (merge_profiles([read_gmon(p) for p in g]) for g in groups),
    )
    assert dumps_gmon(tree) == dumps_gmon(tree_reduce(fleet))
