"""T-MERGE — §3 / retrospective: summing profiles over several runs.

"the profile data for several executions of a program can be combined
by the post-processing to provide a profile of many executions"; the
retrospective adds the motive: "to accumulate enough time in
short-running methods to get an idea of their performance."

Shape reproduced:

* one short run of a fast routine gathers zero or near-zero samples —
  its time is invisible;
* summing N short runs recovers a usable estimate that converges to a
  long run's per-call figure;
* the gmon file round-trip preserves the sum exactly.

The benchmarked operation is merging 20 profiles.
"""

import pytest

from repro.core import analyze, merge_profiles
from repro.gmon import read_gmon, write_gmon
from repro.machine import assemble, run_profiled

from benchmarks.conftest import report

#: A very short-running program: one call to a small routine.
SHORT = """
.func main
    CALL quick
    HALT
.end

.func quick
    WORK 37
    RET
.end
"""


def short_run():
    return run_profiled(SHORT, name="short", cycles_per_tick=25)[1]


def test_accumulation_recovers_short_routines(benchmark):
    symbols = assemble(SHORT, profile=True).symbol_table()
    single = short_run()
    runs = [short_run() for _ in range(20)]
    merged = benchmark(merge_profiles, runs)
    single_profile = analyze(single, symbols)
    merged_profile = analyze(merged, symbols)
    single_quick = single_profile.entry("quick")
    merged_quick = merged_profile.entry("quick")
    report(
        "Short-running routine, one run vs twenty summed",
        [
            ("runs", 1, merged.runs),
            ("total ticks", single.total_ticks, merged.total_ticks),
            ("quick calls", single_quick.ncalls, merged_quick.ncalls),
            ("quick self", f"{single_quick.self_seconds:.3f}s",
             f"{merged_quick.self_seconds:.3f}s"),
        ],
        header=("metric", "1 run", "20 runs"),
    )
    assert merged.runs == 20
    assert merged_quick.ncalls == 20
    assert merged.total_ticks == pytest.approx(20 * single.total_ticks, abs=20)
    # the merged profile accumulates measurable time for 'quick'
    assert merged_quick.self_seconds > single_quick.self_seconds


def test_merge_equals_long_run_distribution(benchmark):
    """Summed short runs and one long run agree on the time split."""
    from repro.machine.programs import abstraction

    # A prime tick period decorrelates the deterministic simulator's
    # sampling phase from the loop period (aliasing would otherwise
    # repeat the same quantization bias in every short run).
    src = abstraction(iterations=8)
    symbols = assemble(src, profile=True).symbol_table()
    shorts = [
        run_profiled(src, name="short", cycles_per_tick=11)[1]
        for _ in range(10)
    ]
    merged = benchmark(merge_profiles, shorts)
    long_data = run_profiled(
        abstraction(iterations=80), name="long", cycles_per_tick=11
    )[1]
    merged_profile = analyze(merged, symbols)
    long_profile = analyze(long_data, symbols)
    rows = []
    for name in ("write", "format1", "format2"):
        m = merged_profile.entry(name).percent
        l = long_profile.entry(name).percent
        rows.append((name, f"{m:.1f}%", f"{l:.1f}%"))
        assert m == pytest.approx(l, abs=3.0)
    report("Time split: 10 short runs summed vs 1 long run",
           rows, header=("routine", "merged", "long run"))


def test_gmon_sum_file_roundtrip(benchmark, tmp_path):
    runs = [short_run() for _ in range(5)]
    merged = merge_profiles(runs)
    path = tmp_path / "gmon.sum"

    def roundtrip():
        write_gmon(merged, path)
        return read_gmon(path)

    back = benchmark(roundtrip)
    assert back.runs == merged.runs
    assert back.total_ticks == merged.total_ticks
    assert back.condensed_arcs() == merged.condensed_arcs()
