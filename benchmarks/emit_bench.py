"""T-FLEET runner: measure merge throughput and write BENCH_fleet.json.

The first entry in the repo's perf trajectory.  For fleets of 10/100/
1000 synthetic gmon files (one shared histogram layout, randomized
counts and arcs) it times three ways of producing ``gmon.sum``:

* ``legacy`` — the old pairwise fold:
  ``reduce(lambda a, b: merge_profiles([a, b]), map(read_gmon, paths))``
  (parse every file into objects, re-merge and re-condense at every
  step);
* ``driver`` — the :mod:`repro.fleet` tree-reduction driver with its
  default worker count (in-process streaming accumulator on small
  machines);
* ``parallel`` — the same driver forced onto 2 worker processes.

All three must produce **byte-identical** ``gmon.sum`` output; the
runner exits with status 2 if they do not (the CI ``bench-smoke`` job
leans on this).  Results go to ``BENCH_fleet.json`` as
profiles-per-second so future PRs can extend the trajectory.

Usage::

    python -m benchmarks.emit_bench [--quick] [--out BENCH_fleet.json]

``--quick`` shrinks the fleets (10/50 files, smaller histograms) for
CI smoke runs; the committed BENCH_fleet.json comes from a full run.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core import Histogram, ProfileData, RawArc, merge_profiles
from repro.gmon import dumps_gmon, read_gmon, write_gmon
from repro.fleet import tree_reduce

#: Synthetic corpus shape: dense enough that bucket summing and arc
#: condensing both matter, small enough that a 1000-file fleet builds
#: in seconds.
FULL = {"sizes": (10, 100, 1000), "nbuckets": 2000, "narcs": 400,
        "arc_sites": 600, "repeats": 3}
QUICK = {"sizes": (10, 50), "nbuckets": 200, "narcs": 40,
         "arc_sites": 60, "repeats": 1}


def build_corpus(root: Path, n: int, nbuckets: int, narcs: int,
                 arc_sites: int, seed: int = 1234) -> list[str]:
    """Write ``n`` synthetic, mutually-compatible gmon files."""
    rng = random.Random(seed)
    high = nbuckets * 4
    sites = [
        (rng.randrange(0, high, 4), rng.randrange(0, high, 4))
        for _ in range(arc_sites)
    ]
    paths = []
    for i in range(n):
        counts = [rng.randrange(4) for _ in range(nbuckets)]
        arcs = [
            RawArc(*rng.choice(sites), rng.randrange(1, 10))
            for _ in range(narcs)
        ]
        data = ProfileData(
            Histogram(0, high, counts, 60), arcs, comment=f"synth-{i:04d}"
        )
        path = root / f"gmon_{i:04d}.out"
        write_gmon(data, path)
        paths.append(str(path))
    return paths


def legacy_pairwise_fold(paths: list[str]) -> ProfileData:
    """The pre-fleet shape: parse everything, fold profiles pairwise."""
    return functools.reduce(
        lambda acc, path: merge_profiles([acc, read_gmon(path)]),
        paths[1:],
        read_gmon(paths[0]),
    )


def timed(fn, repeats: int):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(quick: bool) -> tuple[dict, bool]:
    cfg = QUICK if quick else FULL
    rows = []
    identical_everywhere = True
    with tempfile.TemporaryDirectory(prefix="bench_fleet_") as tmp:
        for n in cfg["sizes"]:
            root = Path(tmp) / f"fleet_{n}"
            root.mkdir()
            paths = build_corpus(
                root, n, cfg["nbuckets"], cfg["narcs"], cfg["arc_sites"]
            )
            legacy_s, legacy_data = timed(
                lambda: legacy_pairwise_fold(paths), cfg["repeats"]
            )
            driver_s, driver_data = timed(
                lambda: tree_reduce(paths), cfg["repeats"]
            )
            parallel_s, parallel_data = timed(
                lambda: tree_reduce(paths, jobs=2), cfg["repeats"]
            )
            legacy_bytes = dumps_gmon(legacy_data)
            identical = (
                dumps_gmon(driver_data) == legacy_bytes
                and dumps_gmon(parallel_data) == legacy_bytes
            )
            identical_everywhere &= identical
            row = {
                "files": n,
                "legacy_seconds": round(legacy_s, 6),
                "driver_seconds": round(driver_s, 6),
                "parallel_seconds": round(parallel_s, 6),
                "legacy_profiles_per_sec": round(n / legacy_s, 1),
                "driver_profiles_per_sec": round(n / driver_s, 1),
                "parallel_profiles_per_sec": round(n / parallel_s, 1),
                "speedup_driver_vs_legacy": round(legacy_s / driver_s, 2),
                "byte_identical": identical,
            }
            rows.append(row)
            print(
                f"  {n:>5} files: legacy {row['legacy_profiles_per_sec']:>9} p/s"
                f"  driver {row['driver_profiles_per_sec']:>9} p/s"
                f"  ({row['speedup_driver_vs_legacy']}x)"
                f"  identical={identical}"
            )
    report = {
        "benchmark": "T-FLEET merge throughput",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "corpus": {
            "nbuckets": cfg["nbuckets"],
            "narcs": cfg["narcs"],
            "arc_sites": cfg["arc_sites"],
            "seed": 1234,
            "repeats": cfg["repeats"],
        },
        "rows": rows,
    }
    return report, identical_everywhere


#: suite name -> (banner, default output file, runner, mismatch message).
#: Every runner returns ``(report_dict, byte_identical)`` and the driver
#: turns a False flag into exit status 2 — the CI identity gate.
SUITES = {
    "fleet": (
        "T-FLEET",
        "BENCH_fleet.json",
        run,
        "parallel output differs from sequential",
    ),
    "vm": (
        "T-VM",
        "BENCH_vm.json",
        None,  # resolved lazily to avoid importing the VM for fleet runs
        "fast-engine gmon differs from reference engine",
    ),
    "pipeline": (
        "T-PIPE",
        "BENCH_pipeline.json",
        None,  # resolved lazily, same pattern as vm
        "cached analysis listing differs from uncached",
    ),
    "check": (
        "T-FLOW",
        "BENCH_check.json",
        None,  # resolved lazily, same pattern as vm
        "flow report or predicted profile differs across runs or "
        "cache replay",
    ),
    "serve": (
        "T-SERVE",
        "BENCH_serve.json",
        None,  # resolved lazily, same pattern as vm
        "recovered merged profile differs from the offline merge of "
        "the uploaded inputs",
    ),
    "smp": (
        "T-SMP",
        "BENCH_smp.json",
        None,  # resolved lazily, same pattern as vm
        "merged SMP profile depends on the CPU count, schedule, or "
        "sharding layout",
    ),
    "kernels": (
        "T-KERN",
        "BENCH_kernels.json",
        None,  # resolved lazily, same pattern as vm
        "kernel backends disagree (per-kernel results or merged gmon "
        "bytes differ from the python reference)",
    ),
    "pgo": (
        "T-PGO",
        "BENCH_pgo.json",
        None,  # resolved lazily, same pattern as vm
        "PGO gate violated: behaviour diverged, assembly is not "
        "byte-deterministic, or fewer than 3 programs got faster",
    ),
}


def _suite_runner(name: str):
    if name == "vm":
        from benchmarks.bench_vm import run_vm

        return run_vm
    if name == "pipeline":
        from benchmarks.bench_pipeline import run_pipeline

        return run_pipeline
    if name == "check":
        from benchmarks.bench_check import run_check

        return run_check
    if name == "serve":
        from benchmarks.bench_serve import run_serve

        return run_serve
    if name == "smp":
        from benchmarks.bench_smp import run_smp

        return run_smp
    if name == "kernels":
        from benchmarks.bench_kernels import run_kernels

        return run_kernels
    if name == "pgo":
        from benchmarks.bench_pgo import run_pgo_suite

        return run_pgo_suite
    return SUITES[name][2]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="emit_bench",
        description="measure a perf-trajectory suite, write its BENCH_*.json",
    )
    parser.add_argument("--suite", choices=sorted(SUITES), default="fleet",
                        help="which trajectory to measure (default: fleet)")
    parser.add_argument("--quick", action="store_true",
                        help="small corpora for CI smoke runs")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="where to write the JSON report "
                             "(default: the suite's BENCH_*.json)")
    opts = parser.parse_args(argv)
    banner, default_out, _, mismatch = SUITES[opts.suite]
    out = opts.out or default_out
    print(f"== {banner} ({'quick' if opts.quick else 'full'}) ==")
    report, identical = _suite_runner(opts.suite)(opts.quick)
    Path(out).write_text(json.dumps(report, indent=2) + "\n",
                         encoding="utf-8")
    print(f"report written to {out}")
    if not identical:
        print(f"emit_bench: FATAL: {mismatch}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
