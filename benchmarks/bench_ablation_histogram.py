"""A-HIST — histogram granularity ablation: memory vs accuracy.

"The space for the histogram could be controlled by getting a finer or
coarser histogram" (retrospective); the paper's authors, newly arrived
on 32-bit machines, "felt quite expansive" and ran one-to-one.  This
ablation sweeps the scale knob from the 16-bit-era configurations to
the expansive one and measures what coarseness costs: buckets spanning
routine boundaries smear samples across neighbours.

Shape: attribution error falls monotonically-ish as buckets shrink,
hitting zero (exact apportionment) at one bucket per address; memory
grows linearly with scale.  The trade the knob exists to make.
"""

import pytest

from repro.machine import assemble, CPU, Monitor, MonitorConfig

from benchmarks.conftest import report

#: Deliberately tiny routines next to big ones, so coarse buckets smear.
SOURCE = """
.func main
    PUSH 200
    STORE 0
loop:
    CALL tiny1
    CALL tiny2
    CALL big
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func tiny1
    WORK 3
    RET
.end

.func tiny2
    WORK 9
    RET
.end

.func big
    WORK 50
    RET
.end
"""


def run_at_scale(scale: float):
    exe = assemble(SOURCE, profile=True)
    mon = Monitor(
        MonitorConfig(exe.low_pc, exe.high_pc, scale=scale, cycles_per_tick=7)
    )
    CPU(exe, mon).run()
    times = mon.histogram.assign_samples(exe.symbol_table())
    return mon.histogram, times


def reference_split():
    """The exact split, from the one-to-one configuration."""
    _, times = run_at_scale(1.0)
    total = sum(times.values())
    return {k: v / total for k, v in times.items()}


def test_scale_sweep(benchmark):
    truth = reference_split()
    rows = []
    errors = {}
    for scale in (1.0, 0.25, 0.1, 0.05, 0.02):
        hist, times = run_at_scale(scale)
        total = sum(times.values()) or 1.0
        err = max(
            abs(times.get(k, 0.0) / total - truth[k]) for k in truth
        )
        errors[scale] = err
        rows.append(
            (scale, hist.num_buckets, f"{100 * err:.2f}%")
        )
    report(
        "Histogram scale: buckets (memory) vs worst attribution error",
        rows,
        header=("scale", "buckets", "max err"),
    )
    benchmark(lambda: run_at_scale(0.25))
    assert errors[1.0] == pytest.approx(0.0, abs=1e-12)
    assert errors[0.02] > errors[1.0]
    # coarse histograms still conserve total time (apportionment is
    # fractional, never lossy)
    hist, times = run_at_scale(0.02)
    assert sum(times.values()) == pytest.approx(hist.total_time)


def test_same_ticks_every_scale(benchmark):
    """Granularity changes *where* ticks land, never how many."""
    counts = {}
    for scale in (1.0, 0.1, 0.02):
        hist, _ = run_at_scale(scale)
        counts[scale] = hist.total_ticks
    report("Total ticks across scales", sorted(counts.items()))
    benchmark(lambda: run_at_scale(1.0))
    assert len(set(counts.values())) == 1
