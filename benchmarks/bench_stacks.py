"""E-STACKS — retrospective extension: complete-call-stack sampling.

"Modern profilers solve both these problems by periodically gathering
... complete call stacks.  The additional overhead of gathering the
call stack can be hidden by backing off the frequency with which the
call stacks are sampled."

Both claims, measured against classic gprof on the same programs:

1. **the average-time pitfall disappears** — on the skewed workload
   (two callers, equal true cost, 99:1 call counts) gprof attributes
   99%/1%; stack sampling attributes ≈55%/45%, tracking ground truth;
2. **cycles need no collapsing** — on the mutually recursive workload
   gprof must fuse even/odd into one cycle node; stack sampling gives
   each member an exact inclusive time;
3. **overhead backs off with frequency** — stack-walk cycles drop
   linearly with the sampling stride, while classic mcount overhead is
   fixed per call no matter what.
"""

import pytest

from repro.core import analyze
from repro.machine import assemble, run_profiled, run_unprofiled, CPU
from repro.machine.monitor import MonitorConfig
from repro.machine.programs import even_odd, fib, skewed
from repro.stacks import analyze_stacks
from repro.stacks.vm import VMStackMonitor, run_stack_profiled

from benchmarks.conftest import report


def test_skew_pitfall_fixed(benchmark):
    src = skewed(cheap_calls=99, dear_calls=1, dear_work=99)
    # classic gprof attribution
    cpu, data = run_profiled(src, name="skewed")
    profile = analyze(data, assemble(src, profile=True).symbol_table())
    entry = profile.entry("work_n")
    gprof_shares = {
        p.name: (p.self_share + p.child_share) for p in entry.parents
    }
    g_total = sum(gprof_shares.values())
    # stack-based attribution (the benchmarked run)
    cpu, stacks = benchmark(run_stack_profiled, src, "skewed", 7)
    s_shares = analyze_stacks(stacks).caller_shares("work_n")
    rows = [
        ("cheap_caller", "50%",
         f"{100 * gprof_shares['cheap_caller'] / g_total:.1f}%",
         f"{100 * s_shares['cheap_caller']:.1f}%"),
        ("dear_caller", "50%",
         f"{100 * gprof_shares['dear_caller'] / g_total:.1f}%",
         f"{100 * s_shares['dear_caller']:.1f}%"),
    ]
    report("Attribution of work_n's time (truth 50/50)",
           rows, header=("caller", "truth", "gprof", "stacks"))
    assert gprof_shares["cheap_caller"] / g_total > 0.95  # the pitfall
    assert 0.3 < s_shares["dear_caller"] < 0.6            # the fix


def test_cycles_need_no_collapsing(benchmark):
    src = even_odd(40)
    cpu, data = run_profiled(src, name="even_odd")
    profile = analyze(data, assemble(src, profile=True).symbol_table())
    cpu, stacks = benchmark(run_stack_profiled, src, "even_odd", 3)
    an = analyze_stacks(stacks)
    rows = [
        ("gprof cycles", len(profile.numbered.cycles)),
        ("stack cycles needed", 0),
        ("even inclusive", f"{an.inclusive_percent('even'):.1f}%"),
        ("odd inclusive", f"{an.inclusive_percent('odd'):.1f}%"),
    ]
    report("Mutual recursion: gprof collapses, stacks just measure", rows)
    assert len(profile.numbered.cycles) == 1  # gprof had to collapse
    # per-member exact inclusive figures, impossible for classic gprof:
    assert 50.0 < an.inclusive_percent("even") <= 100.0
    assert 50.0 < an.inclusive_percent("odd") <= 100.0
    assert an.inclusive["even"] <= stacks.total_ticks


def test_overhead_backs_off_with_stride(benchmark):
    src = fib(16)
    plain = run_unprofiled(src).cycles
    mcount_cycles = run_profiled(src)[0].cycles - plain

    def stack_overhead(stride):
        exe = assemble(src, profile=False)
        mon = VMStackMonitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=20),
            stride=stride,
        )
        cpu = CPU(exe, mon)
        mon.bind(cpu)
        cpu.run()
        return mon.stack_walk_cycles

    rows = [("mcount (per call, fixed)", f"{100 * mcount_cycles / plain:.1f}%")]
    costs = {}
    for stride in (1, 4, 16, 64):
        cost = stack_overhead(stride)
        costs[stride] = cost
        rows.append(
            (f"stacks, stride {stride}", f"{100 * cost / plain:.2f}%")
        )
    report("Overhead: fixed per-call mcount vs stride-scaled stacks", rows)
    benchmark(lambda: stack_overhead(4))
    assert costs[64] < costs[1] / 16
    assert costs[64] < mcount_cycles  # backed off below classic gprof


def test_stack_and_classic_agree_on_flat_time(benchmark):
    """Sanity: both methods see the same self-time distribution."""
    src = skewed()
    cpu, data = run_profiled(src, name="skewed")
    symbols = assemble(src, profile=True).symbol_table()
    classic = analyze(data, symbols)
    cpu, stacks = run_stack_profiled(src, "skewed", 7)
    an = benchmark(analyze_stacks, stacks)
    total = stacks.total_ticks
    rows = []
    for flat in classic.flat_entries[:3]:
        classic_pct = flat.percent
        stack_pct = 100.0 * an.exclusive.get(flat.name, 0) / total
        rows.append((flat.name, f"{classic_pct:.1f}%", f"{stack_pct:.1f}%"))
        assert stack_pct == pytest.approx(classic_pct, abs=8.0)
    report("Self-time split: classic histogram vs stack leaves",
           rows, header=("routine", "classic", "stacks"))
