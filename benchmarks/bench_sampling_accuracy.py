"""T-SAMPLING — §3.2: statistical sampling accuracy vs granularity.

"On the other hand, the program must run for enough sampled intervals
that the distribution of the samples accurately represents the
distribution of time for the execution of the program."

We run a program whose ground-truth time split is known exactly (three
routines burning cycles in ratio 1:2:4 via ``WORK``), sweep the
profiling clock period, and measure the error between the sampled
distribution and the true cycle distribution.  Shape to reproduce:
error shrinks roughly like 1/sqrt(number of samples), so refining the
tick interval by 100x cuts the error by about 10x.
"""

import math

from repro.machine import CPU, Monitor, MonitorConfig, assemble

from benchmarks.conftest import report

SOURCE = """
.func main
    PUSH 120
    STORE 0
loop:
    CALL light
    CALL medium
    CALL heavy
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func light
    WORK 50
    RET
.end

.func medium
    WORK 100
    RET
.end

.func heavy
    WORK 200
    RET
.end
"""

#: Ground-truth self-cycle weights: WORK body + prologue costs are tiny
#: relative to the WORK payloads, so 50:100:200 is the target split.
TRUTH = {"light": 50, "medium": 100, "heavy": 200}


def sampled_error(cycles_per_tick: int) -> tuple[float, int]:
    """(max abs share error, samples) at a given clock granularity."""
    exe = assemble(SOURCE, profile=True)
    mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc,
                                cycles_per_tick=cycles_per_tick))
    CPU(exe, mon).run()
    times = mon.histogram.assign_samples(exe.symbol_table())
    in_scope = {k: times.get(k, 0.0) for k in TRUTH}
    total = sum(in_scope.values()) or 1.0
    truth_total = sum(TRUTH.values())
    err = max(
        abs(in_scope[k] / total - TRUTH[k] / truth_total) for k in TRUTH
    )
    return err, mon.histogram.total_ticks


def test_error_shrinks_with_sample_count(benchmark):
    rows = []
    errors = {}
    for interval in (2000, 500, 100, 20, 5):
        err, n = sampled_error(interval)
        errors[interval] = (err, n)
        rows.append((interval, n, f"{100 * err:.2f}%",
                     f"{1 / math.sqrt(n):.4f}" if n else "-"))
    report(
        "Sampling error vs clock period (ground-truth split 1:2:4)",
        rows,
        header=("cycles/tick", "samples", "max share err", "1/sqrt(n)"),
    )
    benchmark(lambda: sampled_error(100))
    # Coarse clocks err more than fine clocks; the finest is accurate.
    assert errors[5][0] <= errors[2000][0]
    assert errors[5][0] < 0.02
    # ~1/sqrt(n) scaling: 400x the samples should cut error well below
    # half (allow generous slack — it's a statistical claim).
    if errors[2000][0] > 0:
        assert errors[5][0] < errors[2000][0] * 0.7


def test_sampling_cost_is_free_for_the_program(benchmark):
    """The histogram is maintained by the 'kernel': the profiled
    program pays cycles for mcount, never for PC sampling."""
    exe = assemble(SOURCE, profile=True)

    def run_with(interval):
        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc,
                                    cycles_per_tick=interval))
        return CPU(exe, mon).run().cycles

    coarse = run_with(2000)
    fine = run_with(5)
    benchmark(lambda: run_with(100))
    report(
        "Program cycles at different sampling rates",
        [("cycles/tick=2000", coarse), ("cycles/tick=5", fine)],
    )
    assert coarse == fine
