"""A-INLINE — §6 ablation: inline expansion vs profile granularity.

"The easiest optimization ... If this format routine is expanded
inline in the output routine, the overhead of a function call and
return can be saved for each datum that needs to be formatted.  The
drawback to inline expansion is that ... the profiling will also
become less useful since the loss of routines will make its output
more granular."

The Rel compiler's ``-O2`` performs exactly that expansion, so both
sides of the trade are measurable on the same program:

* cycles saved per inlined call (the benefit);
* routines visible in the profile before and after (the cost — the
  abstraction's time is no longer separable).
"""

import pytest

from repro.core import analyze
from repro.lang import compile_source
from repro.machine import CPU, Monitor, MonitorConfig

from benchmarks.conftest import report

#: A formatting-flavoured workload with an inlinable helper, echoing
#: the §6 example (format expanded into output).
SRC = """
func scale(v) { return v * 10 + 7; }
func emit(v) {
    burn 6;
    print scale(v);
    return v;
}
func main() {
    i = 0;
    while (i < 80) {
        emit(i);
        i = i + 1;
    }
}
"""


def run_level(level: int):
    exe = compile_source(SRC, name=f"O{level}", profile=True,
                         optimize_level=level)
    monitor = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10))
    cpu = CPU(exe, monitor)
    cpu.run()
    profile = analyze(monitor.mcleanup(), exe.symbol_table())
    return cpu, profile


def test_inline_saves_cycles_but_loses_routines(benchmark):
    rows = []
    results = {}
    for level in (0, 1, 2):
        cpu, profile = run_level(level)
        visible = [
            e.name for e in profile.graph_entries if not e.is_cycle
        ]
        results[level] = (cpu.cycles, visible, profile)
        rows.append(
            (f"-O{level}", cpu.cycles, len(visible),
             "yes" if "scale" in visible else "no")
        )
    report(
        "Inline ablation: speed gained, profile insight lost",
        rows,
        header=("level", "cycles", "routines", "scale visible"),
    )
    benchmark(lambda: run_level(2))
    cycles0, visible0, prof0 = results[0]
    cycles2, visible2, prof2 = results[2]
    # the benefit: each of the 80 calls' linkage overhead is gone
    assert cycles2 < cycles0
    # the §6 drawback: the scale abstraction vanished from the profile
    assert "scale" in visible0
    assert "scale" not in visible2
    # and its cost became indistinguishable inside emit's self *share*
    share0 = prof0.entry("emit").self_seconds / prof0.total_seconds
    share2 = prof2.entry("emit").self_seconds / prof2.total_seconds
    assert share2 > share0 + 0.1


def test_output_identical_across_levels(benchmark):
    outputs = {}
    for level in (0, 1, 2):
        cpu, _ = run_level(level)
        outputs[level] = cpu.output
    assert outputs[0] == outputs[1] == outputs[2]
    benchmark(lambda: run_level(0))


def test_per_call_saving_matches_linkage_cost(benchmark):
    """The saving is exactly the call/return/prologue linkage of the
    inlined routine, per call — nothing more, nothing less."""
    cpu0, _ = run_level(0)
    cpu2, _ = run_level(2)
    saved = cpu0.cycles - cpu2.cycles
    calls = 80
    per_call = saved / calls
    report(
        "Per-call saving from inlining 'scale'",
        [("total cycles saved", saved), ("per call", f"{per_call:.1f}")],
    )
    benchmark(lambda: run_level(2))
    # CALL(4) + RET(3) + MCOUNT(~6) + argument STORE/LOAD shuffling:
    # the saving sits in the 8-20 cycle band per call.
    assert 8 <= per_call <= 20
