"""T-KERN runner: per-kernel backend throughput + the byte-identity gate.

Times the four bulk kernels of :mod:`repro.core.kernels` — bucket
folding, arc condensing, span apportionment, and §4 propagation — on
every available backend against the python reference, at fleet scale
(1000 wire inputs for the fold kernels, a 64k-bucket layout for
apportionment).

Two numbers matter:

* **speedup**: best non-python backend vs the reference, per kernel
  (the acceptance bar is ≥3x on at least two kernels);
* **identical**: every backend's result compared *exactly* (integer
  lists, arc dicts, float dicts, solve columns) plus one end-to-end
  check that a merged fleet re-serializes to byte-identical ``gmon``
  bytes on every backend.  Any mismatch makes the driver exit 2.

Usage::

    python -m benchmarks.emit_bench --suite kernels [--quick]
"""

from __future__ import annotations

import os
import platform
import random
import struct
import time

from repro.core import Symbol, SymbolTable
from repro.core import kernels
from repro.core.callgraph import Arc, CallGraph
from repro.core.cycles import number_graph
from repro.core.kernels import prop as kprop
from repro.core.kernels.spans import build_spans
from repro.fleet import ProfileAccumulator
from repro.gmon import dumps_gmon

FULL = {
    "inputs": 1000, "nbuckets": 2000, "narcs": 400, "arc_sites": 600,
    "ap_buckets": 65536, "ap_symbols": 600, "ap_inputs": 20,
    "prop_callers": 1000, "prop_hubs": 30, "prop_leaves": 200,
    "prop_solves": 50,
    "repeats": 3,
}
QUICK = {
    "inputs": 60, "nbuckets": 256, "narcs": 40, "arc_sites": 60,
    "ap_buckets": 4096, "ap_symbols": 64, "ap_inputs": 4,
    "prop_callers": 60, "prop_hubs": 4, "prop_leaves": 10,
    "prop_solves": 5,
    "repeats": 1,
}

SEED = 20240817


def _timed(fn, repeats: int):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _row(kernel: str, workload: dict, runs: dict, results: dict,
         reference: str = "python") -> tuple[dict, bool]:
    """Assemble one report row; equality is exact, never approximate."""
    ref = results[reference]
    identical = all(res == ref for res in results.values())
    ref_s = runs[reference]
    row = {
        "kernel": kernel,
        "workload": workload,
        "backends": {
            name: {
                "seconds": round(sec, 6),
                "speedup_vs_python": round(ref_s / sec, 2) if sec else None,
            }
            for name, sec in runs.items()
        },
        "best_speedup": round(
            max(ref_s / sec for name, sec in runs.items()
                if name != reference),
            2,
        ),
        "identical": identical,
    }
    return row, identical


# -- kernel workloads --------------------------------------------------------


def bench_bucket_fold(cfg: dict) -> tuple[dict, bool]:
    rng = random.Random(SEED)
    nbuckets, inputs = cfg["nbuckets"], cfg["inputs"]
    blobs = [
        struct.pack(
            f"<{nbuckets}I",
            *(rng.randrange(4) for _ in range(nbuckets)),
        )
        for _ in range(inputs)
    ]

    def fold(backend: str):
        acc = kernels.get_backend(backend).bucket_acc()
        for blob in blobs:
            acc.fold_blob(blob)
        return acc.to_list()

    runs, results = {}, {}
    for name in kernels.available_backends():
        runs[name], results[name] = _timed(
            lambda name=name: fold(name), cfg["repeats"]
        )
    return _row(
        "bucket_fold",
        {"inputs": inputs, "nbuckets": nbuckets},
        runs, results,
    )


def bench_arc_fold(cfg: dict) -> tuple[dict, bool]:
    rng = random.Random(SEED + 1)
    high = cfg["nbuckets"] * 4
    sites = [
        (rng.randrange(0, high, 4), rng.randrange(0, high, 4))
        for _ in range(cfg["arc_sites"])
    ]
    blobs = []
    for _ in range(cfg["inputs"]):
        blobs.append(
            b"".join(
                struct.pack(
                    "<QQI", *rng.choice(sites), rng.randrange(1, 10)
                )
                for _ in range(cfg["narcs"])
            )
        )

    def fold(backend: str):
        table = kernels.get_backend(backend).arc_table()
        for blob in blobs:
            table.fold_blob(blob)
        return sorted(table.as_dict().items())

    runs, results = {}, {}
    for name in kernels.available_backends():
        runs[name], results[name] = _timed(
            lambda name=name: fold(name), cfg["repeats"]
        )
    return _row(
        "arc_fold",
        {"inputs": cfg["inputs"], "records_per_input": cfg["narcs"],
         "distinct_sites": cfg["arc_sites"]},
        runs, results,
    )


def bench_apportion(cfg: dict) -> tuple[dict, bool]:
    rng = random.Random(SEED + 2)
    nbuckets, nsyms = cfg["ap_buckets"], cfg["ap_symbols"]
    high = nbuckets * 4
    # symbols of irregular width covering the range: plenty of
    # fractional edges, long interior runs
    bounds = sorted(rng.sample(range(4, high, 4), nsyms - 1))
    edges = [0] + bounds + [high]
    symbols = SymbolTable(
        Symbol(edges[i], f"f{i}", edges[i + 1]) for i in range(nsyms)
    )
    spans = build_spans(0, high, nbuckets, symbols)
    vectors = [
        [rng.randrange(8) for _ in range(nbuckets)]
        for _ in range(cfg["ap_inputs"])
    ]
    sec_per_tick = 1.0 / 100.0

    def apportion(backend: str):
        fn = kernels.get_backend(backend).apportion
        out = []
        for counts in vectors:
            out.append(sorted(fn(spans, counts, sec_per_tick).items()))
        return out

    runs, results = {}, {}
    for name in kernels.available_backends():
        runs[name], results[name] = _timed(
            lambda name=name: apportion(name), cfg["repeats"]
        )
    return _row(
        "apportion",
        {"nbuckets": nbuckets, "symbols": nsyms,
         "inputs": cfg["ap_inputs"]},
        runs, results,
    )


def bench_propagate(cfg: dict) -> tuple[dict, bool]:
    # The gprof shape that makes propagation expensive: a few hot
    # shared routines (hubs) called from very many sites, so each hub
    # representative pushes time up thousands of incoming arcs.
    rng = random.Random(SEED + 3)
    graph = CallGraph()
    callers = [f"c{i}" for i in range(cfg["prop_callers"])]
    hubs = [f"hub{i}" for i in range(cfg["prop_hubs"])]
    leaves = [f"leaf{i}" for i in range(cfg["prop_leaves"])]
    for caller in callers:
        for hub in hubs:
            graph.add_arc(Arc(caller, hub, rng.randrange(1, 50)))
    for leaf in leaves:
        for hub in rng.sample(hubs, min(6, len(hubs))):
            graph.add_arc(Arc(hub, leaf, rng.randrange(1, 20)))
    numbered = number_graph(graph)
    plan = kprop.build_plan(numbered)
    self_times = {
        name: rng.random() * 5.0
        for name in callers + hubs + leaves
    }
    nsolves = cfg["prop_solves"]

    def solve(vector: bool):
        out = None
        for _ in range(nsolves):
            out = kprop.solve(plan, self_times, vector)
        return out

    runs, results = {}, {}
    runs["python"], results["python"] = _timed(
        lambda: solve(False), cfg["repeats"]
    )
    # array shares the scalar data path; report it as such
    runs["array"], results["array"] = runs["python"], results["python"]
    if kernels.HAVE_NUMPY:
        runs["numpy"], results["numpy"] = _timed(
            lambda: solve(True), cfg["repeats"]
        )
    return _row(
        "propagate",
        {"routines": len(plan.routines),
         "arcs": len(plan.arc_count), "solves": nsolves},
        runs, results,
    )


def check_end_to_end_bytes(cfg: dict) -> bool:
    """Merged-fleet wire bytes must not depend on the backend."""
    rng = random.Random(SEED + 4)
    nbuckets = cfg["nbuckets"]
    high = nbuckets * 4
    from repro.core import Histogram, ProfileData, RawArc

    blobs = []
    for i in range(min(cfg["inputs"], 100)):
        counts = [rng.randrange(4) for _ in range(nbuckets)]
        arcs = [
            RawArc(rng.randrange(0, high, 4), rng.randrange(0, high, 4),
                   rng.randrange(1, 10))
            for _ in range(cfg["narcs"])
        ]
        blobs.append(
            dumps_gmon(ProfileData(Histogram(0, high, counts, 60), arcs))
        )
    outputs = set()
    for name in kernels.available_backends():
        acc = ProfileAccumulator(name)
        for blob in blobs:
            acc.add(blob)
        outputs.add(dumps_gmon(acc.result()))
    return len(outputs) == 1


def run_kernels(quick: bool) -> tuple[dict, bool]:
    cfg = QUICK if quick else FULL
    rows = []
    identical_everywhere = True
    for bench in (bench_bucket_fold, bench_arc_fold, bench_apportion,
                  bench_propagate):
        row, identical = bench(cfg)
        identical_everywhere &= identical
        rows.append(row)
        backends = "  ".join(
            f"{name} {info['speedup_vs_python']}x"
            for name, info in row["backends"].items()
            if name != "python"
        )
        print(
            f"  {row['kernel']:<12} python "
            f"{row['backends']['python']['seconds'] * 1000:8.1f} ms"
            f"  {backends}  identical={identical}"
        )
    wire_identical = check_end_to_end_bytes(cfg)
    identical_everywhere &= wire_identical
    print(f"  end-to-end merged gmon bytes identical={wire_identical}")
    fast_kernels = sum(1 for r in rows if r["best_speedup"] >= 3.0)
    report = {
        "benchmark": "T-KERN bulk-kernel backends",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "backends": list(kernels.available_backends()),
        "seed": SEED,
        "rows": rows,
        "wire_identical": wire_identical,
        "kernels_at_or_above_3x": fast_kernels,
    }
    return report, identical_everywhere


if __name__ == "__main__":  # pragma: no cover
    import json
    import sys

    report, ok = run_kernels("--quick" in sys.argv)
    print(json.dumps(report, indent=2))
    sys.exit(0 if ok else 2)
