"""T-PGO — the closed §6 loop: measured-profile-guided optimization.

The paper leaves the loop open: gprof finds the bottleneck, a
programmer rewrites, gprof measures again.  ``repro.lang.run_pgo``
closes it mechanically — branch ordering, benefit-model inlining, and
hot/cold layout all driven by the gmon data of the previous run.  This
suite measures that loop on every canned Rel program and gates on the
three contracts the optimizer lives by:

* **behaviour preserved** — the PGO'd binary prints the same output
  and leaves the same final globals as the -O0 baseline, every round;
* **cycles actually saved** — at least three canned programs must run
  in strictly fewer (unprofiled, honest) cycles after PGO;
* **byte determinism** — a fixed (source, profile) pair yields
  byte-identical final assembly on independent loop runs.

``python -m benchmarks.emit_bench --suite pgo`` writes BENCH_pgo.json
and exits 2 if any contract fails.

This file also absorbs the retired A-INLINE ablation
(``bench_inline_ablation.py``): static ``-O2`` inlining is now the
*baseline column* of the PGO table, and the ablation's §6 trade-off
assertions (cycles saved vs profile granularity lost) live on as
pytest entries below, sharing one harness with the feedback loop.
"""

from __future__ import annotations

import os
import platform

from repro.core import analyze
from repro.lang import compile_source, run_pgo
from repro.lang.programs import REL_PROGRAMS
from repro.machine import Monitor, MonitorConfig, make_cpu

from benchmarks.conftest import report

#: The retired A-INLINE workload: a formatting-flavoured helper the
#: benefit model should inline, echoing the paper's "format expanded
#: into output" example.  Kept as a named workload so the static
#: baseline column stays measurable on the shape it was designed for.
INLINE_SRC = """
func scale(v) { return v * 10 + 7; }
func emit(v) {
    burn 6;
    print scale(v);
    return v;
}
func main() {
    i = 0;
    while (i < 80) {
        emit(i);
        i = i + 1;
    }
}
"""

CYCLES_PER_TICK = 100

#: Full mode runs every canned Rel program plus the ablation workload;
#: quick mode keeps the four programs PGO demonstrably improves so the
#: ">= 3 strictly faster" gate is still meaningful at smoke scale.
QUICK_PROGRAMS = ("abstraction", "gcd_chain", "sieve", "classify")


def _workloads(quick: bool) -> dict[str, str]:
    if quick:
        return {name: REL_PROGRAMS[name]() for name in QUICK_PROGRAMS}
    sources = {name: builder() for name, builder in REL_PROGRAMS.items()}
    sources["inline_ablation"] = INLINE_SRC
    return sources


def _plain_cycles(source: str, name: str, level: int):
    """Cycles and output of an unprofiled build at a static level."""
    exe = compile_source(source, name=name, profile=False,
                         optimize_level=level)
    cpu = make_cpu(exe)
    cpu.run()
    return cpu.cycles, list(cpu.output)


def run_pgo_suite(quick: bool) -> tuple[dict, bool]:
    """Measure the PGO loop on every workload; the emit_bench core.

    Returns ``(report_dict, ok)`` where ``ok`` demands identical
    behaviour everywhere, byte-identical assembly across independent
    loop runs, and strictly fewer cycles on at least three programs.
    """
    rounds = 1 if quick else 2
    rows = []
    identical_everywhere = True
    deterministic_everywhere = True
    improved = 0
    for name, source in sorted(_workloads(quick).items()):
        cycles_o0, out_o0 = _plain_cycles(source, name, level=0)
        cycles_o2, out_o2 = _plain_cycles(source, name, level=2)
        # two fully independent loop runs: the byte-determinism probe.
        result = run_pgo(source, name=name, rounds=rounds,
                         cycles_per_tick=CYCLES_PER_TICK)
        rerun = run_pgo(source, name=name, rounds=rounds,
                        cycles_per_tick=CYCLES_PER_TICK)
        deterministic = result.asm == rerun.asm
        identical = (
            result.identical
            and out_o2 == out_o0
            and result.output == out_o0
        )
        row = {
            "program": name,
            "rounds": rounds,
            "cycles_o0": cycles_o0,
            "cycles_o2_static": cycles_o2,
            "cycles_pgo": result.cycles_final,
            "saved_vs_o0": result.saved,
            "saved_pct": round(100.0 * result.saved / cycles_o0, 2)
            if cycles_o0 else 0.0,
            "bottleneck": result.bottleneck,
            "transforms": {
                key: value
                for r in result.rounds
                for key, value in r.counters.items()
                if value
            },
            "warnings": [w for r in result.rounds for w in r.warnings],
            "identical": identical,
            "deterministic": deterministic,
            "improved": result.cycles_final < cycles_o0,
        }
        rows.append(row)
        identical_everywhere &= identical
        deterministic_everywhere &= deterministic
        improved += row["improved"]
        print(
            f"  {name:>15}: O0 {cycles_o0:>6}  O2 {cycles_o2:>6}"
            f"  PGO {result.cycles_final:>6} ({result.saved:+d},"
            f" {row['saved_pct']}%)"
            f"  identical={identical} deterministic={deterministic}"
        )
    ok = identical_everywhere and deterministic_everywhere and improved >= 3
    print(
        f"  gate: identical={identical_everywhere}"
        f" deterministic={deterministic_everywhere}"
        f" improved={improved}/{len(rows)} (need >= 3) -> "
        + ("PASS" if ok else "FAIL")
    )
    return {
        "benchmark": "T-PGO profile-guided optimization loop",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "cycles_per_tick": CYCLES_PER_TICK,
        "rounds": rounds,
        "improved_programs": improved,
        "rows": rows,
    }, ok


# --------------------------------------------------------------------------
# pytest entries: the PGO gate at smoke scale, plus the absorbed
# A-INLINE ablation (static inlining as the baseline column).
# --------------------------------------------------------------------------


def run_level(level: int):
    """One profiled run of the ablation workload at a static level."""
    exe = compile_source(INLINE_SRC, name=f"O{level}", profile=True,
                         optimize_level=level)
    monitor = Monitor(MonitorConfig(exe.low_pc, exe.high_pc,
                                    cycles_per_tick=10))
    cpu = make_cpu(exe, monitor)
    cpu.run()
    profile = analyze(monitor.mcleanup(), exe.symbol_table())
    return cpu, profile


def test_quick_suite_gate():
    """The emit_bench core's own gate, at smoke scale."""
    report_dict, ok = run_pgo_suite(quick=True)
    assert ok
    assert report_dict["improved_programs"] >= 3
    assert all(row["identical"] for row in report_dict["rows"])
    assert all(row["deterministic"] for row in report_dict["rows"])


def test_pgo_inlines_the_ablation_helper(benchmark):
    """The feedback loop reaches the ablation's conclusion on its own:
    the measured call counts make inlining ``scale`` worth its size."""
    result = benchmark(
        lambda: run_pgo(INLINE_SRC, name="ablation", rounds=1,
                        cycles_per_tick=10)
    )
    assert result.identical
    assert result.saved > 0
    expanded = sum(
        r.counters.get("inline.sites_expanded", 0) for r in result.rounds
    )
    assert expanded >= 1
    assert all(fn.name != "scale" for fn in result.program.functions)


def test_inline_saves_cycles_but_loses_routines(benchmark):
    rows = []
    results = {}
    for level in (0, 1, 2):
        cpu, profile = run_level(level)
        visible = [
            e.name for e in profile.graph_entries if not e.is_cycle
        ]
        results[level] = (cpu.cycles, visible, profile)
        rows.append(
            (f"-O{level}", cpu.cycles, len(visible),
             "yes" if "scale" in visible else "no")
        )
    report(
        "Inline ablation: speed gained, profile insight lost",
        rows,
        header=("level", "cycles", "routines", "scale visible"),
    )
    benchmark(lambda: run_level(2))
    cycles0, visible0, prof0 = results[0]
    cycles2, visible2, prof2 = results[2]
    # the benefit: each of the 80 calls' linkage overhead is gone
    assert cycles2 < cycles0
    # the §6 drawback: the scale abstraction vanished from the profile
    assert "scale" in visible0
    assert "scale" not in visible2
    # and its cost became indistinguishable inside emit's self *share*
    share0 = prof0.entry("emit").self_seconds / prof0.total_seconds
    share2 = prof2.entry("emit").self_seconds / prof2.total_seconds
    assert share2 > share0 + 0.1


def test_output_identical_across_levels(benchmark):
    outputs = {}
    for level in (0, 1, 2):
        cpu, _ = run_level(level)
        outputs[level] = cpu.output
    assert outputs[0] == outputs[1] == outputs[2]
    benchmark(lambda: run_level(0))


def test_per_call_saving_matches_linkage_cost(benchmark):
    """The saving is exactly the call/return/prologue linkage of the
    inlined routine, per call — nothing more, nothing less."""
    cpu0, _ = run_level(0)
    cpu2, _ = run_level(2)
    saved = cpu0.cycles - cpu2.cycles
    calls = 80
    per_call = saved / calls
    report(
        "Per-call saving from inlining 'scale'",
        [("total cycles saved", saved), ("per call", f"{per_call:.1f}")],
    )
    benchmark(lambda: run_level(2))
    # CALL(4) + RET(3) + MCOUNT(~6) + argument STORE/LOAD shuffling:
    # the saving sits in the 8-20 cycle band per call.
    assert 8 <= per_call <= 20
