"""T-PIPE runner: repeated-analysis latency, cold vs warm cache.

The pipeline's content-addressed cache exists for one workload: the
same executable analyzed again and again (``compare`` runs two
analyses, ``regress`` gates every CI run, ``repro-gprof --lint``
analyzes for the linter and then for the listing).  This benchmark
measures exactly that, on synthetic call graphs large enough that every
stage matters:

* ``cold`` — ``analyze()`` with no cache: the full staged pipeline;
* ``warm`` — ``analyze()`` against a cache already holding this
  input's intermediates: digests only, every group a hit;
* ``edit`` — ``analyze()`` with one changed knob (an extra deleted
  arc) against the warm cache: the symbolize/exclude and apportion
  groups hit, the graph-editing stages re-run — the partial-reuse
  middle ground.

Every variant must render **byte-identical** flat + call-graph listings
to the uncached run (exit 2 otherwise — the CI identity gate).  The
headline number is ``speedup_warm_vs_cold``; the acceptance floor for
the trajectory is 3x.
"""

from __future__ import annotations

import random
import time

from repro.core import AnalysisOptions, analyze
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.arcs import RawArc
from repro.core.symbols import Symbol, SymbolTable
from repro.pipeline import AnalysisCache
from repro.report import format_flat_profile, format_graph_profile

#: Synthetic graph shapes.  Mostly-forward arcs with a sprinkle of
#: back-edges: realistic cycle counts without one giant SCC.
FULL = {"sizes": (500, 2000), "arcs_per_routine": 4, "nbuckets": 4096,
        "cold_repeats": 3, "warm_repeats": 10}
QUICK = {"sizes": (200,), "arcs_per_routine": 4, "nbuckets": 512,
         "cold_repeats": 1, "warm_repeats": 3}

_SPAN = 16  # address units per synthetic routine


def build_input(n_routines: int, arcs_per_routine: int, nbuckets: int,
                seed: int = 4321) -> tuple[SymbolTable, ProfileData]:
    """A deterministic synthetic profile over ``n_routines`` routines."""
    rng = random.Random(seed)
    symbols = SymbolTable(
        Symbol(i * _SPAN, f"fn{i:05d}", (i + 1) * _SPAN)
        for i in range(n_routines)
    )
    high = n_routines * _SPAN
    arcs = []
    for i in range(1, n_routines):
        for _ in range(arcs_per_routine):
            if rng.random() < 0.05:  # occasional back-edge -> small cycles
                callee = rng.randrange(i, n_routines)
            else:
                callee = rng.randrange(0, i)
            arcs.append(
                RawArc(i * _SPAN + 4, callee * _SPAN, rng.randrange(1, 50))
            )
    counts = [rng.randrange(8) for _ in range(nbuckets)]
    data = ProfileData(Histogram(0, high, counts, 60), arcs,
                       comment=f"t-pipe-{n_routines}")
    return symbols, data


def listings(profile) -> str:
    """Both listings, concatenated like the repro-gprof output."""
    return "\n".join(
        [format_graph_profile(profile), format_flat_profile(profile)]
    )


def _timed(fn, repeats: int):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_pipeline(quick: bool) -> tuple[dict, bool]:
    cfg = QUICK if quick else FULL
    rows = []
    identical_everywhere = True
    for n in cfg["sizes"]:
        symbols, data = build_input(
            n, cfg["arcs_per_routine"], cfg["nbuckets"]
        )
        options = AnalysisOptions()
        # The edit scenario deletes one real arc so the graph-editing
        # stages must re-run while the earlier groups still hit.
        reference = analyze(data, symbols, options)
        victim = next(iter(reference.graph.arcs()))
        edited = AnalysisOptions(deleted_arcs=[(victim.caller, victim.callee)])
        edited_reference = analyze(data, symbols, edited)

        cold_s, cold_profile = _timed(
            lambda: analyze(data, symbols, options), cfg["cold_repeats"]
        )
        cache = AnalysisCache()
        analyze(data, symbols, options, cache=cache)  # prime
        warm_s, warm_profile = _timed(
            lambda: analyze(data, symbols, options, cache=cache),
            cfg["warm_repeats"],
        )
        # Each edit repeat gets a freshly-primed cache: the point is the
        # partial-reuse path (early groups hit, graph editing re-runs),
        # not a second warm hit on the edited keys themselves.
        edit_s, edit_profile = float("inf"), None
        for _ in range(cfg["cold_repeats"]):
            edit_cache = AnalysisCache()
            analyze(data, symbols, options, cache=edit_cache)
            t0 = time.perf_counter()
            edit_profile = analyze(data, symbols, edited, cache=edit_cache)
            edit_s = min(edit_s, time.perf_counter() - t0)
        want = listings(reference)
        identical = (
            listings(cold_profile) == want
            and listings(warm_profile) == want
            and listings(edit_profile) == listings(edited_reference)
        )
        identical_everywhere &= identical
        row = {
            "routines": n,
            "raw_arcs": len(data.arcs),
            "cold_ms": round(cold_s * 1000, 3),
            "warm_ms": round(warm_s * 1000, 3),
            "edit_ms": round(edit_s * 1000, 3),
            "speedup_warm_vs_cold": round(cold_s / warm_s, 2),
            "speedup_edit_vs_cold": round(cold_s / edit_s, 2),
            "byte_identical": identical,
        }
        rows.append(row)
        print(
            f"  {n:>5} routines: cold {row['cold_ms']:>9.2f} ms"
            f"  warm {row['warm_ms']:>8.3f} ms"
            f"  ({row['speedup_warm_vs_cold']}x)"
            f"  edit {row['edit_ms']:>8.3f} ms"
            f"  ({row['speedup_edit_vs_cold']}x)"
            f"  identical={identical}"
        )
    import os
    import platform

    report = {
        "benchmark": "T-PIPE repeated-analysis latency",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "corpus": {
            "arcs_per_routine": cfg["arcs_per_routine"],
            "nbuckets": cfg["nbuckets"],
            "seed": 4321,
            "cold_repeats": cfg["cold_repeats"],
            "warm_repeats": cfg["warm_repeats"],
        },
        "rows": rows,
    }
    return report, identical_everywhere
