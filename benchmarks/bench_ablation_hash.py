"""A-HASH — §3.1 ablation: call-site-primary vs callee-primary hashing.

The paper chose the call site as the primary key because "each call
site typically calls only one callee", so lookups are "usually one"
probe; it explicitly rejects the callee-primary alternative as having
"longer lookups in the monitoring routine".

This ablation runs both organizations on identical call streams:

* on a fan-in workload (a popular routine called from many sites —
  the paper's motivating program shape) the callee-keyed table's probe
  count grows with the routine's popularity while the site-keyed one
  stays at 1.0;
* both condense to identical arc records, so the choice is purely a
  run-time-cost question — exactly how §3.1 frames it.
"""

import random

from repro.machine.mcount import ArcTable, CalleeKeyedArcTable

from benchmarks.conftest import report


def fan_in_stream(sites: int = 60, calls_per_site: int = 40, seed: int = 3):
    """Call events: many distinct sites all calling one popular callee,
    plus a sprinkle of private helpers (one site each)."""
    rng = random.Random(seed)
    events = []
    popular = 8
    for site in range(sites):
        for _ in range(calls_per_site):
            events.append((1000 + 4 * site, popular))
    for site in range(sites):
        events.append((5000 + 4 * site, 2000 + 8 * site))
    rng.shuffle(events)
    return events


def run_table(table, events):
    cost = 0
    for from_pc, self_pc in events:
        cost += table.record(from_pc, self_pc)
    return cost


def test_probe_counts(benchmark):
    events = fan_in_stream()
    site_keyed = ArcTable()
    callee_keyed = CalleeKeyedArcTable()
    site_cost = run_table(site_keyed, events)
    callee_cost = run_table(callee_keyed, events)
    rows = [
        ("mean probes", f"{site_keyed.stats.mean_probes:.2f}",
         f"{callee_keyed.stats.mean_probes:.2f}"),
        ("colliding lookups", site_keyed.stats.collisions,
         callee_keyed.stats.collisions),
        ("simulated cycles", site_cost, callee_cost),
    ]
    report(
        "Arc-table ablation on a fan-in workload (60 sites -> 1 routine)",
        rows,
        header=("metric", "site-keyed", "callee-keyed"),
    )
    benchmark(lambda: run_table(ArcTable(), events))
    # the paper's choice: one probe per ordinary lookup…
    assert site_keyed.stats.mean_probes == 1.0
    # …the alternative: probes grow with the callee's popularity.
    assert callee_keyed.stats.mean_probes > 5.0
    assert callee_cost > site_cost


def test_identical_condensed_output(benchmark):
    events = fan_in_stream(seed=11)
    site_keyed = ArcTable()
    callee_keyed = CalleeKeyedArcTable()
    run_table(site_keyed, events)
    run_table(callee_keyed, events)
    assert site_keyed.arcs() == callee_keyed.arcs()
    report(
        "Both organizations condense to the same arc records",
        [("distinct arcs", len(site_keyed))],
    )
    benchmark(lambda: run_table(CalleeKeyedArcTable(), events))


def test_functional_parameter_case_reverses(benchmark):
    """Fairness check: for one CALLI site spraying many callees, the
    trade reverses — the callee-keyed table wins there.  The paper
    still prefers site-keying because such sites are rare."""
    events = [(4, 100 * (i % 12)) for i in range(4000)]
    site_keyed = ArcTable()
    callee_keyed = CalleeKeyedArcTable()
    run_table(site_keyed, events)
    run_table(callee_keyed, events)
    report(
        "One CALLI site, 12 destinations",
        [
            ("site-keyed probes", f"{site_keyed.stats.mean_probes:.2f}"),
            ("callee-keyed probes", f"{callee_keyed.stats.mean_probes:.2f}"),
        ],
    )
    benchmark(lambda: run_table(ArcTable(), events))
    assert callee_keyed.stats.mean_probes < site_keyed.stats.mean_probes
