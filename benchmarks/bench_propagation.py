"""T-PROP — §4: time propagation vs ground truth.

Two checks:

1. **Exactness on uniform DAGs.**  When every call to a routine really
   does take the same time (the paper's stated assumption), the
   recurrence is exact: on VM workloads with uniform per-call costs,
   the entry routine's total equals the whole program's sampled time
   and each caller's inherited share matches the true cycles its calls
   consumed.
2. **The documented failure mode.**  On the skewed workload (per-call
   cost depends on the argument), attribution by call counts deviates
   from ground truth by construction; we print by how much.

The benchmarked operation is the propagation pass itself on a sizable
synthetic graph.
"""

import random

import pytest

from repro.core import analyze
from repro.core.cycles import number_graph
from repro.core.propagate import propagate
from repro.machine import assemble, run_profiled
from repro.machine.programs import deep, skewed

from benchmarks.conftest import report
from tests.helpers import graph_from_edges


def test_exact_on_uniform_workload(benchmark):
    src = deep(depth_work=40, iterations=30)
    cpu, data = run_profiled(src, name="deep")
    symbols = assemble(src, profile=True).symbol_table()
    profile = benchmark(analyze, data, symbols)
    main = profile.entry("main")
    rows = [("program total", f"{profile.total_seconds:.2f}s"),
            ("main self+desc", f"{main.total_seconds:.2f}s"),
            ("main %time", f"{main.percent:.1f}%")]
    report("Uniform costs: root collects everything", rows)
    assert main.percent == pytest.approx(100.0, abs=0.5)
    # each level inherits everything below it
    prev = main.total_seconds
    for level in ("level1", "level2", "level3", "level4", "level5"):
        entry = profile.entry(level)
        assert entry.total_seconds <= prev + 1e-9
        prev = entry.total_seconds


def test_skew_misattribution_measured(benchmark):
    src = skewed(cheap_calls=99, dear_calls=1, dear_work=99)
    cpu, data = run_profiled(src, name="skewed")
    symbols = assemble(src, profile=True).symbol_table()
    profile = benchmark(analyze, data, symbols)
    entry = profile.entry("work_n")
    shares = {p.name: p.self_share + p.child_share for p in entry.parents}
    total = sum(shares.values())
    # ground truth: each caller causes ~half the callee's work
    rows = [
        ("cheap_caller", "50%", f"{100 * shares['cheap_caller'] / total:.1f}%"),
        ("dear_caller", "50%", f"{100 * shares['dear_caller'] / total:.1f}%"),
    ]
    report(
        "Average-time pitfall: true vs attributed share of work_n",
        rows,
        header=("caller", "true", "attributed"),
    )
    # the attribution follows call counts (99:1), not work (1:1) —
    # the paper's documented limitation, reproduced.
    assert shares["cheap_caller"] / total == pytest.approx(0.99, abs=0.01)


def test_propagation_pass_scales(benchmark):
    rng = random.Random(7)
    n = 2000
    edges = []
    for child in range(1, n):
        for parent in rng.sample(range(child), k=min(2, child)):
            edges.append((f"f{parent}", f"f{child}", rng.randint(1, 9)))
    graph = graph_from_edges(*edges)
    numbered = number_graph(graph)
    times = {f"f{i}": rng.random() for i in range(n)}

    result = benchmark(propagate, numbered, times)
    root_total = result.total_time["f0"]
    assert root_total == pytest.approx(sum(times.values()), rel=1e-9)
    report(
        "Propagation on a 2000-node DAG",
        [("nodes", n), ("arcs", len(edges)),
         ("root total == Σ self", f"{root_total:.3f}")],
    )
