"""T-TIMESHARE — §3.2: why sampling beats elapsed-time measurement.

"One method measures the execution time of a routine by measuring the
elapsed time from routine entry to routine exit.  Unfortunately, time
measurement is complicated on time-sharing systems by the time-slicing
of the program.  A second method samples the value of the program
counter... particularly suited to time-sharing systems."

Shape reproduced: running the measured program alongside a competing
process on a round-robin machine,

* the elapsed-time profiler's per-activation figure for the measured
  routine inflates with the competitor's share of the machine (≈2x
  with one equal competitor, ≈Nx with N), while
* the PC-sampling histogram of the measured process is bit-identical
  to a solo run — its clock only advances while it runs.
"""

import pytest

from repro.machine import CPU, Monitor, MonitorConfig, assemble
from repro.machine.timeshare import ElapsedTimeProfiler, TimeSharedMachine

from benchmarks.conftest import report

MEASURED = """
.func main
    PUSH 25
    STORE 0
loop:
    CALL step_work
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func step_work
    WORK 120
    RET
.end
"""

COMPETITOR = """
.func main
    PUSH 500
    STORE 0
loop:
    WORK 100
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end
"""


def run_machine(n_competitors: int):
    """Run the measured program beside ``n_competitors`` noise processes."""
    exe = assemble(MEASURED, name="measured", profile=True)
    monitor = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=10))
    measured = CPU(exe, monitor)
    cpus = [measured] + [
        CPU(assemble(COMPETITOR, name=f"noise{i}")) for i in range(n_competitors)
    ]
    machine = TimeSharedMachine(cpus, quantum=150)
    elapsed = ElapsedTimeProfiler(machine.wall_clock)
    measured.tracer = elapsed
    machine.run()
    return exe, monitor, elapsed


def test_elapsed_inflates_with_load(benchmark):
    results = {}
    for n in (0, 1, 3):
        _, _, elapsed = run_machine(n)
        results[n] = elapsed.mean_wall("step_work")
    rows = [
        (f"{n} competitors", f"{results[n]:.0f} wall cycles",
         f"{results[n] / results[0]:.2f}x")
        for n in (0, 1, 3)
    ]
    report("Elapsed-time method: mean wall time of step_work",
           rows, header=("load", "measured", "inflation"))
    benchmark(lambda: run_machine(1))
    assert results[1] > results[0] * 1.2
    assert results[3] > results[1]


def test_sampling_immune_to_load(benchmark):
    profiles = {}
    for n in (0, 1, 3):
        exe, monitor, _ = run_machine(n)
        profiles[n] = monitor.histogram.assign_samples(exe.symbol_table())
    rows = [
        (f"{n} competitors",
         f"{profiles[n].get('step_work', 0):.3f}s",
         f"{profiles[n].get('main', 0):.3f}s")
        for n in (0, 1, 3)
    ]
    report("Sampling method: step_work / main self time",
           rows, header=("load", "step_work", "main"))
    benchmark(lambda: run_machine(0))
    # bit-identical across machine loads
    assert profiles[0] == profiles[1] == profiles[3]
