"""T-SMP — sharded SMP profiling: throughput, merge cost, and the
byte-identity gate.

Three measurements on the :class:`~repro.machine.smp.SMPMachine`:

* **Sharded vs global-lock gathering.**  The same workload (M
  processes of a call-heavy program) runs with per-CPU shards — each
  profiling event lands in a buffer only the executing CPU touches —
  and with the strawman layout, where every tick and every monitoring
  routine invocation takes a real ``threading.Lock`` around one shared
  buffer.  Both record the identical union of events (checked in the
  same run the speed is measured in); the committed numbers show what
  the lock costs as the machine widens.

* **Merge cost vs CPU count.**  :func:`~repro.machine.smp.reduce_shards`
  folds N shard snapshots through the fleet accumulator; the trajectory
  records how that scales with N (it is O(events), not O(N·buckets),
  once shards are sparse).

* **The identity gate.**  For every CPU count x seed x policy sampled —
  and the global-lock layout — the merged ``gmon`` bytes must equal the
  single-CPU baseline's, byte for byte.  A False here makes
  ``emit_bench`` exit 2; the CI ``smp-smoke`` job leans on this.

``python -m benchmarks.emit_bench --suite smp`` writes BENCH_smp.json.
"""

from __future__ import annotations

import os
import platform
import time

from repro.gmon import dumps_gmon
from repro.machine import assemble
from repro.machine.programs import PROGRAMS
from repro.machine.smp import POLICIES, SMPMachine, reduce_shards

#: Workload shape: call-heavy so the monitoring routine (the part the
#: strawman wraps in a lock) dominates profiling overhead.
FULL = {
    "program": ("call_heavy", {"calls": 4000}),
    "nprocs": 4,
    "cpu_counts": (1, 2, 4, 8),
    "seeds": (0, 1, 2),
    "repeats": 3,
}
QUICK = {
    "program": ("call_heavy", {"calls": 600}),
    "nprocs": 4,
    "cpu_counts": (1, 2, 4),
    "seeds": (0, 1, 2),
    "repeats": 1,
}

CYCLES_PER_TICK = 50


def build_exe(cfg):
    name, kw = cfg["program"]
    return assemble(PROGRAMS[name](**kw), name=name, profile=True)


def build_machine(exe, cfg, ncpus, seed=0, policy="rr", sharding="percpu"):
    return SMPMachine(
        exe,
        ncpus=ncpus,
        nprocs=cfg["nprocs"],
        policy=policy,
        seed=seed,
        cycles_per_tick=CYCLES_PER_TICK,
        sharding=sharding,
    )


def timed_run(exe, cfg, ncpus, sharding, repeats):
    """Best wall-seconds to run the workload; returns (secs, machine)."""
    best, machine = float("inf"), None
    for _ in range(repeats):
        machine = build_machine(exe, cfg, ncpus, sharding=sharding)
        t0 = time.perf_counter()
        machine.run()
        best = min(best, time.perf_counter() - t0)
    return best, machine


def merged_bytes(machine, comment):
    return dumps_gmon(machine.merged_profile(comment=comment))


def run_smp(quick: bool) -> tuple[dict, bool]:
    cfg = QUICK if quick else FULL
    exe = build_exe(cfg)
    comment = exe.name
    identical_everywhere = True

    # -- throughput: percpu shards vs the global-lock strawman ------------
    throughput_rows = []
    baseline_bytes = None
    for ncpus in cfg["cpu_counts"]:
        sharded_s, sharded_m = timed_run(exe, cfg, ncpus, "percpu", cfg["repeats"])
        locked_s, locked_m = timed_run(
            exe, cfg, ncpus, "global-lock", cfg["repeats"]
        )
        sharded_bytes = merged_bytes(sharded_m, comment)
        if baseline_bytes is None:
            baseline_bytes = sharded_bytes
        identical = (
            sharded_bytes == baseline_bytes
            and merged_bytes(locked_m, comment) == baseline_bytes
        )
        identical_everywhere &= identical
        instructions = sum(
            p.cpu.instructions_executed for p in sharded_m.procs
        )
        row = {
            "cpus": ncpus,
            "sharded_seconds": round(sharded_s, 6),
            "global_lock_seconds": round(locked_s, 6),
            "sharded_minstr_per_sec": round(instructions / sharded_s / 1e6, 3),
            "global_lock_minstr_per_sec": round(instructions / locked_s / 1e6, 3),
            "lock_overhead": round(locked_s / sharded_s, 3),
            "events": sharded_m.total_ticks() + sharded_m.total_calls(),
            "byte_identical": identical,
        }
        throughput_rows.append(row)
        print(
            f"  {ncpus:>2} cpus: sharded {row['sharded_minstr_per_sec']:>7} Mi/s"
            f"  global-lock {row['global_lock_minstr_per_sec']:>7} Mi/s"
            f"  (lock {row['lock_overhead']}x)"
            f"  identical={identical}"
        )

    # -- merge cost vs CPU count ------------------------------------------
    merge_rows = []
    for ncpus in cfg["cpu_counts"]:
        machine = build_machine(exe, cfg, ncpus)
        machine.run()
        parts = machine.extract(comment=comment)
        best = float("inf")
        for _ in range(max(cfg["repeats"], 3)):
            t0 = time.perf_counter()
            merged = reduce_shards(
                parts, comment=comment, runs=cfg["nprocs"]
            )
            best = min(best, time.perf_counter() - t0)
        identical = dumps_gmon(merged) == baseline_bytes
        identical_everywhere &= identical
        merge_rows.append(
            {
                "shards": len(parts),
                "merge_seconds": round(best, 6),
                "merges_per_sec": round(1.0 / best, 1),
                "byte_identical": identical,
            }
        )
        print(
            f"  merge {len(parts):>2} shard(s): {round(best * 1e3, 3)} ms"
            f"  identical={identical}"
        )

    # -- the determinism gate: cpus x seeds x policies --------------------
    gate = {"schedules": 0, "mismatches": 0}
    for ncpus in cfg["cpu_counts"]:
        for seed in cfg["seeds"]:
            policy = POLICIES[(ncpus + seed) % len(POLICIES)]
            machine = build_machine(exe, cfg, ncpus, seed=seed, policy=policy)
            machine.run()
            gate["schedules"] += 1
            if merged_bytes(machine, comment) != baseline_bytes:
                gate["mismatches"] += 1
                identical_everywhere = False
    print(
        f"  gate: {gate['schedules']} schedules, "
        f"{gate['mismatches']} mismatches"
    )

    report = {
        "benchmark": "T-SMP sharded profiling",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "workload": {
            "program": cfg["program"][0],
            "args": cfg["program"][1],
            "nprocs": cfg["nprocs"],
            "cycles_per_tick": CYCLES_PER_TICK,
            "repeats": cfg["repeats"],
        },
        "throughput": throughput_rows,
        "merge": merge_rows,
        "identity_gate": gate,
    }
    return report, identical_everywhere
