"""T-COUNTERS — §3: inline counters vs the monitoring routine.

"The counter increment overhead is low, and is suitable for profiling
statements.  A call of the monitoring routine has an overhead
comparable with a call of a regular routine, and is therefore only
suited to profiling on a routine by routine basis."

Shape reproduced, per workload:

* block-counter instrumentation costs a small fraction of mcount
  instrumentation (an increment vs a simulated routine call + hash
  lookup);
* the counts themselves are *exact* (fib's recursion block runs
  exactly F-number times), where sampling is statistical;
* what counters cannot do — say where *time* went — is exactly why the
  monitoring routine exists: the two instruments answer different
  questions (§2).
"""

import pytest

from repro.machine import CPU, assemble, block_counts, run_profiled, run_unprofiled
from repro.machine.programs import PROGRAMS, fib

from benchmarks.conftest import report


def overheads(name: str) -> tuple[float, float]:
    """(counter overhead, mcount overhead) for one canned program."""
    src = PROGRAMS[name]()
    plain = run_unprofiled(src).cycles
    counted = CPU(assemble(src, count_blocks=True)).run().cycles
    profiled = run_profiled(src)[0].cycles
    return (counted - plain) / plain, (profiled - plain) / plain


def test_counters_cheaper_than_mcount(benchmark):
    rows = []
    for name in ("fib", "abstraction", "codegen", "call_heavy", "netcycle"):
        c, m = overheads(name)
        rows.append((name, f"{100 * c:.1f}%", f"{100 * m:.1f}%"))
        assert c < m, name
    report(
        "Instrumentation overhead: inline counters vs monitoring routine",
        rows,
        header=("program", "counters", "mcount"),
    )
    benchmark(lambda: overheads("fib"))


def test_counts_are_exact(benchmark):
    def run_counted():
        cpu = CPU(assemble(fib(12), count_blocks=True))
        cpu.run()
        return cpu

    cpu = benchmark(run_counted)
    counts = {c.name: c.count for c in block_counts(cpu)}
    # fib(n) makes 2*F(n+1)-1 calls; F(13)=233 → 465 entries.
    assert counts["fib.entry"] == 465
    assert counts["main.entry"] == 1
    # the recurse block runs once per internal node: entries - leaves.
    assert counts["fib.recurse"] == 465 - 233
    report(
        "Exact block counts for fib(12)",
        sorted(counts.items()),
        header=("block", "count"),
    )


def test_counting_preserves_behaviour(benchmark):
    def check():
        for name, builder in PROGRAMS.items():
            src = builder()
            plain = run_unprofiled(src)
            counted = CPU(assemble(src, count_blocks=True)).run()
            assert counted.output == plain.output, name
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
