"""T-PROFVSGPROF — §1-2: why a call graph profiler at all.

The motivating workload: calculations funnel work through shared
formatting abstractions.  prof (the baseline) shows the abstraction's
routines with middling self times and cannot say who is responsible;
gprof charges the cost to the calculations that caused it.

Shape to reproduce:

* under prof, no calc routine appears expensive (<~15% each) while the
  formatting trio collectively dominates;
* under gprof, every calc entry's inherited time exceeds its self time
  and the three calcs together account for most of the program;
* both tools agree exactly on self time (same histogram), so the
  difference is pure attribution.
"""

import pytest

from repro.baseline import prof_analyze
from repro.core import analyze
from repro.machine import assemble, run_profiled
from repro.machine.programs import abstraction

from benchmarks.conftest import report


@pytest.fixture(scope="module")
def workload():
    src = abstraction(iterations=80)
    cpu, data = run_profiled(src, name="abstraction")
    symbols = assemble(src, profile=True).symbol_table()
    return data, symbols


def test_prof_view_is_diffuse(benchmark, workload):
    data, symbols = workload
    rows_list = benchmark(prof_analyze, data, symbols)
    rows = {r.name: r for r in rows_list}
    table = [
        (name, f"{rows[name].percent:.1f}%", rows[name].calls)
        for name in ("calc1", "calc2", "calc3", "format1", "format2", "write")
    ]
    report("prof (baseline): flat view of the abstraction workload",
           table, header=("routine", "%time", "calls"))
    for calc in ("calc1", "calc2", "calc3"):
        assert rows[calc].percent < 15.0
    fmt_total = sum(rows[n].percent for n in ("format1", "format2", "write"))
    assert fmt_total > 60.0


def test_gprof_view_reattributes(benchmark, workload):
    data, symbols = workload
    profile = benchmark(analyze, data, symbols)
    table = [
        (
            name,
            f"{profile.entry(name).percent:.1f}%",
            f"{profile.entry(name).self_seconds:.2f}",
            f"{profile.entry(name).child_seconds:.2f}",
        )
        for name in ("calc1", "calc2", "calc3", "format1", "format2", "write")
    ]
    report("gprof: call-graph view of the same data",
           table, header=("routine", "%time", "self", "inherited"))
    calc_total = sum(
        profile.entry(c).percent for c in ("calc1", "calc2", "calc3")
    )
    assert calc_total > 90.0  # the calcs own (almost) the whole program
    for calc in ("calc1", "calc2", "calc3"):
        entry = profile.entry(calc)
        assert entry.child_seconds > entry.self_seconds


def test_same_self_time_basis(benchmark, workload):
    data, symbols = workload
    profile = analyze(data, symbols)
    rows = {r.name: r for r in prof_analyze(data, symbols)}

    def compare():
        for flat in profile.flat_entries:
            assert rows[flat.name].seconds == pytest.approx(flat.self_seconds)
        return True

    assert benchmark(compare)
