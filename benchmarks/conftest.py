"""Shared fixtures and report helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one of the paper's figures or claims
(see the experiment index in DESIGN.md).  Benchmarks both *measure*
(via pytest-benchmark) and *assert the shape* the paper reports; the
printed rows are collected into EXPERIMENTS.md by hand.
"""

from __future__ import annotations


def report(title: str, rows: list[tuple], header: tuple | None = None) -> None:
    """Print a small fixed-width table under a title banner."""
    print(f"\n== {title} ==")
    if header:
        print("  " + "  ".join(f"{h:>14}" for h in header))
    for row in rows:
        print("  " + "  ".join(f"{str(c):>14}" for c in row))
