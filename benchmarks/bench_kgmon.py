"""T-KGMON — retrospective: live kernel profiling.

"we had to be able to profile events of interest in the kernel without
taking the kernel down...  The programmer's interface allowed us to
turn the profiler on and off, extract the profiling data, and reset
the data."

Shape reproduced:

* control operations (on/off/extract/reset) never stop the kernel —
  its cycle clock advances across every operation;
* profiling OFF costs the kernel nothing (cycle-identical to an
  unmonitored run);
* windows partition the run: per-window samples sum to a whole-run
  profile's samples.

Benchmarked quantities: the extract (snapshot) cost, and a full
window-recording session.
"""

import pytest

from repro.kernel import Kgmon, KernelSession

from benchmarks.conftest import report


def test_extract_cost_and_isolation(benchmark):
    session = KernelSession(iterations=600)
    kgmon = Kgmon(session)
    session.run_slice(20000)
    data = benchmark(kgmon.extract, "bench window")
    # extraction is a copy: continuing the kernel must not mutate it.
    ticks_before = data.total_ticks
    session.run_slice(20000)
    assert data.total_ticks == ticks_before
    report(
        "kgmon extract",
        [("ticks in snapshot", ticks_before),
         ("arcs in snapshot", len(data.arcs))],
    )


def test_profiling_off_is_free(benchmark):
    def run_off():
        session = KernelSession(iterations=150)
        Kgmon(session).off()
        session.run_to_completion()
        return session.cpu.cycles

    def run_on():
        session = KernelSession(iterations=150)
        session.run_to_completion()
        return session.cpu.cycles

    off_cycles = run_off()
    on_cycles = run_on()
    benchmark(run_off)
    report(
        "Kernel cycles with profiling on vs off",
        [("profiling on", on_cycles), ("profiling off", off_cycles),
         ("mcount overhead", f"{100 * (on_cycles - off_cycles) / off_cycles:.1f}%")],
    )
    assert off_cycles < on_cycles


def test_windows_partition_the_run(benchmark):
    def record_windows():
        session = KernelSession(iterations=300)
        kgmon = Kgmon(session)
        windows = []
        while not session.halted:
            session.run_slice(6000)
            windows.append(kgmon.extract())
            kgmon.reset()
        return session, windows

    session, windows = benchmark.pedantic(record_windows, rounds=1, iterations=1)
    whole_session = KernelSession(iterations=300)
    whole_session.run_to_completion()
    whole = Kgmon(whole_session).extract()
    window_ticks = sum(w.total_ticks for w in windows)
    window_calls = sum(w.total_calls for w in windows)
    report(
        "Window partition vs uninterrupted run",
        [("windows", len(windows)),
         ("Σ window ticks", window_ticks),
         ("whole-run ticks", whole.total_ticks),
         ("Σ window calls", window_calls),
         ("whole-run calls", whole.total_calls)],
    )
    # Calls partition exactly; ticks to within a couple (mid-run resets
    # reorder spontaneous-site hash chains, nudging mcount cost).
    assert abs(window_ticks - whole.total_ticks) <= 3
    assert window_calls == whole.total_calls


def test_kernel_never_stops(benchmark):
    session = KernelSession(iterations=400)
    kgmon = Kgmon(session)

    def control_storm():
        before = session.cpu.cycles
        session.run_slice(2000)
        kgmon.on()
        session.run_slice(2000)
        kgmon.extract()
        session.run_slice(2000)
        kgmon.off()
        session.run_slice(2000)
        kgmon.reset()
        session.run_slice(2000)
        return session.cpu.cycles - before

    progressed = benchmark.pedantic(control_storm, rounds=1, iterations=1)
    report("Kernel progress across a control storm",
           [("cycles advanced", progressed)])
    assert progressed > 0
