"""FIG2/FIG3 — Figures 2-3: mutual recursion collapsed and renumbered.

Figure 2 adds mutual recursion between two nodes of Figure 1's graph;
Figure 3 shows the numbering after the strongly-connected component is
collapsed.  The benchmark measures the combined discover-and-number
pass on that graph.
"""

from repro.core.cycles import (
    condensation_arcs,
    number_graph,
    verify_topological,
)

from benchmarks.conftest import report
from tests.helpers import graph_from_edges
from tests.test_figures import FIG2_EDGES


def test_fig2_fig3_cycle_collapse(benchmark):
    graph = graph_from_edges(*FIG2_EDGES)
    numbered = benchmark(number_graph, graph)
    verify_topological(numbered)
    assert len(numbered.cycles) == 1
    cycle = numbered.cycles[0]
    assert set(cycle.members) == {"n3", "n7"}
    # Figure 3: nine numbered positions remain after the collapse.
    assert len(numbered.topo_order) == 9
    rows = [
        (name, numbered.topo_number[name], ",".join(numbered.members_of(name)))
        for name in sorted(
            numbered.topo_order, key=lambda n: -numbered.topo_number[n]
        )
    ]
    report(
        "Figures 2-3: numbering after collapsing cycle {n3,n7}",
        rows,
        header=("node", "number", "members"),
    )
    arcs = condensation_arcs(numbered)
    for (src, dst) in arcs:
        assert numbered.topo_number[src] > numbered.topo_number[dst]
