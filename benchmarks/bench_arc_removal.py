"""T-CYCLEREMOVAL — retrospective: breaking giant cycles cheaply.

"there were just a few arcs -- with low traversal counts -- that
closed the cycles...  The underlying problem is NP-complete, so we
added a bound on the number of arcs the tool would attempt to remove.
In practice, we found that the information lost by omitting these arcs
was far less than the information gained."

Shape reproduced:

* on the simulated kernel, the bounded greedy heuristic removes ≤2
  arcs carrying ~1% of call traffic and fully unfuses the network
  stack;
* on small random graphs the heuristic needs at most a few more arcs
  than the exhaustive optimum (which is exponential — benchmarked side
  by side to show why the bound exists).
"""

import random

import pytest

from repro.core import AnalysisOptions, analyze
from repro.core.arcremoval import (
    break_cycles_exact,
    break_cycles_heuristic,
    information_lost,
)
from repro.kernel import Kgmon, KernelSession

from benchmarks.conftest import report
from tests.helpers import graph_from_edges


@pytest.fixture(scope="module")
def kernel_window():
    session = KernelSession(iterations=500)
    session.run_to_completion()
    return Kgmon(session).extract(), session.symbol_table()


def test_kernel_cycle_removal(benchmark, kernel_window):
    data, symbols = kernel_window

    def run():
        return analyze(
            data, symbols, AnalysisOptions(auto_break_cycles=True, max_removed_arcs=4)
        )

    profile = benchmark(run)
    lost = information_lost(profile.removed_arcs, data.total_calls)
    report(
        "Kernel network-stack cycle, heuristic removal",
        [
            ("arcs removed", len(profile.removed_arcs)),
            ("removed", "; ".join(f"{r.caller}->{r.callee}({r.count})"
                                  for r in profile.removed_arcs)),
            ("info lost", f"{100 * lost:.2f}% of calls"),
            ("cycles left", len(profile.numbered.cycles)),
        ],
    )
    assert profile.numbered.cycles == []
    assert len(profile.removed_arcs) <= 2
    assert lost < 0.05


def test_attribution_gained(benchmark, kernel_window):
    """What the removal buys: per-layer inherited time becomes visible."""
    data, symbols = kernel_window
    fused = analyze(data, symbols)
    unfused = benchmark(
        analyze, data, symbols, AnalysisOptions(auto_break_cycles=True)
    )
    rows = []
    for layer in ("netisr", "ip_input", "tcp_input", "tcp_output"):
        fused_entry = fused.entry(layer)
        un_entry = unfused.entry(layer)
        rows.append(
            (layer,
             f"{fused_entry.child_seconds:.2f}s",
             f"{un_entry.child_seconds:.2f}s")
        )
    report("Per-layer inherited time, fused vs unfused",
           rows, header=("layer", "in cycle", "after removal"))
    # inside the cycle no member inherits from the others; after
    # removal every upstream layer inherits its downstream pipeline.
    assert unfused.entry("netisr").child_seconds > fused.entry(
        "netisr"
    ).child_seconds


def _random_cyclic_graph(rng, n=7, m=16):
    edges = [
        (f"n{rng.randrange(n)}", f"n{rng.randrange(n)}", rng.randint(1, 40))
        for _ in range(m)
    ]
    return graph_from_edges(*edges)


def test_heuristic_vs_exact_on_small_graphs(benchmark):
    rng = random.Random(2024)
    graphs = [_random_cyclic_graph(rng) for _ in range(20)]
    results = []
    for g in graphs:
        exact = break_cycles_exact(g.copy(), max_arcs=8)
        greedy = break_cycles_heuristic(g.copy(), max_arcs=20)
        results.append((len(exact), len(greedy)))
    extra = [g - e for e, g in results]
    report(
        "Greedy vs exhaustive on 20 random graphs",
        [
            ("mean optimum size", f"{sum(e for e, _ in results) / 20:.2f}"),
            ("mean greedy size", f"{sum(g for _, g in results) / 20:.2f}"),
            ("max extra arcs", max(extra)),
        ],
    )
    benchmark(lambda: break_cycles_heuristic(graphs[0].copy(), max_arcs=20))
    assert all(e >= 0 for e in extra)
    assert max(extra) <= 3  # greedy stays close to optimal


def test_exhaustive_cost_motivates_the_bound(benchmark):
    """The exponential blow-up that made the authors add a bound."""
    rng = random.Random(5)
    g = _random_cyclic_graph(rng, n=6, m=14)
    import time

    start = time.perf_counter()
    break_cycles_exact(g.copy(), max_arcs=6)
    exact_time = time.perf_counter() - start
    start = time.perf_counter()
    break_cycles_heuristic(g.copy(), max_arcs=20)
    greedy_time = time.perf_counter() - start
    report(
        "Solver cost on one 6-node graph",
        [("exhaustive", f"{exact_time * 1e3:.1f} ms"),
         ("greedy", f"{greedy_time * 1e3:.1f} ms")],
    )
    benchmark(lambda: break_cycles_heuristic(g.copy(), max_arcs=20))
