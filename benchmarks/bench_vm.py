"""T-VM — interpreter throughput: the fast engine vs the reference engine.

The reference :class:`~repro.machine.cpu.CPU` decodes every instruction
on every execution and walks a ~30-branch ``if``/``elif`` chain with
clock, interrupt, and sampling checks per step.  The fast engine
(:mod:`repro.machine.fastcpu`) predecodes once, dispatches through a
closure table, and batches all per-step checks behind a next-event
horizon.  This benchmark measures both engines on real workloads —
profiled and unprofiled — and asserts the two contracts the fast path
lives by:

* **observably identical** — same cycle clock, same histogram, same
  arcs, byte-identical ``gmon.out`` (checked here in the same run the
  speed is measured in; the full differential battery lives in
  ``tests/test_fastcpu_equivalence.py``);
* **throughput** — the committed BENCH_vm.json records 6-8x
  instructions/second on fib / call_heavy / insertion_sort; the pytest
  check asserts a conservative 3x floor so loaded CI machines don't
  flake.

``python -m benchmarks.emit_bench --suite vm`` is the standalone runner
that measures the full trajectory and writes BENCH_vm.json.
"""

from __future__ import annotations

import time

import pytest

from repro.gmon import dumps_gmon
from repro.machine import ENGINES, Monitor, MonitorConfig, assemble, make_cpu
from repro.machine.programs import PROGRAMS

from benchmarks.conftest import report

#: Workloads: (program, builder kwargs) at several sizes, covering the
#: call-dominated, arithmetic-dominated, and WORK-dominated regimes.
FULL_WORKLOADS = [
    ("fib", {"n": 20}),
    ("call_heavy", {"calls": 20000}),
    ("compute_heavy", {"calls": 2000, "work": 200}),
    ("insertion_sort", {"n": 64}),
    ("hanoi", {"disks": 12}),
]
QUICK_WORKLOADS = [
    ("fib", {"n": 14}),
    ("call_heavy", {"calls": 2000}),
    ("insertion_sort", {"n": 24}),
]

CYCLES_PER_TICK = 100


def _execute(source: str, engine: str, profile: bool):
    """One run; returns (cpu, gmon bytes or None)."""
    exe = assemble(source, profile=profile)
    monitor = None
    if profile:
        monitor = Monitor(
            MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=CYCLES_PER_TICK)
        )
    cpu = make_cpu(exe, monitor, engine=engine)
    cpu.run()
    gmon = dumps_gmon(monitor.snapshot()) if profile else None
    return cpu, gmon


def measure(source: str, engine: str, profile: bool, repeats: int):
    """Best-of instructions/second plus the run's observables.

    Only execution is timed: the image is assembled once and shared
    (predecode is cached on it, so a multi-repeat measurement amortizes
    the one-time lowering exactly as a long-lived image would), while
    each repeat gets a fresh monitor and CPU.
    """
    exe = assemble(source, profile=profile)
    best, cpu, gmon = float("inf"), None, None
    for _ in range(repeats):
        monitor = None
        if profile:
            monitor = Monitor(
                MonitorConfig(
                    exe.low_pc, exe.high_pc, cycles_per_tick=CYCLES_PER_TICK
                )
            )
        cpu = make_cpu(exe, monitor, engine=engine)
        t0 = time.perf_counter()
        cpu.run()
        best = min(best, time.perf_counter() - t0)
        gmon = dumps_gmon(monitor.snapshot()) if profile else None
    return cpu.instructions_executed / best, best, cpu, gmon


def run_vm(quick: bool) -> tuple[dict, bool]:
    """Measure every workload on both engines; the emit_bench core.

    Returns ``(report_dict, identical_everywhere)`` where the flag
    asserts byte-identical gmon output (and identical machine state)
    between the engines on every profiled workload.
    """
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    repeats = 1 if quick else 3
    rows = []
    identical_everywhere = True
    for name, kwargs in workloads:
        source = PROGRAMS[name](**kwargs)
        row = {"program": name, "args": kwargs}
        for profile in (True, False):
            mode = "profiled" if profile else "unprofiled"
            results = {}
            for engine in ENGINES:
                ips, secs, cpu, gmon = measure(source, engine, profile, repeats)
                results[engine] = (cpu, gmon)
                row[f"{mode}_{engine}_ips"] = round(ips)
                row[f"{mode}_{engine}_seconds"] = round(secs, 6)
            fast_cpu, fast_gmon = results["fast"]
            ref_cpu, ref_gmon = results["reference"]
            identical = (
                fast_gmon == ref_gmon
                and fast_cpu.cycles == ref_cpu.cycles
                and fast_cpu.instructions_executed == ref_cpu.instructions_executed
                and fast_cpu.output == ref_cpu.output
            )
            identical_everywhere &= identical
            row[f"{mode}_speedup"] = round(
                row[f"{mode}_fast_ips"] / row[f"{mode}_reference_ips"], 2
            )
            row[f"{mode}_identical"] = identical
        row["instructions"] = results["fast"][0].instructions_executed
        rows.append(row)
        print(
            f"  {name:>15}: profiled {row['profiled_speedup']:>5}x"
            f"  unprofiled {row['unprofiled_speedup']:>5}x"
            f"  ({row['instructions']} instructions)"
            f"  identical={row['profiled_identical'] and row['unprofiled_identical']}"
        )
    import os
    import platform

    return {
        "benchmark": "T-VM interpreter throughput",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "cycles_per_tick": CYCLES_PER_TICK,
        "repeats": repeats,
        "rows": rows,
    }, identical_everywhere


# --------------------------------------------------------------------------
# pytest-benchmark entries + the directional contract.
# --------------------------------------------------------------------------

FIB_SOURCE = PROGRAMS["fib"](17)


def test_fast_engine_profiled_throughput(benchmark):
    cpu, gmon = benchmark(_execute, FIB_SOURCE, "fast", True)
    assert cpu.halted and gmon


def test_reference_engine_profiled_baseline(benchmark):
    cpu, gmon = benchmark(_execute, FIB_SOURCE, "reference", True)
    assert cpu.halted and gmon


def test_fast_engine_unprofiled_throughput(benchmark):
    cpu, _ = benchmark(_execute, FIB_SOURCE, "fast", False)
    assert cpu.halted


@pytest.mark.parametrize("profile", [True, False],
                         ids=["profiled", "unprofiled"])
def test_fast_engine_at_least_3x(profile):
    """The acceptance floor, asserted on every pytest run; the full
    magnitudes (6-8x) live in the committed BENCH_vm.json."""
    mode = "profiled" if profile else "unprofiled"
    fast_ips, _, fast_cpu, fast_gmon = measure(FIB_SOURCE, "fast", profile, 3)
    ref_ips, _, ref_cpu, ref_gmon = measure(FIB_SOURCE, "reference", profile, 3)
    report(
        f"VM engines, fib(17) {mode}: reference vs fast",
        [
            ("reference", f"{ref_ips:,.0f} i/s"),
            ("fast", f"{fast_ips:,.0f} i/s"),
            ("speedup", f"{fast_ips / ref_ips:.2f}x"),
        ],
        header=("engine", "throughput"),
    )
    # identical observables in the very run that was timed
    assert fast_gmon == ref_gmon
    assert fast_cpu.cycles == ref_cpu.cycles
    assert fast_cpu.instructions_executed == ref_cpu.instructions_executed
    assert fast_ips >= 3 * ref_ips


def test_quick_suite_byte_identical():
    """The emit_bench core's own identity gate, at smoke scale."""
    report_dict, identical = run_vm(quick=True)
    assert identical
    assert all(
        row["profiled_fast_ips"] > 0 and row["unprofiled_fast_ips"] > 0
        for row in report_dict["rows"]
    )
