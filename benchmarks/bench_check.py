"""T-FLOW runner: dataflow-battery throughput and cache replay.

``repro-check --flow`` runs the whole per-routine dataflow stack — CFG
recovery, dominators, natural loops, interprocedural stack summaries,
interval interpretation, and the static frequency prediction — so its
cost scales with routine count, and the session cache exists so a
frontend that lints and then renders pays for one analysis.  This
benchmark measures both:

* ``cold`` — :func:`repro.check.flow.analyze_flow` from scratch, over
  the canned-program corpus and over synthetic call chains large
  enough that the interprocedural summary iteration matters;
* ``replay`` — the same image re-analyzed through
  :class:`~repro.pipeline.ProfileSession` against a cache that already
  holds its flow analysis: one content digest, one hit.  The replay
  deserializes a fresh ``Executable`` first so the digest is honestly
  recomputed.

Every corpus must render **byte-identical** flow reports and predicted
profiles across two fresh analyses *and* the cache replay (exit 2
otherwise — the CI identity gate for the predicted-profile artifact).
The headline number is cold ``routines_per_sec``.
"""

from __future__ import annotations

import time

from repro.check.flow import analyze_flow, render_flow_report
from repro.machine import Executable, assemble
from repro.machine.programs import PROGRAMS
from repro.pipeline import AnalysisCache, ProfileSession

#: Synthetic corpus shape.  Each chain routine owns a counted loop and
#: one call site, so every analysis layer (loops, summaries, intervals,
#: activation propagation) does real work per routine.
FULL = {"chain_sizes": (100, 400), "repeats": 5}
QUICK = {"chain_sizes": (50,), "repeats": 2}


def synthetic_source(n: int) -> str:
    """A deterministic ``n``-routine call chain, leaves laid out first.

    Routine ``r0000`` is the leaf; ``r{i}`` calls ``r{i-1}`` once and
    then runs a three-iteration counted loop; ``main`` calls the chain
    head.  Leaf-first layout lets the summary iteration converge in its
    natural two passes instead of degenerating to one pass per link.
    """
    parts = []
    for i in range(n):
        call = f" CALL r{i - 1:04d}\n" if i else ""
        parts.append(
            f".func r{i:04d}\n{call} PUSH 3\n STORE 0\n"
            "top:\n WORK 5\n LOAD 0\n PUSH 1\n SUB\n STORE 0\n"
            " LOAD 0\n JNZ top\n RET\n.end\n"
        )
    parts.append(f".func main\n CALL r{n - 1:04d}\n HALT\n.end\n")
    return "".join(parts)


def artifacts(flow) -> tuple[str, str]:
    """The two byte-determinism-gated renderings of one analysis."""
    return render_flow_report(flow), flow.prediction.render_json()


def _timed(fn, repeats: int):
    """(best wall-clock seconds, last result) over ``repeats`` runs."""
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _bench_corpus(label: str, exes: list, repeats: int) -> tuple[dict, bool]:
    n_routines = sum(len(exe.functions) for exe in exes)

    def cold():
        return [analyze_flow(exe) for exe in exes]

    cold_s, flows = _timed(cold, repeats)
    reference = [artifacts(f) for f in flows]

    # Determinism across runs: a second fresh analysis must render the
    # same bytes.
    identical = all(
        artifacts(analyze_flow(exe)) == ref
        for exe, ref in zip(exes, reference)
    )

    # Cache replay: prime a shared cache, then re-analyze through a
    # freshly-deserialized image so the content digest is recomputed.
    cache = AnalysisCache()
    for exe in exes:
        ProfileSession.from_executable(exe, cache=cache).flow()
    replays = [Executable.from_dict(exe.to_dict()) for exe in exes]

    def replay():
        return [
            ProfileSession.from_executable(exe, cache=cache).flow()
            for exe in replays
        ]

    replay_s, replayed = _timed(replay, repeats)
    identical &= all(
        artifacts(f) == ref for f, ref in zip(replayed, reference)
    )

    row = {
        "corpus": label,
        "images": len(exes),
        "routines": n_routines,
        "cold_ms": round(cold_s * 1000, 3),
        "replay_ms": round(replay_s * 1000, 3),
        "routines_per_sec": round(n_routines / cold_s, 1),
        "speedup_replay_vs_cold": round(cold_s / replay_s, 2),
        "byte_identical": identical,
    }
    print(
        f"  {label:>10}: {n_routines:>4} routines"
        f"  cold {row['cold_ms']:>9.2f} ms"
        f"  ({row['routines_per_sec']:>8} r/s)"
        f"  replay {row['replay_ms']:>8.3f} ms"
        f"  ({row['speedup_replay_vs_cold']}x)"
        f"  identical={identical}"
    )
    return row, identical


def run_check(quick: bool) -> tuple[dict, bool]:
    cfg = QUICK if quick else FULL
    rows = []
    identical_everywhere = True

    canned = [
        assemble(builder(), name=name, profile=True)
        for name, builder in sorted(PROGRAMS.items())
    ]
    row, ok = _bench_corpus("canned", canned, cfg["repeats"])
    rows.append(row)
    identical_everywhere &= ok

    for n in cfg["chain_sizes"]:
        exe = assemble(synthetic_source(n), name=f"chain{n}", profile=True)
        row, ok = _bench_corpus(f"chain-{n}", [exe], cfg["repeats"])
        rows.append(row)
        identical_everywhere &= ok

    import os
    import platform

    report = {
        "benchmark": "T-FLOW dataflow-battery throughput",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "corpus": {
            "canned_programs": len(canned),
            "chain_sizes": list(cfg["chain_sizes"]),
            "repeats": cfg["repeats"],
        },
        "rows": rows,
    }
    return report, identical_everywhere
