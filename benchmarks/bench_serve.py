"""T-SERVE runner: ingest throughput and crash-recovery time.

Measures the :mod:`repro.serve` daemon end to end, through the real
HTTP stack:

* **ingest** — boot a :class:`ReproServer` on a loopback port, upload a
  synthetic fleet of gmon files from several concurrent agent threads
  (one tenant per thread, so per-tenant ordering is exercised alongside
  cross-tenant sharding), and record uploads/second — once with the
  durable fsync-per-append journal, once with ``fsync`` off to show
  what the durability guarantee costs;
* **recovery** — abandon the durable server *without* a graceful stop
  (its checkpoint is stale, its journal long — the on-disk shape a
  ``kill -9`` leaves), then time a cold :class:`TenantStore` recovery
  of every tenant and count the journal records replayed;
* **identity gate** — the recovered merged profile of every tenant must
  be byte-identical to an offline :func:`tree_reduce` of exactly the
  files that tenant uploaded.  A mismatch makes the suite exit 2 in CI.

Usage::

    python -m benchmarks.emit_bench --suite serve [--quick]
"""

from __future__ import annotations

import asyncio
import os
import platform
import threading
import time
from pathlib import Path

from repro.fleet import tree_reduce
from repro.gmon import dumps_gmon
from repro.serve import AgentClient, ReproServer, RetryPolicy, ServeConfig
from repro.serve.state import TenantStore

FULL = {"files": 400, "tenants": 4, "nbuckets": 2000, "narcs": 400,
        "arc_sites": 600}
QUICK = {"files": 60, "tenants": 3, "nbuckets": 200, "narcs": 40,
         "arc_sites": 60}


class ServerThread:
    """A ReproServer running in its own thread's event loop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.server: ReproServer | None = None
        self.addr: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._stop = None
        self._graceful = True
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> tuple[str, int]:
        self._thread.start()
        if not self._started.wait(30):
            raise RuntimeError("server thread failed to start")
        return self.addr

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.server = ReproServer(self.config)
        self.addr = await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started.set()
        await self._stop.wait()
        if self._graceful:
            await self.server.stop()
        else:
            # the kill -9 shape: sockets die, nothing checkpoints, the
            # journal on disk is all recovery gets
            self.server._server.close()
            for store in self.server.tenants.values():
                store.close()

    def stop(self, graceful: bool = True) -> None:
        self._graceful = graceful
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(30)


def upload_fleet(host: str, port: int, assignments) -> float:
    """Upload every (tenant, path) slice from its own thread; seconds."""
    errors: list[BaseException] = []

    def agent(tenant: str, paths: list[str]) -> None:
        client = AgentClient(
            host, port, timeout=30,
            policy=RetryPolicy(retries=8, base_delay=0.05, seed=1),
        )
        try:
            for path in paths:
                client.upload_file(tenant, path)
        except BaseException as exc:  # noqa: BLE001 — reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=agent, args=(tenant, paths))
        for tenant, paths in assignments.items()
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return elapsed


def ingest_run(root: Path, assignments, fsync: bool) -> tuple[float, ServeConfig]:
    config = ServeConfig(
        root=str(root), port=0, fsync=fsync,
        checkpoint_every=10_000,  # keep the journal long for recovery
    )
    server = ServerThread(config)
    host, port = server.start()
    try:
        elapsed = upload_fleet(host, port, assignments)
    finally:
        server.stop(graceful=False)
    return elapsed, config


def run_serve(quick: bool) -> tuple[dict, bool]:
    from benchmarks.emit_bench import build_corpus
    import tempfile

    cfg = QUICK if quick else FULL
    byte_identical = True
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        corpus_dir = Path(tmp) / "corpus"
        corpus_dir.mkdir()
        paths = build_corpus(
            corpus_dir, cfg["files"], cfg["nbuckets"], cfg["narcs"],
            cfg["arc_sites"],
        )
        assignments = {
            f"tenant-{i}": paths[i :: cfg["tenants"]]
            for i in range(cfg["tenants"])
        }

        durable_s, durable_cfg = ingest_run(
            Path(tmp) / "durable", assignments, fsync=True
        )
        fast_s, _ = ingest_run(Path(tmp) / "fast", assignments, fsync=False)

        # recovery: cold-open every tenant of the abandoned durable root
        from repro.serve import Quarantine

        quarantine = Quarantine(durable_cfg.quarantine_root())
        t0 = time.perf_counter()
        stores = {
            tenant: TenantStore.open(tenant, durable_cfg, quarantine)
            for tenant in assignments
        }
        recovery_s = time.perf_counter() - t0
        replayed = sum(s.since_checkpoint for s in stores.values())

        for tenant, slice_paths in assignments.items():
            offline = dumps_gmon(tree_reduce(slice_paths, jobs=1))
            recovered = stores[tenant].merged()
            if recovered != offline:
                byte_identical = False
            stores[tenant].close()

        n = cfg["files"]
        row = {
            "files": n,
            "tenants": cfg["tenants"],
            "durable_seconds": round(durable_s, 6),
            "durable_uploads_per_sec": round(n / durable_s, 1),
            "nofsync_seconds": round(fast_s, 6),
            "nofsync_uploads_per_sec": round(n / fast_s, 1),
            "fsync_cost_factor": round(durable_s / fast_s, 2),
            "recovery_seconds": round(recovery_s, 6),
            "records_replayed": replayed,
            "records_replayed_per_sec": round(replayed / recovery_s, 1)
            if recovery_s else None,
            "byte_identical": byte_identical,
        }
        print(
            f"  {n:>5} uploads: durable "
            f"{row['durable_uploads_per_sec']:>8} up/s"
            f"  no-fsync {row['nofsync_uploads_per_sec']:>8} up/s"
            f"  recovery {row['recovery_seconds']:.3f}s"
            f" ({replayed} records)  identical={byte_identical}"
        )
    report = {
        "benchmark": "T-SERVE ingest throughput and crash recovery",
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "corpus": {
            "nbuckets": cfg["nbuckets"],
            "narcs": cfg["narcs"],
            "arc_sites": cfg["arc_sites"],
            "seed": 1234,
        },
        "rows": [row],
    }
    return report, byte_identical
