"""T-MCOUNT — §3.1: the monitoring routine's hash table.

"Access to it must be as fast as possible...  Since each call site
typically calls only one callee, we can reduce (usually to one) the
number of minor lookups based on the callee...  collisions occur only
for call sites that call multiple destinations."

Shape reproduced here:

* ordinary call sites average exactly 1 probe per lookup;
* a functional-parameter site with k destinations averages ≤ k probes,
  and *only* such sites ever collide;
* recording throughput (the benchmarked quantity) is flat in the
  number of arcs already recorded — hash, not search.
"""

import random

from repro.machine import CPU, Monitor, MonitorConfig, assemble
from repro.machine.mcount import ArcTable
from repro.machine.programs import dispatch

from benchmarks.conftest import report


def test_ordinary_sites_one_probe(benchmark):
    table = ArcTable()

    def record_many():
        for site in range(200):
            for _ in range(50):
                table.record(1000 + 4 * site, 8)

    benchmark.pedantic(record_many, rounds=1, iterations=1)
    report(
        "Arc table, single-destination call sites",
        [
            ("lookups", table.stats.lookups),
            ("mean probes", f"{table.stats.mean_probes:.3f}"),
            ("collisions", table.stats.collisions),
        ],
    )
    assert table.stats.mean_probes == 1.0
    assert table.stats.collisions == 0


def test_functional_parameter_sites_bounded_probes(benchmark):
    rng = random.Random(42)
    table = ArcTable()
    destinations = [100 * (d + 1) for d in range(8)]

    def record_dispatchy():
        for _ in range(5000):
            table.record(4, rng.choice(destinations))

    benchmark.pedantic(record_dispatchy, rounds=1, iterations=1)
    report(
        "Arc table, one CALLI site with 8 destinations",
        [
            ("lookups", table.stats.lookups),
            ("mean probes", f"{table.stats.mean_probes:.3f}"),
            ("collision rate", f"{table.stats.collisions / table.stats.lookups:.2f}"),
        ],
    )
    assert 1.0 < table.stats.mean_probes <= len(destinations)


def test_probe_rate_on_real_program(benchmark):
    src = dispatch(rounds=50)
    exe = assemble(src, profile=True)

    def run():
        mon = Monitor(MonitorConfig(exe.low_pc, exe.high_pc))
        CPU(exe, mon).run()
        return mon

    mon = benchmark(run)
    stats = mon.stats
    report(
        "Arc table on the dispatch program (mixed sites)",
        [
            ("profiled calls", stats.lookups),
            ("mean probes", f"{stats.mean_probes:.3f}"),
            ("colliding lookups", stats.collisions),
        ],
    )
    # Only the CALLI site collides; overall mean stays near 1.
    assert stats.mean_probes < 2.0
    assert stats.collisions > 0


def test_throughput_flat_in_table_size(benchmark):
    """Recording cost must not grow with the number of arcs stored."""
    import time

    def cost_at(prefill: int) -> float:
        table = ArcTable()
        for site in range(prefill):
            table.record(4 * site, 8)
        start = time.perf_counter()
        for _ in range(20000):
            table.record(12, 8)
        return time.perf_counter() - start

    small = min(cost_at(10) for _ in range(3))
    large = min(cost_at(20000) for _ in range(3))
    report(
        "Recording cost vs arcs already in the table",
        [("10 arcs", f"{small * 1e6:.0f} us"), ("20000 arcs", f"{large * 1e6:.0f} us")],
    )
    benchmark(lambda: cost_at(1000))
    assert large < small * 3  # flat within noise, not linear growth
