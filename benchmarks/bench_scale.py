"""T-SCALE — post-processing cost on large call graphs.

Implicit in the paper ("Of course, among the programs on which we used
the new profiler was the profiler itself") and necessary for kernel
profiles: the analysis must stay near-linear in the size of the call
graph.  We run the full pipeline — symbolization, SCC discovery,
topological numbering, propagation, entry assembly — on random graphs
of 100 to 10,000 routines and check the growth is far from quadratic.
"""

import random
import time

import pytest

from repro.core import analyze
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.arcs import RawArc
from repro.core.symbols import Symbol, SymbolTable

from benchmarks.conftest import report

SYM = 16  # address units per routine


def synthetic_profile(n_routines: int, seed: int = 1):
    """A random profile over ``n_routines`` with ~3 arcs per routine."""
    rng = random.Random(seed)
    symbols = SymbolTable(
        Symbol(i * SYM, f"fn{i}", (i + 1) * SYM) for i in range(n_routines)
    )
    hist = Histogram.for_range(0, n_routines * SYM, scale=1.0 / SYM, profrate=100)
    for _ in range(n_routines * 2):
        hist.record(rng.randrange(n_routines) * SYM)
    arcs = [RawArc(0, 0, 1)]  # spontaneous entry into fn0
    for child in range(1, n_routines):
        for _ in range(3):
            parent = rng.randrange(n_routines)
            arcs.append(
                RawArc(parent * SYM + 4, child * SYM, rng.randint(1, 50))
            )
    return ProfileData(hist, arcs), symbols


def analysis_time(n: int) -> float:
    data, symbols = synthetic_profile(n)
    start = time.perf_counter()
    analyze(data, symbols)
    return time.perf_counter() - start


def test_scaling_is_near_linear(benchmark):
    sizes = (100, 1000, 10000)
    timings = {n: min(analysis_time(n) for _ in range(2)) for n in sizes}
    rows = [
        (n, f"{timings[n] * 1e3:.1f} ms",
         f"{timings[n] / timings[100]:.1f}x")
        for n in sizes
    ]
    report("Full analysis pipeline vs graph size",
           rows, header=("routines", "time", "vs 100"))
    benchmark(lambda: analysis_time(1000))
    # 100x the routines must cost far less than 100^2/100 = 10000x;
    # allow a generous super-linear factor for constant effects.
    assert timings[10000] < timings[100] * 500


def test_large_graph_correctness(benchmark):
    data, symbols = synthetic_profile(5000)
    profile = benchmark.pedantic(analyze, args=(data, symbols),
                                 rounds=1, iterations=1)
    assert len(profile.graph_entries) >= 4999
    # percentages are sane and total preserved
    assert profile.total_seconds == pytest.approx(
        data.histogram.total_time, rel=0.01
    )
    top = profile.graph_entries[0]
    assert 0.0 <= top.percent <= 100.0 + 1e-9


def test_deep_recursion_graph(benchmark):
    """A 20,000-deep chain (worse than any recursion limit) analyzes fine."""
    n = 20000
    symbols = SymbolTable(
        Symbol(i * SYM, f"fn{i}", (i + 1) * SYM) for i in range(n)
    )
    hist = Histogram.for_range(0, n * SYM, scale=1.0 / SYM, profrate=100)
    hist.record((n - 1) * SYM)
    arcs = [RawArc(0, 0, 1)] + [
        RawArc(i * SYM + 4, (i + 1) * SYM, 1) for i in range(n - 1)
    ]
    data = ProfileData(hist, arcs)
    profile = benchmark.pedantic(analyze, args=(data, symbols),
                                 rounds=1, iterations=1)
    # the leaf's tick propagates all the way to the root
    assert profile.entry("fn0").percent == pytest.approx(100.0)
