"""T-OVERHEAD — §7: "It adds only five to thirty percent execution
overhead to the program being profiled."

For every canned workload we execute the same program compiled with
and without monitoring prologues and compare simulated cycle counts:
the cost of the ``mcount`` hash-table work, priced per §3.1.  The shape
to reproduce: realistic programs land inside the 5-30% band;
pathological call-only loops exceed it; compute-bound programs fall
below (their prologue cost amortizes away).  The benchmarked quantity
is the host-time cost of executing the profiled VM run.
"""

from repro.machine import run_profiled, run_unprofiled
from repro.machine.programs import PROGRAMS

from benchmarks.conftest import report

#: Programs the paper's band should cover (ordinary structure).  The
#: dispatch stress case (tiny handlers through a functional parameter)
#: sits just above the band by design, next to call_heavy.
REALISTIC = ("abstraction", "codegen", "netcycle", "deep", "skewed")


def overhead_for(name: str) -> float:
    src = PROGRAMS[name]()
    profiled = run_profiled(src, name=name)[0].cycles
    plain = run_unprofiled(src, name=name).cycles
    return (profiled - plain) / plain


def test_overhead_band(benchmark):
    rows = []
    for name in sorted(PROGRAMS):
        oh = overhead_for(name)
        tag = (
            "in band" if 0.05 <= oh <= 0.30
            else ("below" if oh < 0.05 else "above")
        )
        rows.append((name, f"{100 * oh:.1f}%", tag))
    report(
        "Profiling overhead per workload (paper claims 5-30%)",
        rows,
        header=("program", "overhead", "vs band"),
    )
    # the benchmarked operation: one profiled run of the largest program
    benchmark(lambda: run_profiled(PROGRAMS["fib"](18), name="fib"))
    for name in REALISTIC:
        oh = overhead_for(name)
        assert 0.05 <= oh <= 0.30, (name, oh)
    assert overhead_for("compute_heavy") < 0.05
    assert overhead_for("call_heavy") > 0.30  # the adversarial case


def test_overhead_output_identical(benchmark):
    """Profiling must not change program behaviour, only cost."""

    def check_all():
        for name, builder in PROGRAMS.items():
            src = builder()
            assert run_profiled(src)[0].output == run_unprofiled(src).output

    benchmark(check_all)
