"""The §6 iterative optimization loop, end to end — manual, then hands-free.

Run:  python examples/iterative_optimization.py

"This tool is best used in an iterative approach: profiling the
program, eliminating one bottleneck, then finding some other part of
the program that begins to dominate execution time."

**Act one (the paper's loop, a programmer in the middle).**  The
program is a toy symbol-table client whose ``lookup`` uses an
"inefficient linear search algorithm" (§6's own example).  One turn:

1. profile — the call graph profile shows ``lookup``'s entry
   dominated by ``scan_chain``, and charges the cost up to ``intern``;
2. fix — "a lookup routine ... might be replaced with a binary
   search": we swap in a hashed variant with a short probe chain;
3. re-profile and *compare* — total time drops, ``scan_chain`` is
   gone, and the comparison names what dominates now (the §6 loop's
   next target).

**Act two (the same loop with the programmer replaced).**  The same
workload, written in Rel, goes through ``repro.lang.run_pgo`` — the
repro-pgo CLI's engine: measure, map the profile back onto the AST,
rewrite (branch ordering / benefit-model inlining / hot-cold layout),
verify, re-measure.  The act asserts the automated loop *finds the
same bottleneck* the manual reading of act one found, and shaves
cycles without a human ever looking at the listing.
"""

from repro.core import analyze
from repro.core.compare import compare_profiles, format_delta
from repro.lang import run_pgo
from repro.lang import compile_source
from repro.machine import Monitor, MonitorConfig, assemble, make_cpu, run_profiled
from repro.report import format_entry

COMMON = """
.func main
    PUSH 120
    STORE 0
loop:
    LOAD 0
    CALL intern
    LOAD 0
    CALL emit_ref
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func intern
    STORE 0
    WORK 2
    LOAD 0
    CALL lookup
    RET
.end

.func emit_ref
    STORE 0
    WORK 4
    RET
.end
"""

#: Version 1: linear search — lookup walks a chain proportional to the key.
SLOW = COMMON + """
.func lookup
    STORE 0
    WORK 1
    LOAD 0
    PUSH 8
    MOD
    PUSH 1
    ADD
    CALL scan_chain
    RET
.end

.func scan_chain
    STORE 0
probe:
    WORK 12
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ probe
    RET
.end
"""

#: Version 2: hashed lookup — constant short probe.
FAST = COMMON + """
.func lookup
    STORE 0
    WORK 1
    LOAD 0
    CALL hash_probe
    RET
.end

.func hash_probe
    STORE 0
    WORK 9
    RET
.end
"""


#: Act two: the same symbol-table client, in Rel, for the hands-free
#: loop.  scan_chain's probe loop is the bottleneck, same as act one.
REL_CLIENT = """
func scan_chain(n) {
    while (n > 0) { burn 12; n = n - 1; }
    return 0;
}
func lookup(k) {
    burn 1;
    return scan_chain(k % 8 + 1);
}
func intern(k) { burn 2; return lookup(k); }
func emit_ref(k) { burn 4; return k; }
func main() {
    i = 120;
    while (i > 0) { intern(i); emit_ref(i); i = i - 1; }
}
"""


def profile_version(source, name):
    cpu, data = run_profiled(source, name=name)
    exe = assemble(source, name=name, profile=True)
    return analyze(data, exe.symbol_table())


def profile_rel(source, name):
    """The manual reading, act-two flavour: profile the compiled Rel."""
    exe = compile_source(source, name=name, profile=True)
    monitor = Monitor(MonitorConfig(exe.low_pc, exe.high_pc, cycles_per_tick=100))
    cpu = make_cpu(exe, monitor)
    cpu.run()
    return analyze(monitor.mcleanup(), exe.symbol_table())


def act_one():
    # Turn 1: profile and read the bottleneck's entry.
    before = profile_version(SLOW, "v1-linear")
    print("turn 1 — the profile points at the lookup abstraction:\n")
    print(format_entry(before, "lookup"))
    print(format_entry(before, "scan_chain"))
    lookup_pct = before.percent_of("lookup")
    print(f"lookup (with descendants) owns {lookup_pct:.1f}% of v1.\n")

    # Turn 2: replace the algorithm, re-profile, compare.
    after = profile_version(FAST, "v2-hashed")
    delta = compare_profiles(before, after)
    print("turn 2 — after replacing linear search with hashing:\n")
    print(format_delta(delta, top=8))

    print(
        "scan_chain is gone, intern's inherited time collapsed, and the\n"
        "comparison already names the next target — exactly the loop the\n"
        "paper describes (they ran it until reading data files dominated)."
    )


def act_two():
    print("\n— act two: the same loop, hands-free (repro-pgo) —\n")
    # The manual reading first: which routine does a human see on top?
    manual = profile_rel(REL_CLIENT, "client-manual")
    manual_hot = manual.flat_entries[0].name
    print(f"a human reading the flat profile would start at: {manual_hot}")

    # Now the automated loop: measure -> rewrite -> verify -> re-measure.
    result = run_pgo(REL_CLIENT, name="client-pgo", rounds=2)
    print(f"run_pgo's first measurement names:             {result.bottleneck}")
    assert result.bottleneck == manual_hot, (
        "the automated loop must find the bottleneck the manual loop found"
    )
    assert result.identical, "PGO must never change observable behaviour"
    for r in result.rounds:
        moves = {k: v for k, v in r.counters.items() if v} or "nothing left"
        print(
            f"  round {r.index}: {r.cycles_before} -> {r.cycles_after} "
            f"cycles ({r.saved:+d}); rewrote: {moves}"
        )
    print(
        f"\nsame diagnosis, no human in the loop: {result.saved} cycles "
        f"saved\n({result.cycles_baseline} -> {result.cycles_final}), "
        "output bit-for-bit identical.\n"
        "The programmer's half of §6's cycle — rewriting the algorithm "
        "itself —\nremains theirs; the mechanical half is now free."
    )


def main():
    act_one()
    act_two()


if __name__ == "__main__":
    main()
