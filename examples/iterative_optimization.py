"""The §6 iterative optimization loop, end to end.

Run:  python examples/iterative_optimization.py

"This tool is best used in an iterative approach: profiling the
program, eliminating one bottleneck, then finding some other part of
the program that begins to dominate execution time."

The program is a toy symbol-table client whose ``lookup`` uses an
"inefficient linear search algorithm" (§6's own example).  One turn of
the loop:

1. profile — the call graph profile shows ``lookup``'s entry
   dominated by ``scan_chain``, and charges the cost up to ``intern``;
2. fix — "a lookup routine ... might be replaced with a binary
   search": we swap in a hashed variant with a short probe chain;
3. re-profile and *compare* — total time drops, ``scan_chain`` is
   gone, and the comparison names what dominates now (the §6 loop's
   next target).
"""

from repro.core import analyze
from repro.core.compare import compare_profiles, format_delta
from repro.machine import assemble, run_profiled
from repro.report import format_entry

COMMON = """
.func main
    PUSH 120
    STORE 0
loop:
    LOAD 0
    CALL intern
    LOAD 0
    CALL emit_ref
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func intern
    STORE 0
    WORK 2
    LOAD 0
    CALL lookup
    RET
.end

.func emit_ref
    STORE 0
    WORK 4
    RET
.end
"""

#: Version 1: linear search — lookup walks a chain proportional to the key.
SLOW = COMMON + """
.func lookup
    STORE 0
    WORK 1
    LOAD 0
    PUSH 8
    MOD
    PUSH 1
    ADD
    CALL scan_chain
    RET
.end

.func scan_chain
    STORE 0
probe:
    WORK 12
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ probe
    RET
.end
"""

#: Version 2: hashed lookup — constant short probe.
FAST = COMMON + """
.func lookup
    STORE 0
    WORK 1
    LOAD 0
    CALL hash_probe
    RET
.end

.func hash_probe
    STORE 0
    WORK 9
    RET
.end
"""


def profile_version(source, name):
    cpu, data = run_profiled(source, name=name)
    exe = assemble(source, name=name, profile=True)
    return analyze(data, exe.symbol_table())


def main():
    # Turn 1: profile and read the bottleneck's entry.
    before = profile_version(SLOW, "v1-linear")
    print("turn 1 — the profile points at the lookup abstraction:\n")
    print(format_entry(before, "lookup"))
    print(format_entry(before, "scan_chain"))
    lookup_pct = before.percent_of("lookup")
    print(f"lookup (with descendants) owns {lookup_pct:.1f}% of v1.\n")

    # Turn 2: replace the algorithm, re-profile, compare.
    after = profile_version(FAST, "v2-hashed")
    delta = compare_profiles(before, after)
    print("turn 2 — after replacing linear search with hashing:\n")
    print(format_delta(delta, top=8))

    print(
        "scan_chain is gone, intern's inherited time collapsed, and the\n"
        "comparison already names the next target — exactly the loop the\n"
        "paper describes (they ran it until reading data files dominated)."
    )


if __name__ == "__main__":
    main()
