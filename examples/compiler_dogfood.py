"""Dogfood: profiling the profiler's own compiler (§6's hard case).

Run:  python examples/compiler_dogfood.py

"Of course, among the programs on which we used the new profiler was
the profiler itself."  And §6 warns about what we will find: "Certain
types of programs are not easily analyzed by gprof.  They are typified
by programs that exhibit a large degree of recursion, such as
recursive descent compilers.  The problem is that most of the major
routines are grouped into a single monolithic cycle."

This example profiles the package's own Rel compiler (a recursive
descent parser feeding a tree-walking code generator) while it
compiles a workload of generated programs — and the §6 prediction
comes true: the parser's ``parse_*`` methods fuse into one cycle.  The
same data through the modern stack sampler shows the per-method
inclusive times the cycle hides.
"""

from repro.core import analyze
from repro.lang import compile_source
from repro.pyprof import Profiler
from repro.report import format_graph_profile
from repro.stacks import PyStackSampler, analyze_stacks, format_call_tree


def workload_source(i: int) -> str:
    """A generated Rel program exercising every language feature."""
    return f"""
array scratch[16];
var acc;
func helper_{i}(n) {{
    if (n < 2) {{ return n; }}
    return helper_{i}(n - 1) + helper_{i}(n - 2);
}}
func fill() {{
    j = 0;
    while (j < 16) {{
        scratch[j] = (j * {i + 3}) % 11;
        j = j + 1;
    }}
    return j;
}}
func main() {{
    acc = 0;
    fill();
    k = 0;
    while (k < 8 && acc < 1000) {{
        acc = acc + helper_{i}(k) + scratch[k];
        k = k + 1;
    }}
    print acc;
}}
"""


def compile_workload():
    for i in range(40):
        compile_source(workload_source(i), name=f"w{i}.rl")


def main():
    # Classic gprof view of the compiler.
    with Profiler() as p:
        compile_workload()
    profile = analyze(p.profile_data(), p.symbol_table())

    cycles = profile.numbered.cycles
    print(f"the compiler's call graph has {len(cycles)} cycle(s):")
    for cyc in cycles:
        members = [m for m in cyc.members]
        print(f"  {cyc.name}: {len(members)} routines, e.g. "
              + ", ".join(sorted(members)[:4]) + " …")
    print()
    print("§6 called it: the recursive-descent parser is 'grouped into a "
          "single monolithic cycle'.\n")

    parser_like = [
        e for e in profile.graph_entries
        if e.cycle is not None and "parse" in e.name
    ]
    if parser_like:
        whole = profile.entry(f"<cycle {parser_like[0].cycle}>")
        print(f"the cycle as a whole: {whole.percent:.1f}% of compile time, "
              f"{whole.ncalls} external calls\n")

    print("graph profile (top entries):\n")
    print(format_graph_profile(profile, min_percent=12.0))

    # The modern answer to the §6 complaint.
    with PyStackSampler(interval=0.002, mode="signal") as sampler:
        compile_workload()
    an = analyze_stacks(sampler.profile)
    print("what the cycle hides, recovered by stack sampling "
          "(exact inclusive % per parser method):")
    for name in sorted(sampler.profile.routines()):
        if "_Parser.parse_" in name and an.inclusive_percent(name) > 3:
            print(f"  {an.inclusive_percent(name):5.1f}%  {name}")
    print()
    print(format_call_tree(sampler.profile, min_percent=12.0, max_depth=6))


if __name__ == "__main__":
    main()
