"""Profiling a table-driven code generator — the paper's motivation.

Run:  python examples/code_generator.py

"We developed this tool in response to our efforts to improve a code
generator we were writing" [Graham82].  This example profiles a small
but real compiler: an arithmetic-expression language is lexed, parsed,
and compiled through a table-driven instruction selector into VM
assembly, which then actually runs on the package's VM.

The point the profile makes is the paper's §1 story: the compiler's
cost lives in small shared abstractions (symbol table lookups, pattern
matching, emission), so the flat profile is diffuse — but the call
graph profile charges each phase with the abstraction time it causes.
"""

from repro import analyze, format_flat_profile, format_graph_profile
from repro.machine import assemble, CPU
from repro.pyprof import Profiler

# --------------------------------------------------------------------------
# A miniature compiler: infix expressions -> VM assembly.
# --------------------------------------------------------------------------


def lex(text):
    """Tokenize an expression into numbers, names, and operators."""
    tokens = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch.isdigit():
            j = i
            while j < len(text) and text[j].isdigit():
                j += 1
            tokens.append(("num", int(text[i:j])))
            i = j
        elif ch.isalpha():
            j = i
            while j < len(text) and text[j].isalnum():
                j += 1
            tokens.append(("name", text[i:j]))
            i = j
        else:
            tokens.append(("op", ch))
            i += 1
    tokens.append(("eof", None))
    return tokens


class Parser:
    """Recursive-descent parser producing (op, left, right) trees."""

    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def parse_expression(self):
        node = self.parse_term()
        while self.peek() == ("op", "+") or self.peek() == ("op", "-"):
            op = self.advance()[1]
            node = (op, node, self.parse_term())
        return node

    def parse_term(self):
        node = self.parse_factor()
        while self.peek() == ("op", "*") or self.peek() == ("op", "/"):
            op = self.advance()[1]
            node = (op, node, self.parse_factor())
        return node

    def parse_factor(self):
        kind, value = self.advance()
        if kind == "num":
            return ("num", value, None)
        if kind == "name":
            return ("var", value, None)
        if (kind, value) == ("op", "("):
            node = self.parse_expression()
            self.advance()  # ')'
            return node
        raise SyntaxError(f"unexpected token {kind} {value!r}")


# The "table" of the table-driven generator: tree patterns -> emitters.
CODE_TABLE = {
    "+": "ADD",
    "-": "SUB",
    "*": "MUL",
    "/": "DIV",
}


class SymbolTableAbstraction:
    """The shared abstraction whose cost spreads in flat profiles."""

    def __init__(self):
        self.slots = {}

    def lookup(self, name):
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.slots[name]


def select_instruction(op):
    """Table-driven instruction selection."""
    return CODE_TABLE[op]


def emit(lines, text):
    """The emission abstraction every phase funnels through."""
    lines.append("    " + text)


def gen_expr(node, symtab, lines):
    """Recursive code generation over the expression tree."""
    kind, a, b = node
    if kind == "num":
        emit(lines, f"PUSH {a}")
    elif kind == "var":
        emit(lines, f"LOAD {symtab.lookup(a)}")
    else:
        gen_expr(a, symtab, lines)
        gen_expr(b, symtab, lines)
        emit(lines, select_instruction(kind))


def compile_program(expressions):
    """Compile expressions into one VM 'main' that OUTs each value."""
    symtab = SymbolTableAbstraction()
    lines = [".func main"]
    emit(lines, "PUSH 3")
    emit(lines, f"STORE {symtab.lookup('x')}")
    emit(lines, "PUSH 4")
    emit(lines, f"STORE {symtab.lookup('y')}")
    for text in expressions:
        tree = Parser(lex(text)).parse_expression()
        gen_expr(tree, symtab, lines)
        emit(lines, "OUT")
    emit(lines, "HALT")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def main():
    expressions = [
        "1 + 2 * 3",
        "x * y + x",
        "(x + y) * (x - y) + 100",
        "x * x * x + y * y * y",
        "10 * (x + 1) / 2 - y",
    ] * 40  # enough work to sample

    with Profiler() as p:
        source = compile_program(expressions)
    cpu = CPU(assemble(source, name="generated"))
    cpu.run()
    print(f"compiled {len(expressions)} expressions; "
          f"program output (first 5): {cpu.output[:5]}\n")

    profile = analyze(p.profile_data(), p.symbol_table())

    print(format_flat_profile(profile, show_never_called=False, min_percent=1.0))
    print(format_graph_profile(profile, min_percent=4.0))

    # The §1 takeaway, stated with numbers:
    emit_entry = profile.entry("emit")
    gen = profile.entry("gen_expr")
    print(
        f"'emit' is {emit_entry.percent:.1f}% of the program but its callers "
        "are invisible in the flat profile;\n"
        f"the graph profile shows gen_expr causes "
        f"{max(p_.count for p_ in emit_entry.parents)} of its "
        f"{emit_entry.ncalls} calls and inherits "
        f"{gen.child_seconds:.4f}s from its children."
    )


if __name__ == "__main__":
    main()
