"""Using the profiler to understand an unfamiliar program (§6).

Run:  python examples/navigate_unfamiliar.py

§6's scenario, replayed exactly: "you need to change the output format
of the program" someone else wrote.  The program (a VM executable — you
may not even have its source) has this output section::

    CALC1   CALC2   CALC3
        \\   /   \\   /
       FORMAT1  FORMAT2
             \\  /
            WRITE

The recipe from the paper:

1. profile a run and look at the entry for WRITE;
2. its parents are the format routines — candidates to change;
3. each format routine's entry lists *its* parents, so you can see
   which calculations reach the output through which formatter;
4. the static call graph matters because "the test case you run
   probably will not exercise the entire program" — here CALC3 never
   runs, yet the static arc still shows it feeds FORMAT2, so changing
   FORMAT2 would affect it too.
"""

from repro.core import AnalysisOptions, analyze
from repro.core.filters import reaching
from repro.machine import assemble, run_profiled, static_call_graph
from repro.report import format_entry, format_graph_profile

#: The unfamiliar program.  Note main's test input never triggers calc3.
UNFAMILIAR = """
.func main
    PUSH 30
    STORE 0
loop:
    LOAD 0
    CALL calc1
    LOAD 0
    CALL calc2
    LOAD 0
    PUSH 1000
    GT
    JZ no_calc3
    LOAD 0
    CALL calc3
no_calc3:
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func calc1
    STORE 0
    WORK 10
    LOAD 0
    CALL format1
    RET
.end

.func calc2
    STORE 0
    WORK 14
    LOAD 0
    PUSH 2
    MOD
    JZ even
    LOAD 0
    CALL format1
    RET
even:
    LOAD 0
    CALL format2
    RET
.end

.func calc3
    STORE 0
    WORK 9
    LOAD 0
    CALL format2
    RET
.end

.func format1
    STORE 0
    WORK 25
    LOAD 0
    CALL write
    RET
.end

.func format2
    STORE 0
    WORK 30
    LOAD 0
    CALL write
    RET
.end

.func write
    STORE 0
    WORK 8
    LOAD 0
    OUT
    RET
.end
"""


def main():
    # Run the program on "an example" and profile it.
    cpu, data = run_profiled(UNFAMILIAR, name="unfamiliar")
    exe = assemble(UNFAMILIAR, name="unfamiliar", profile=True)
    profile = analyze(
        data,
        exe.symbol_table(),
        AnalysisOptions(static_arcs=sorted(static_call_graph(exe))),
    )

    print("step 1 — look up the entry for the system call 'write':\n")
    print(format_entry(profile, "write"))

    fmt_parents = [p.name for p in profile.entry("write").parents]
    print(f"step 2 — write's parents are {fmt_parents}: "
          "the format routine to change is among them.\n")

    print("step 3 — inspect each format routine's parents:\n")
    for fmt in fmt_parents:
        print(format_entry(profile, fmt))

    print("step 4 — the static arc saves you: calc3 never ran on this "
          "test case, but the crawler found calc3 -> format2 (shown "
          "with a 0/N count), so splitting format2 must account for "
          "calc3 as well.\n")
    line = next(
        p for p in profile.entry("format2").parents if p.name == "calc3"
    )
    print(f"   calc3 -> format2: count {line.count}/{line.total} "
          f"(statically discovered)\n")

    # Bonus: show only the output section of the graph, the subgraph
    # filter the retrospective added.
    keep = reaching(profile.graph, ["write"])
    print("the output section of the program, isolated:\n")
    print(format_graph_profile(profile, only=keep))


if __name__ == "__main__":
    main()
