"""The modern successor: complete-call-stack sampling (retrospective).

Run:  python examples/modern_stacks.py

The retrospective closes by noting that gprof "is gradually being
replaced by more accurate and more usable tools" which gather complete
call stacks.  This example runs both designs side by side on the two
workloads where the difference matters, then profiles real Python code
with the SIGPROF stack sampler and prints a textual flame graph.
"""

import time

from repro.core import analyze
from repro.machine import assemble, run_profiled
from repro.machine.programs import even_odd, skewed
from repro.stacks import (
    PyStackSampler,
    analyze_stacks,
    format_call_tree,
    format_hot_paths,
    write_folded,
)
from repro.stacks.vm import run_stack_profiled


def compare_on_skew():
    """Workload 1: the average-time pitfall."""
    src = skewed(cheap_calls=99, dear_calls=1, dear_work=99)
    print("--- skewed workload: two callers, equal true cost, 99:1 calls ---")
    cpu, data = run_profiled(src, name="skewed")
    profile = analyze(data, assemble(src, profile=True).symbol_table())
    entry = profile.entry("work_n")
    total = sum(p.self_share + p.child_share for p in entry.parents)
    for p in entry.parents:
        print(f"  gprof : {p.name:14s} "
              f"{100 * (p.self_share + p.child_share) / total:5.1f}%  "
              f"(by call counts: {p.count}/{p.total})")
    cpu, stacks = run_stack_profiled(src, "skewed", cycles_per_tick=7)
    for caller, share in sorted(
        analyze_stacks(stacks).caller_shares("work_n").items()
    ):
        print(f"  stacks: {caller:14s} {100 * share:5.1f}%  (observed)")
    print("  ground truth: 50% each\n")


def compare_on_recursion():
    """Workload 2: mutual recursion."""
    src = even_odd(40)
    print("--- mutually recursive workload ---")
    cpu, data = run_profiled(src, name="even_odd")
    profile = analyze(data, assemble(src, profile=True).symbol_table())
    cyc = profile.numbered.cycles[0]
    print(f"  gprof : must fuse {cyc.members} into {cyc.name}; members "
          "share one total")
    cpu, stacks = run_stack_profiled(src, "even_odd", cycles_per_tick=3)
    an = analyze_stacks(stacks)
    for name in ("even", "odd"):
        print(f"  stacks: {name} inclusive {an.inclusive_percent(name):5.1f}% "
              "(exact, no collapsing)")
    print()


def busy_python():
    """A small real-Python workload for the SIGPROF sampler."""

    def parse(blob):
        return [int(tok) for tok in blob.split()]

    def score(numbers):
        total = 0
        for n in numbers:
            total += (n * n) % 97
        return total

    def pipeline():
        blob = " ".join(str(i % 1000) for i in range(5000))
        deadline = time.process_time() + 0.15
        acc = 0
        while time.process_time() < deadline:
            acc += score(parse(blob))
        return acc

    return pipeline


def main():
    compare_on_skew()
    compare_on_recursion()

    print("--- real Python code under the SIGPROF stack sampler ---")
    pipeline = busy_python()
    with PyStackSampler(interval=0.002, mode="signal") as sampler:
        pipeline()
    print(format_call_tree(sampler.profile, min_percent=3.0))
    print(format_hot_paths(sampler.profile, top=3))
    write_folded(sampler.profile, "python.folded")
    print("samples written to python.folded "
          "(feed to any flame-graph tool)")


if __name__ == "__main__":
    main()
