"""Quickstart: profile a Python function and read both listings.

Run:  python examples/quickstart.py

This is the 30-second tour: wrap any code in ``Profiler``, feed the
gathered data to ``analyze``, print the flat profile (where is self
time spent?) and the call graph profile (who is responsible for it?).
"""

from repro import analyze, format_flat_profile, format_graph_profile
from repro.pyprof import Profiler


def smooth(values):
    """A cheap helper: 3-point moving average."""
    out = []
    for i in range(len(values)):
        lo = max(i - 1, 0)
        hi = min(i + 2, len(values))
        out.append(sum(values[lo:hi]) / (hi - lo))
    return out


def detect_peaks(values):
    """Another helper: local maxima."""
    return [
        i
        for i in range(1, len(values) - 1)
        if values[i - 1] < values[i] > values[i + 1]
    ]


def analyze_signal(n=4000):
    """The 'application': generate, smooth (twice), and scan a signal."""
    signal = [((i * 7919) % 101) - 50 for i in range(n)]
    once = smooth(signal)
    twice = smooth(once)
    return len(detect_peaks(twice))


def main():
    with Profiler() as p:  # exact timing; try mode="signal" for sampling
        peaks = analyze_signal()
    print(f"found {peaks} peaks\n")

    profile = analyze(p.profile_data(), p.symbol_table())

    # §5.1 — the flat profile: routines by their own execution time.
    print(format_flat_profile(profile, show_never_called=False))

    # §5.2 — the call graph profile: each routine with parents above,
    # children below, and descendants' time charged to it.
    print(format_graph_profile(profile, min_percent=1.0))

    # Programmatic access: the entry for analyze_signal inherits nearly
    # all program time from its helpers.
    entry = profile.entry("analyze_signal")
    print(
        f"analyze_signal: {entry.percent:.1f}% of total time, "
        f"{entry.self_seconds:.4f}s self + {entry.child_seconds:.4f}s inherited, "
        f"called {entry.ncalls} time(s)"
    )


if __name__ == "__main__":
    main()
