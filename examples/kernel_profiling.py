"""Live kernel profiling with kgmon — the retrospective's second act.

Run:  python examples/kernel_profiling.py

The simulated time-sharing kernel keeps running while we:

1. let it warm up with profiling OFF (no overhead for users);
2. turn profiling ON for a window of interest, extract, reset;
3. analyze the window and hit the problem the retrospective describes:
   the networking stack's layers are fused into one big cycle by two
   rarely-traversed arcs (loopback delivery and TCP ACKs), so no layer
   can be timed separately;
4. remove exactly those arcs (the ``-k`` option) and watch per-layer
   attribution come back, at the cost of a quantified, tiny loss of
   call information.
"""

from repro.core import AnalysisOptions, analyze
from repro.core.arcremoval import information_lost
from repro.kernel import CYCLE_CLOSING_ARCS, Kgmon, KernelSession
from repro.report import format_graph_profile


def main():
    session = KernelSession(iterations=600)
    kgmon = Kgmon(session)

    # 1. Warm-up: the kernel serves "users"; the profiler is off.
    kgmon.off()
    for _ in range(3):
        session.run_slice(4000)
    print(f"warm-up done: {kgmon.status().kernel_cycles} kernel cycles, "
          f"{kgmon.status().ticks} ticks gathered (profiling was off)\n")

    # 2. Profile a window of steady-state activity.
    kgmon.reset()
    kgmon.on()
    while session.run_slice(4000):
        if kgmon.status().ticks > 1500:
            break
    kgmon.off()
    window = kgmon.extract("steady-state window")
    symbols = session.symbol_table()
    print(f"window extracted: {window.total_ticks} ticks, "
          f"{window.total_calls} calls "
          f"(kernel {'halted' if session.halted else 'still running'})\n")

    # 3. Naive analysis: the whole network stack is one cycle.
    fused = analyze(window, symbols)
    cycle = fused.numbered.cycles[0]
    print(f"PROBLEM — one cycle fuses {len(cycle.members)} routines: "
          f"{', '.join(cycle.members)}")
    closing = [
        (a, b, fused.graph.arc(a, b).count) for a, b in CYCLE_CLOSING_ARCS
    ]
    pipeline = fused.graph.arc("ip_output", "if_output").count
    for a, b, count in closing:
        print(f"  closing arc {a} -> {b}: only {count} traversals "
              f"(the pipeline itself carries {pipeline})")
    print()

    # 4. Remove the closing arcs and re-analyze.
    unfused = analyze(
        window, symbols, AnalysisOptions(deleted_arcs=CYCLE_CLOSING_ARCS)
    )
    assert unfused.numbered.cycles == []
    lost = information_lost(unfused.removed_arcs, window.total_calls)
    print(f"FIX — removed {len(unfused.removed_arcs)} arcs; "
          f"information lost: {100 * lost:.2f}% of call traversals\n")
    print("network stack, now separable (graph profile excerpt):")
    stack = {"netisr", "ip_input", "tcp_input", "tcp_output",
             "ip_output", "if_output", "sock_send", "sys_send"}
    print(format_graph_profile(unfused, only=stack))


if __name__ == "__main__":
    main()
