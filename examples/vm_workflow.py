"""The full gprof workflow on a VM executable, file formats included.

Run:  python examples/vm_workflow.py

This example replays the original tool chain end to end, in a temp
directory:

1. "compile" a program twice — with and without the profiling option —
   and measure the overhead (§7's five-to-thirty-percent claim);
2. run the profiled binary several times, each run writing a
   ``gmon.out``-style file as it exits (§3);
3. sum the runs (the short-running-routine accumulation feature);
4. analyze: summed data + executable image (symbols, static arcs);
5. print the listings, write a DOT rendering of the graph.
"""

import tempfile
from pathlib import Path

from repro.core import AnalysisOptions, analyze, merge_profiles
from repro.gmon import read_gmon, write_gmon
from repro.machine import (
    CPU,
    Monitor,
    MonitorConfig,
    assemble,
    static_call_graph,
)
from repro.machine.programs import codegen
from repro.report import format_flat_profile, format_graph_profile
from repro.report.dot import to_dot


def main():
    workdir = Path(tempfile.mkdtemp(prefix="repro-vm-"))
    source = codegen(statements=25)

    # 1. Build both ways and compare cost.
    plain_exe = assemble(source, name="codegen", profile=False)
    prof_exe = assemble(source, name="codegen", profile=True)
    prof_exe.save(workdir / "codegen.vmexe")

    plain_cpu = CPU(plain_exe)
    plain_cpu.run()

    # 2. Three profiled runs, one gmon file each.
    gmon_paths = []
    profiled_cycles = 0
    for run in range(3):
        monitor = Monitor(
            MonitorConfig(prof_exe.low_pc, prof_exe.high_pc, cycles_per_tick=100)
        )
        cpu = CPU(prof_exe, monitor)
        cpu.run()
        profiled_cycles = cpu.cycles
        path = workdir / f"gmon.{run}.out"
        write_gmon(monitor.mcleanup(comment=f"run {run}"), path)
        gmon_paths.append(path)

    overhead = (profiled_cycles - plain_cpu.cycles) / plain_cpu.cycles
    print(f"unprofiled: {plain_cpu.cycles} cycles; "
          f"profiled: {profiled_cycles} cycles; "
          f"overhead {100 * overhead:.1f}% "
          f"(the paper reports 5-30%)\n")

    # 3. Sum the runs.
    summed = merge_profiles([read_gmon(p) for p in gmon_paths])
    write_gmon(summed, workdir / "gmon.sum")
    print(f"summed {summed.runs} runs: {summed.total_ticks} ticks, "
          f"{summed.total_calls} calls\n")

    # 4. Analyze with static augmentation.
    profile = analyze(
        summed,
        prof_exe.symbol_table(),
        AnalysisOptions(static_arcs=sorted(static_call_graph(prof_exe))),
    )

    # 5. Present.
    print(format_flat_profile(profile))
    print(format_graph_profile(profile, min_percent=2.0))
    dot_path = workdir / "codegen.dot"
    dot_path.write_text(to_dot(profile))
    print(f"artifacts in {workdir} (try: dot -Tpng {dot_path})")


if __name__ == "__main__":
    main()
