"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SymbolError(ReproError):
    """A symbol table is malformed or a lookup cannot be satisfied."""


class HistogramError(ReproError):
    """A PC-sample histogram is malformed or incompatible."""


class GmonFormatError(ReproError):
    """A profile data file is corrupt or has an unsupported version."""


class CallGraphError(ReproError):
    """A call graph operation received inconsistent input."""


class PropagationError(ReproError):
    """Time propagation encountered an impossible state (e.g. an
    unnumbered node or a cycle that survived collapsing)."""


class AssemblerError(ReproError):
    """The VM assembler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MachineError(ReproError):
    """The VM interpreter faulted (bad opcode, stack underflow, ...)."""


class LangError(ReproError):
    """The Rel compiler rejected a source program."""

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class MergeError(ReproError):
    """Two profile data sets cannot be summed (incompatible layouts).

    Structured: when the failure concerns a specific input file the
    ``path`` attribute names it, and ``expected``/``actual`` carry the
    two histogram layouts (as :class:`repro.fleet.headers.HeaderKey`
    or plain tuples) so fleet-scale drivers can report *which* of a
    thousand inputs broke the merge without string-parsing.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        expected: object = None,
        actual: object = None,
    ):
        self.path = path
        self.expected = expected
        self.actual = actual
        if path is not None:
            message = f"{path}: {message}"
        super().__init__(message)


class ProfilerError(ReproError):
    """The Python-level profiler was used incorrectly (e.g. nested
    activation or extraction before any data was gathered)."""


class KernelError(ReproError):
    """The simulated kernel or its kgmon control interface failed."""


class KernelBackendError(ReproError):
    """A bulk-kernel backend (repro.core.kernels) was misselected or
    fed inconsistent shapes (mismatched bucket counts, unknown backend
    name, numpy requested where unavailable)."""
