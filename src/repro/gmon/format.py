"""Binary profile data files, in the spirit of BSD's ``gmon.out``.

§3.2: "When the profiled program terminates, the arc table and the
histogram of program counter samples are written to a file.  The arc
table is condensed to consist of the source and destination addresses of
the arc and the count of the number of times the arc was traversed...
The recorded histogram consists of counters... The ranges themselves are
summarized as a lower and upper bound and a step size."

Layout (all integers little-endian, unsigned):

======================  =======  =========================================
field                   size     meaning
======================  =======  =========================================
magic                   6        ``b"gmon\\x01\\x00"`` (name + version 1)
header_len              2        bytes of comment that follow
comment                 var      UTF-8 provenance string
runs                    4        number of executions summed into the file
low_pc                  8        histogram lower bound (inclusive)
high_pc                 8        histogram upper bound (exclusive)
num_buckets             4        histogram size
profrate                4        clock ticks per second
bucket counts           4 each   one per bucket
num_arcs                4        arc record count
arc records             20 each  from_pc (8), self_pc (8), count (4)
======================  =======  =========================================

Like the original, the file holds raw addresses only — symbol names come
from the executable image at analysis time, which is what lets several
runs (and even kernel snapshots) share one format.

Robustness (the :mod:`repro.resilience` integration):

* **Writes are atomic by default** — the bytes go to a temp file that is
  renamed over the destination, so a crash mid-write leaves the previous
  version intact instead of a torn file.
* **Strict reads fail fast and fail typed** — every malformed input
  raises :class:`GmonFormatError` (never ``UnicodeDecodeError`` or a
  giant allocation): declared ``num_buckets``/``num_arcs`` are validated
  against the actual remaining file size *before* anything is decoded.
* **Salvage reads never fail** — ``read_gmon(path, mode="salvage")``
  recovers the maximal structurally-valid prefix of a truncated or
  corrupted file and returns the recovered :class:`ProfileData` together
  with a :class:`~repro.resilience.SalvageReport` saying exactly what
  was dropped.
"""

from __future__ import annotations

import io
import math
import struct
from array import array
from typing import BinaryIO, NamedTuple

from repro.core.arcs import RawArc
from repro.core.histogram import DEFAULT_PROFRATE, Histogram
from repro.core.profiledata import ProfileData
from repro.errors import GmonFormatError, HistogramError
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.faults import FaultInjector
from repro.resilience.salvage import SalvageReport

MAGIC = b"gmon\x01\x00"
_COMMENT_LEN = struct.Struct("<H")
_HEADER = struct.Struct("<I QQ I I")  # runs, low, high, nbuckets, profrate
_BUCKET = struct.Struct("<I")
_NARCS = struct.Struct("<I")
_ARC = struct.Struct("<QQI")

#: Bucket counters are 32-bit on disk, matching the retrospective's
#: "full 32-bit count for each possible program counter value".
MAX_COUNT = 0xFFFFFFFF

#: Warning attached when a file declares ``runs == 0`` (see
#: :func:`read_gmon`): the value is clamped to 1, but never silently.
RUNS_ZERO_WARNING = "file declares runs == 0; treating it as a single run"


# -- writing --------------------------------------------------------------------


def write_gmon(
    data: ProfileData,
    path,
    atomic: bool = True,
    injector: FaultInjector | None = None,
) -> None:
    """Condense ``data`` to a binary file at ``path``.

    Arc records are merged per (from_pc, self_pc) pair and sorted, so the
    output is deterministic for identical data.  Counts larger than the
    32-bit on-disk field raise :class:`GmonFormatError` rather than wrap.

    Arguments:
        atomic: write to a temp file and rename (the default) so a crash
            never leaves a torn file at ``path``; pass False to write in
            place (what the pre-resilience implementation did — kept for
            the fault-injection tests that *want* torn files).
        injector: optional fault-injection harness wrapped around the
            byte-level write (see :mod:`repro.resilience.faults`).
    """
    payload = dumps_gmon(data)
    if atomic:
        atomic_write_bytes(path, payload, injector)
        return
    with open(path, "wb") as f:
        if injector is not None:
            injector.write(f, payload)
        else:
            f.write(payload)


def dumps_gmon(data: ProfileData) -> bytes:
    """Serialize ``data`` to the on-disk byte layout."""
    buf = io.BytesIO()
    _write_stream(data, buf)
    return buf.getvalue()


def _write_stream(data: ProfileData, f: BinaryIO) -> None:
    hist = data.histogram
    comment = data.comment.encode("utf-8")
    if len(comment) > 0xFFFF:
        raise GmonFormatError("comment longer than 65535 bytes")
    f.write(MAGIC)
    f.write(_COMMENT_LEN.pack(len(comment)))
    f.write(comment)
    f.write(
        _HEADER.pack(
            data.runs, hist.low_pc, hist.high_pc, len(hist.counts), hist.profrate
        )
    )
    for count in hist.counts:
        if count > MAX_COUNT:
            raise GmonFormatError(f"histogram count {count} exceeds 32 bits")
        f.write(_BUCKET.pack(count))
    arcs = data.condensed_arcs()
    f.write(_NARCS.pack(len(arcs)))
    for arc in arcs:
        if arc.count > MAX_COUNT:
            raise GmonFormatError(f"arc count {arc.count} exceeds 32 bits")
        f.write(_ARC.pack(arc.from_pc, arc.self_pc, arc.count))


# -- strict reading -------------------------------------------------------------


class RawGmon:
    """A strictly-validated gmon file, still in wire representation.

    The cheap sibling of :class:`~repro.core.profiledata.ProfileData`:
    bucket counts stay packed bytes (``counts_blob``) and arc records
    stay packed bytes (``arc_blob``; decode with ``iter_arcs`` or
    ``arcs_as_arrays``), so fleet-scale consumers that only sum fields
    — :class:`repro.fleet.ProfileAccumulator` — never pay for
    per-record or per-bucket object construction.

    ``counts`` is **always a ``tuple[int, ...]``** — the settled wire
    type.  (Historically the strict reader returned a tuple while the
    salvage path built lists; every construction is normalized now,
    and ``test_gmon`` pins the type.)  When the instance was built
    from the wire, the tuple is decoded lazily on first access; the
    blob-only fast paths never touch it.
    """

    __slots__ = (
        "comment", "runs", "low_pc", "high_pc", "nbuckets", "profrate",
        "arc_blob", "narcs", "counts_blob", "_counts",
    )

    def __init__(
        self, comment: str, runs: int, low_pc: int, high_pc: int,
        nbuckets: int, profrate: int, counts=None, arc_blob: bytes = b"",
        narcs: int = 0, *, counts_blob: bytes | None = None,
    ):
        self.comment = comment
        self.runs = runs
        self.low_pc = low_pc
        self.high_pc = high_pc
        self.nbuckets = nbuckets
        self.profrate = profrate
        self.arc_blob = arc_blob
        self.narcs = narcs
        self.counts_blob = counts_blob
        if counts is not None:
            self._counts: tuple[int, ...] | None = tuple(counts)
        elif counts_blob is None:
            self._counts = ()
        else:
            self._counts = None  # decoded lazily from counts_blob

    @property
    def counts(self) -> tuple[int, ...]:
        """Bucket counters as a tuple (decoded from the blob on demand)."""
        if self._counts is None:
            self._counts = struct.unpack(
                f"<{self.nbuckets}I", self.counts_blob
            )
        return self._counts

    def iter_arcs(self):
        """Yield (from_pc, self_pc, count) triples from the packed blob."""
        return _ARC.iter_unpack(self.arc_blob)

    def arcs_as_arrays(self):
        """Decode the arc blob into three parallel column arrays.

        Returns ``(from_pcs, self_pcs, counts)`` as stdlib
        ``array('Q')/array('Q')/array('I')`` columns — one bulk
        ``struct.unpack`` for the whole blob, the batch-friendly shape
        the kernel backends (and any columnar consumer) want.
        """
        n = self.narcs
        if not n:
            return array("Q"), array("Q"), array("I")
        flat = struct.unpack("<" + "QQI" * n, self.arc_blob)
        return (
            array("Q", flat[0::3]), array("Q", flat[1::3]),
            array("I", flat[2::3]),
        )

    def _key(self):
        return (
            self.comment, self.runs, self.low_pc, self.high_pc,
            self.nbuckets, self.profrate, self.counts, self.arc_blob,
            self.narcs,
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, RawGmon):
            return self._key() == other._key()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RawGmon(comment={self.comment!r}, runs={self.runs}, "
            f"low_pc={self.low_pc:#x}, high_pc={self.high_pc:#x}, "
            f"nbuckets={self.nbuckets}, profrate={self.profrate}, "
            f"narcs={self.narcs})"
        )


class GmonHeader(NamedTuple):
    """Just the fixed-size prefix of a gmon file (no bucket/arc data).

    Cheap to obtain (:func:`peek_gmon_header` reads a few hundred
    bytes), which is what lets a merge driver reject an incompatible
    file among thousands before parsing any of them in full.
    """

    comment: str
    runs: int
    low_pc: int
    high_pc: int
    nbuckets: int
    profrate: int


#: Bytes of prefix needed before the comment length is known.
PEEK_PREFIX_LEN = len(MAGIC) + _COMMENT_LEN.size

#: Upper bound on the prefix any header peek can need (worst-case
#: comment).  A consumer holding this many bytes — or the whole file,
#: whichever is shorter — can always run :func:`peek_gmon_header_bytes`.
PEEK_MAX_LEN = PEEK_PREFIX_LEN + 0xFFFF + _HEADER.size


def peek_needed_len(prefix: bytes) -> int:
    """Total prefix bytes a header peek needs, given the first 8 bytes.

    Raises :class:`GmonFormatError` on bad magic or a prefix too short
    to hold the comment length field — the same failures
    :func:`peek_gmon_header_bytes` would report.
    """
    if prefix[: len(MAGIC)] != MAGIC:
        if len(prefix) < len(MAGIC):
            raise GmonFormatError(
                f"truncated file: wanted {len(MAGIC)} bytes of magic, "
                f"got {len(prefix)}"
            )
        raise GmonFormatError(
            f"bad magic {prefix[:len(MAGIC)]!r}: not a profile data file "
            "or wrong version"
        )
    if len(prefix) < PEEK_PREFIX_LEN:
        raise GmonFormatError(
            "truncated file: wanted 2 bytes of comment length, "
            f"got {len(prefix) - len(MAGIC)}"
        )
    comment_len = _COMMENT_LEN.unpack_from(prefix, len(MAGIC))[0]
    return PEEK_PREFIX_LEN + comment_len + _HEADER.size


def peek_gmon_header_bytes(prefix: bytes) -> GmonHeader:
    """Parse a gmon header from an in-memory file prefix.

    ``prefix`` must hold at least :func:`peek_needed_len` bytes of the
    file (extra bytes beyond the header are ignored).  This is the
    front-door validation primitive for consumers that receive files as
    byte streams — the ingest service peeks an upload's first bytes
    before buffering the body.  Raises :class:`GmonFormatError` exactly
    as the path-based :func:`peek_gmon_header` would.
    """
    needed = peek_needed_len(prefix)
    comment_len = needed - PEEK_PREFIX_LEN - _HEADER.size
    body = prefix[PEEK_PREFIX_LEN:]
    if len(body) < comment_len:
        raise GmonFormatError(
            f"truncated file: wanted {comment_len} bytes of comment, "
            f"got {len(body)}"
        )
    comment = _decode_comment(body[:comment_len])
    if len(body) < comment_len + _HEADER.size:
        raise GmonFormatError(
            f"truncated file: wanted {_HEADER.size} bytes of header, "
            f"got {len(body) - comment_len}"
        )
    runs, low_pc, high_pc, nbuckets, profrate = _HEADER.unpack_from(
        body, comment_len
    )
    _validate_header(low_pc, high_pc, nbuckets, profrate)
    return GmonHeader(comment, runs, low_pc, high_pc, nbuckets, profrate)


def peek_gmon_header(path) -> GmonHeader:
    """Read only the magic/comment/header prefix of a gmon file.

    Raises :class:`GmonFormatError` on bad magic, truncation inside the
    prefix, or an impossible header — the same failures a full strict
    parse would report for those bytes — without touching the bucket
    counters or arc records at all.
    """
    with open(path, "rb") as f:
        head = f.read(PEEK_PREFIX_LEN)
        needed = peek_needed_len(head)
        head += f.read(needed - len(head))
    return peek_gmon_header_bytes(head)


def _validate_header(
    low_pc: int, high_pc: int, nbuckets: int, profrate: int
) -> None:
    """Reject structurally impossible header values, strictly.

    Mirrors what :class:`~repro.core.histogram.Histogram` construction
    would reject, but at the wire layer so raw consumers get the same
    guarantees without building the object.
    """
    if high_pc < low_pc:
        raise GmonFormatError(f"high_pc {high_pc:#x} below low_pc {low_pc:#x}")
    if profrate <= 0:
        raise GmonFormatError(
            f"impossible histogram header: profrate must be positive, "
            f"got {profrate}"
        )
    if high_pc > low_pc and nbuckets == 0:
        raise GmonFormatError(
            "impossible histogram header: non-empty address range but "
            "zero buckets"
        )


def read_gmon(path, mode: str = "strict"):
    """Read a profile data file written by :func:`write_gmon`.

    In ``strict`` mode (the default) returns the :class:`ProfileData`
    and raises :class:`GmonFormatError` on bad magic, truncation, or any
    structurally impossible content — and *only* that error type, with
    declared sizes validated against the file size before any
    allocation.

    In ``salvage`` mode never raises on malformed content: returns a
    ``(ProfileData, SalvageReport)`` tuple holding the maximal
    structurally-valid prefix and the account of everything dropped
    (see :mod:`repro.resilience.salvage`).
    """
    if mode not in ("strict", "salvage"):
        raise ValueError(f"unknown read_gmon mode {mode!r}")
    with open(path, "rb") as f:
        blob = f.read()
    if mode == "salvage":
        return salvage_gmon_bytes(blob, source=str(path))
    return parse_gmon(blob)


def salvage_gmon(path) -> tuple[ProfileData, SalvageReport]:
    """Salvage-read ``path``: :func:`read_gmon` with ``mode="salvage"``."""
    return read_gmon(path, mode="salvage")


def parse_gmon_raw(blob: bytes) -> RawGmon:
    """Strictly parse an in-memory profile data file — wire form only.

    Performs every structural validation :func:`parse_gmon` performs
    (magic, truncation, declared-size-vs-file-size, impossible header,
    trailing bytes) but returns the :class:`RawGmon` wire view instead
    of building :class:`Histogram`/:class:`RawArc` objects.  This is
    the single source of truth for strict validation; both the object
    reader and the fleet accumulator sit on top of it.
    """
    cursor = _Cursor(blob)
    magic = cursor.take(len(MAGIC), "magic")
    if magic != MAGIC:
        raise GmonFormatError(
            f"bad magic {magic!r}: not a profile data file or wrong version"
        )
    comment_len = _COMMENT_LEN.unpack(cursor.take(2, "comment length"))[0]
    comment = _decode_comment(cursor.take(comment_len, "comment"))
    runs, low_pc, high_pc, nbuckets, profrate = _HEADER.unpack(
        cursor.take(_HEADER.size, "header")
    )
    if high_pc < low_pc:
        raise GmonFormatError(f"high_pc {high_pc:#x} below low_pc {low_pc:#x}")
    # Validate the declared sizes against the actual remaining bytes
    # *before* decoding anything: a corrupt header must fail fast with a
    # clear message, not allocate gigabytes and then hit a truncation.
    need = nbuckets * _BUCKET.size + _NARCS.size
    if cursor.remaining < need:
        raise GmonFormatError(
            f"header claims {nbuckets} histogram buckets ({need} bytes "
            f"incl. arc count) but only {cursor.remaining} bytes remain"
        )
    counts_blob = cursor.take(nbuckets * _BUCKET.size, "histogram buckets")
    narcs = _NARCS.unpack(cursor.take(_NARCS.size, "arc count"))[0]
    if cursor.remaining < narcs * _ARC.size:
        raise GmonFormatError(
            f"header claims {narcs} arcs ({narcs * _ARC.size} bytes) but "
            f"only {cursor.remaining} bytes remain"
        )
    arc_blob = cursor.take(narcs * _ARC.size, "arc records")
    if cursor.remaining:
        raise GmonFormatError("trailing bytes after arc records")
    _validate_header(low_pc, high_pc, nbuckets, profrate)
    return RawGmon(
        comment, runs, low_pc, high_pc, nbuckets, profrate,
        None, arc_blob, narcs, counts_blob=counts_blob,
    )


def parse_gmon(blob: bytes) -> ProfileData:
    """Strictly parse an in-memory profile data file."""
    raw = parse_gmon_raw(blob)
    arcs = [
        RawArc(from_pc, self_pc, count)
        for from_pc, self_pc, count in raw.iter_arcs()
    ]
    try:
        histogram = Histogram(
            raw.low_pc, raw.high_pc, list(raw.counts), raw.profrate
        )
    except HistogramError as exc:
        raise GmonFormatError(f"impossible histogram header: {exc}") from exc
    warnings = [RUNS_ZERO_WARNING] if raw.runs == 0 else []
    return ProfileData(
        histogram, arcs, runs=max(raw.runs, 1), comment=raw.comment,
        warnings=warnings,
    )


class _Cursor:
    """Bounds-checked sequential reader over an in-memory file."""

    def __init__(self, blob: bytes):
        self.blob = blob
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.blob) - self.pos

    def take(self, n: int, what: str) -> bytes:
        """Consume exactly ``n`` bytes or raise on truncation."""
        if self.remaining < n:
            raise GmonFormatError(
                f"truncated file: wanted {n} bytes of {what}, "
                f"got {self.remaining}"
            )
        data = self.blob[self.pos : self.pos + n]
        self.pos += n
        return data


def _decode_comment(raw: bytes) -> str:
    """Decode the comment field, mapping bad bytes to GmonFormatError."""
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise GmonFormatError(f"comment is not valid UTF-8: {exc}") from exc


# -- salvage reading ------------------------------------------------------------


def salvage_gmon_bytes(
    blob: bytes, source: str = ""
) -> tuple[ProfileData, SalvageReport]:
    """Recover the maximal structurally-valid prefix of ``blob``.

    Never raises on malformed content.  Per-section recovery: an intact
    magic/comment/header yields whatever complete bucket counters and
    arc records follow; everything dropped or repaired is recorded in
    the returned :class:`SalvageReport`, and the same facts are attached
    to ``ProfileData.warnings`` so downstream analysis stays honest.

    The recovered data of a byte-perfect file is identical to a strict
    parse and its report is ``clean`` — the fuzz suite's "no silent
    lie" invariant.
    """
    report = SalvageReport(source=source, total_bytes=len(blob))
    pos = 0

    def finish(
        histogram: Histogram | None = None,
        arcs: list[RawArc] | None = None,
        runs: int = 1,
        comment: str = "",
    ) -> tuple[ProfileData, SalvageReport]:
        report.consumed_bytes = pos
        data = ProfileData(
            histogram if histogram is not None else Histogram(0, 0, []),
            arcs or [],
            runs=max(runs, 1),
            comment=comment,
            warnings=report.warnings(),
        )
        return data, report

    # magic: without it there is no valid prefix at all.
    if blob[: len(MAGIC)] != MAGIC:
        report.add_drop(
            "bad magic: not a profile data file (or wrong version); "
            "nothing recovered"
        )
        return finish()
    pos = len(MAGIC)
    report.add_section("magic")

    # comment
    if len(blob) - pos < _COMMENT_LEN.size:
        report.add_drop("file ends inside the comment length field")
        return finish()
    comment_len = _COMMENT_LEN.unpack_from(blob, pos)[0]
    pos += _COMMENT_LEN.size
    raw_comment = blob[pos : pos + comment_len]
    comment = raw_comment.decode("utf-8", errors="replace")
    if len(raw_comment) < comment_len:
        pos += len(raw_comment)
        report.add_drop(
            f"comment truncated ({len(raw_comment)}/{comment_len} bytes); "
            "header, histogram and arcs lost"
        )
        return finish(comment=comment)
    pos += comment_len
    try:
        raw_comment.decode("utf-8")
    except UnicodeDecodeError:
        report.add_note(
            "comment is not valid UTF-8; bad bytes replaced with U+FFFD"
        )
    report.add_section("comment")

    # header
    if len(blob) - pos < _HEADER.size:
        report.add_drop(
            f"header truncated ({len(blob) - pos}/{_HEADER.size} bytes); "
            "histogram and arcs lost"
        )
        return finish(comment=comment)
    runs, low_pc, high_pc, nbuckets, profrate = _HEADER.unpack_from(blob, pos)
    pos += _HEADER.size
    report.add_section("header")
    report.buckets_expected = nbuckets
    if runs == 0:
        report.add_note(RUNS_ZERO_WARNING)
    if profrate <= 0:
        report.add_note(
            f"impossible profrate {profrate}; "
            f"substituting the default {DEFAULT_PROFRATE} Hz"
        )
        profrate = DEFAULT_PROFRATE
    bounds_ok = high_pc >= low_pc
    if not bounds_ok:
        report.add_drop(
            f"impossible histogram bounds (high_pc {high_pc:#x} below "
            f"low_pc {low_pc:#x}); bucket counts dropped"
        )
    elif nbuckets == 0 and high_pc > low_pc:
        report.add_drop(
            "non-empty address range declared with zero buckets; "
            "histogram range collapsed"
        )
        high_pc = low_pc

    # bucket counters: keep every complete one that is actually present.
    avail_buckets = (len(blob) - pos) // _BUCKET.size
    nread = min(nbuckets, avail_buckets)
    counts = list(struct.unpack_from(f"<{nread}I", blob, pos))
    report.buckets_read = nread if bounds_ok else 0
    if nread < nbuckets:
        pos += nread * _BUCKET.size
        report.add_drop(
            f"histogram truncated: {nread}/{nbuckets} buckets recovered"
        )
        report.add_drop("arc table lost (file ends inside the histogram)")
        histogram = _partial_histogram(
            low_pc, high_pc, nbuckets, counts, profrate, bounds_ok
        )
        return finish(histogram, runs=runs, comment=comment)
    pos += nbuckets * _BUCKET.size
    report.add_section("buckets")
    histogram = _partial_histogram(
        low_pc, high_pc, nbuckets, counts, profrate, bounds_ok
    )

    # arc table
    if len(blob) - pos < _NARCS.size:
        report.add_drop("arc table lost (no arc count field)")
        return finish(histogram, runs=runs, comment=comment)
    narcs = _NARCS.unpack_from(blob, pos)[0]
    pos += _NARCS.size
    report.arcs_expected = narcs
    avail_arcs = (len(blob) - pos) // _ARC.size
    arcs_read = min(narcs, avail_arcs)
    arcs = [
        RawArc(from_pc, self_pc, count)
        for from_pc, self_pc, count in _ARC.iter_unpack(
            blob[pos : pos + arcs_read * _ARC.size]
        )
    ]
    pos += arcs_read * _ARC.size
    report.arcs_read = arcs_read
    if arcs_read < narcs:
        report.add_drop(
            f"arc table truncated: {arcs_read}/{narcs} arcs recovered"
        )
        return finish(histogram, arcs, runs=runs, comment=comment)
    report.add_section("arcs")
    trailing = len(blob) - pos
    if trailing:
        report.add_note(f"{trailing} trailing byte(s) after the arc records ignored")
    return finish(histogram, arcs, runs=runs, comment=comment)


def _partial_histogram(
    low_pc: int,
    high_pc: int,
    nbuckets: int,
    counts: list[int],
    profrate: int,
    bounds_ok: bool,
) -> Histogram:
    """A consistent histogram over however many buckets survived.

    When only a prefix of the declared buckets was recovered, the upper
    bound shrinks proportionally so each surviving counter keeps the
    address range it had in the complete file.
    """
    if not bounds_ok or not counts:
        return Histogram(low_pc, low_pc, [], profrate) if bounds_ok else Histogram(0, 0, [], profrate)
    if len(counts) == nbuckets:
        return Histogram(low_pc, high_pc, counts, profrate)
    width = (high_pc - low_pc) / nbuckets
    shrunk_high = low_pc + max(math.ceil(width * len(counts)), 1)
    return Histogram(low_pc, min(shrunk_high, high_pc), counts, profrate)
