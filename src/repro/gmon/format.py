"""Binary profile data files, in the spirit of BSD's ``gmon.out``.

§3.2: "When the profiled program terminates, the arc table and the
histogram of program counter samples are written to a file.  The arc
table is condensed to consist of the source and destination addresses of
the arc and the count of the number of times the arc was traversed...
The recorded histogram consists of counters... The ranges themselves are
summarized as a lower and upper bound and a step size."

Layout (all integers little-endian, unsigned):

======================  =======  =========================================
field                   size     meaning
======================  =======  =========================================
magic                   6        ``b"gmon\\x01\\x00"`` (name + version 1)
header_len              2        bytes of comment that follow
comment                 var      UTF-8 provenance string
runs                    4        number of executions summed into the file
low_pc                  8        histogram lower bound (inclusive)
high_pc                 8        histogram upper bound (exclusive)
num_buckets             4        histogram size
profrate                4        clock ticks per second
bucket counts           4 each   one per bucket
num_arcs                4        arc record count
arc records             20 each  from_pc (8), self_pc (8), count (4)
======================  =======  =========================================

Like the original, the file holds raw addresses only — symbol names come
from the executable image at analysis time, which is what lets several
runs (and even kernel snapshots) share one format.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.errors import GmonFormatError

MAGIC = b"gmon\x01\x00"
_HEADER = struct.Struct("<I QQ I I")  # runs, low, high, nbuckets, profrate
_BUCKET = struct.Struct("<I")
_NARCS = struct.Struct("<I")
_ARC = struct.Struct("<QQI")

#: Bucket counters are 32-bit on disk, matching the retrospective's
#: "full 32-bit count for each possible program counter value".
MAX_COUNT = 0xFFFFFFFF


def write_gmon(data: ProfileData, path) -> None:
    """Condense ``data`` to a binary file at ``path``.

    Arc records are merged per (from_pc, self_pc) pair and sorted, so the
    output is deterministic for identical data.  Counts larger than the
    32-bit on-disk field raise :class:`GmonFormatError` rather than wrap.
    """
    with open(path, "wb") as f:
        _write_stream(data, f)


def _write_stream(data: ProfileData, f: BinaryIO) -> None:
    hist = data.histogram
    comment = data.comment.encode("utf-8")
    if len(comment) > 0xFFFF:
        raise GmonFormatError("comment longer than 65535 bytes")
    f.write(MAGIC)
    f.write(struct.pack("<H", len(comment)))
    f.write(comment)
    f.write(
        _HEADER.pack(
            data.runs, hist.low_pc, hist.high_pc, len(hist.counts), hist.profrate
        )
    )
    for count in hist.counts:
        if count > MAX_COUNT:
            raise GmonFormatError(f"histogram count {count} exceeds 32 bits")
        f.write(_BUCKET.pack(count))
    arcs = data.condensed_arcs()
    f.write(_NARCS.pack(len(arcs)))
    for arc in arcs:
        if arc.count > MAX_COUNT:
            raise GmonFormatError(f"arc count {arc.count} exceeds 32 bits")
        f.write(_ARC.pack(arc.from_pc, arc.self_pc, arc.count))


def read_gmon(path) -> ProfileData:
    """Read a profile data file written by :func:`write_gmon`.

    Raises :class:`GmonFormatError` on bad magic, truncation, or any
    structurally impossible content.
    """
    with open(path, "rb") as f:
        return _read_stream(f)


def _read_stream(f: BinaryIO) -> ProfileData:
    magic = f.read(len(MAGIC))
    if magic != MAGIC:
        raise GmonFormatError(
            f"bad magic {magic!r}: not a profile data file or wrong version"
        )
    comment_len = struct.unpack("<H", _exactly(f, 2))[0]
    comment = _exactly(f, comment_len).decode("utf-8")
    runs, low_pc, high_pc, nbuckets, profrate = _HEADER.unpack(
        _exactly(f, _HEADER.size)
    )
    if high_pc < low_pc:
        raise GmonFormatError(f"high_pc {high_pc:#x} below low_pc {low_pc:#x}")
    counts = [
        _BUCKET.unpack(_exactly(f, _BUCKET.size))[0] for _ in range(nbuckets)
    ]
    narcs = _NARCS.unpack(_exactly(f, _NARCS.size))[0]
    arcs = []
    for _ in range(narcs):
        from_pc, self_pc, count = _ARC.unpack(_exactly(f, _ARC.size))
        arcs.append(RawArc(from_pc, self_pc, count))
    trailing = f.read(1)
    if trailing:
        raise GmonFormatError("trailing bytes after arc records")
    histogram = Histogram(low_pc, high_pc, counts, profrate)
    return ProfileData(histogram, arcs, runs=max(runs, 1), comment=comment)


def _exactly(f: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise on truncation."""
    data = f.read(n)
    if len(data) != n:
        raise GmonFormatError(
            f"truncated file: wanted {n} bytes, got {len(data)}"
        )
    return data
