"""On-disk profile data format (our ``gmon.out`` equivalent).

Reading comes in two modes: strict (:func:`read_gmon`, raising
:class:`~repro.errors.GmonFormatError` on any malformation) and
salvage (:func:`salvage_gmon`, recovering the maximal valid prefix of
a truncated/corrupted file together with a
:class:`~repro.resilience.SalvageReport`).  Writes are atomic by
default — a crash mid-write never leaves a torn file behind.
"""

from repro.gmon.format import (
    GmonHeader,
    RawGmon,
    dumps_gmon,
    parse_gmon,
    parse_gmon_raw,
    peek_gmon_header,
    peek_gmon_header_bytes,
    peek_needed_len,
    read_gmon,
    salvage_gmon,
    salvage_gmon_bytes,
    write_gmon,
)

__all__ = [
    "GmonHeader",
    "RawGmon",
    "dumps_gmon",
    "parse_gmon",
    "parse_gmon_raw",
    "peek_gmon_header",
    "peek_gmon_header_bytes",
    "peek_needed_len",
    "read_gmon",
    "salvage_gmon",
    "salvage_gmon_bytes",
    "write_gmon",
]
