"""On-disk profile data format (our ``gmon.out`` equivalent)."""

from repro.gmon.format import read_gmon, write_gmon

__all__ = ["read_gmon", "write_gmon"]
