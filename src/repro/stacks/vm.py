"""Call-stack sampling for VM programs.

At each profiling tick the monitor walks the interpreter's frame chain
— the return addresses "all the way up the stack, a convention imposed
in order to debug programs" — and records the complete routine chain.
Unlike ``mcount``, nothing is charged per *call*; the cost is per
*sample*, and "can be hidden by backing off the frequency" (the
``stride`` knob: capture a stack only every N-th histogram tick).

:class:`VMStackMonitor` extends the classic monitor, so one run can
gather classic gprof data *and* stacks — which is exactly what the
comparison benchmarks need.
"""

from __future__ import annotations

from repro.machine.monitor import Monitor, MonitorConfig
from repro.stacks.profile import StackProfile

#: Simulated cycles charged to the program per stack capture…
STACK_WALK_BASE_COST = 4
#: …plus per frame walked (reading a saved return address).
STACK_WALK_FRAME_COST = 1


class VMStackMonitor(Monitor):
    """A monitor that additionally samples complete call stacks.

    Arguments:
        config: the usual monitor configuration (histogram + clock).
        stride: capture a stack every ``stride``-th tick (1 = every
            tick).  Larger strides trade sample count for overhead —
            the retrospective's frequency back-off, made explicit.
    """

    def __init__(self, config: MonitorConfig, stride: int = 1):
        super().__init__(config)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        self.stride = stride
        self.stack_profile = StackProfile(profrate=max(config.profrate // stride, 1))
        self.stack_walk_cycles = 0
        self._cpu = None
        self._tick_no = 0

    def bind(self, cpu) -> None:
        """Attach the CPU whose frames will be walked (call before run)."""
        self._cpu = cpu

    def tick(self, pc: int) -> None:
        """Histogram tick plus (every ``stride``-th time) a stack walk.

        The walk's cost is charged to the running program's cycle clock
        — that is the "additional overhead" the stride amortizes.
        """
        super().tick(pc)
        if not self.enabled or self._cpu is None:
            return
        self._tick_no += 1
        if self._tick_no % self.stride:
            return
        stack = self._cpu.stack_functions()
        if stack:
            self.stack_profile.record(stack)
            cost = STACK_WALK_BASE_COST + STACK_WALK_FRAME_COST * len(stack)
            self._cpu.charge_overhead(cost)
            self.stack_walk_cycles += cost

    def reset(self) -> None:
        """Zero histogram, arcs, and stacks (kgmon-compatible)."""
        super().reset()
        self.stack_profile = StackProfile(self.stack_profile.profrate)


def run_stack_profiled(
    source: str,
    name: str = "a.out",
    cycles_per_tick: int = 100,
    stride: int = 1,
    profrate: int = 60,
):
    """Assemble, run, and stack-sample a program in one call.

    Returns ``(cpu, stack_profile)``.  The program is assembled
    *without* mcount prologues: stack sampling needs no compiler
    support at all, one of the modern design's advantages.
    """
    from repro.machine.assembler import assemble
    from repro.machine.fastcpu import FastCPU

    exe = assemble(source, name=name, profile=False)
    monitor = VMStackMonitor(
        MonitorConfig(
            exe.low_pc,
            exe.high_pc,
            cycles_per_tick=cycles_per_tick,
            profrate=profrate,
        ),
        stride=stride,
    )
    # Stack walks fire at tick boundaries, which the fast engine runs
    # through the reference step path — samples and charged walk costs
    # are identical to a reference-engine run.
    cpu = FastCPU(exe, monitor)
    monitor.bind(cpu)
    cpu.run()
    return cpu, monitor.stack_profile
