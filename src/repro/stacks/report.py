"""Presentation of stack-sample profiles.

Two renderings the 1982 output devices could not offer:

* a **top-down call tree** — the call graph unrolled into the actual
  contexts observed, with inclusive time and percentage per node (a
  textual flame graph);
* **hot paths** — the most frequently observed complete stacks.
"""

from __future__ import annotations

from repro.stacks.analysis import analyze_stacks
from repro.stacks.profile import StackProfile


class _TreeNode:
    """One context (a stack prefix) in the call tree."""

    __slots__ = ("name", "ticks", "leaf_ticks", "children")

    def __init__(self, name: str):
        self.name = name
        self.ticks = 0
        self.leaf_ticks = 0
        self.children: dict[str, "_TreeNode"] = {}


def _build_tree(profile: StackProfile) -> _TreeNode:
    root = _TreeNode("<root>")
    for stack, ticks in profile.samples.items():
        node = root
        node.ticks += ticks
        for name in stack:
            child = node.children.get(name)
            if child is None:
                child = _TreeNode(name)
                node.children[name] = child
            child.ticks += ticks
            node = child
        node.leaf_ticks += ticks
    return root


def format_call_tree(
    profile: StackProfile,
    min_percent: float = 1.0,
    max_depth: int = 25,
) -> str:
    """Render the sampled call tree, inclusive time per context.

    Arguments:
        profile: the stack samples.
        min_percent: prune contexts below this share of total time.
        max_depth: prune deeper contexts (recursion can be arbitrarily
            deep; the tail is rarely informative).
    """
    total = profile.total_ticks
    if not total:
        return "(no stack samples)\n"
    root = _build_tree(profile)
    lines = [f"call tree ({total} samples, {profile.total_seconds:.2f}s):"]

    def walk(node: _TreeNode, depth: int) -> None:
        for child in sorted(
            node.children.values(), key=lambda c: (-c.ticks, c.name)
        ):
            pct = 100.0 * child.ticks / total
            if pct < min_percent or depth > max_depth:
                continue
            self_note = (
                f"  (self {100.0 * child.leaf_ticks / total:.1f}%)"
                if child.leaf_ticks
                else ""
            )
            lines.append(
                f"{'  ' * depth}{pct:5.1f}% "
                f"{profile.seconds(child.ticks):8.2f}s  "
                f"{child.name}{self_note}"
            )
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines) + "\n"


def format_hot_paths(profile: StackProfile, top: int = 5) -> str:
    """The ``top`` most frequently sampled complete stacks."""
    total = profile.total_ticks
    if not total:
        return "(no stack samples)\n"
    lines = [f"hot paths (top {top} of {len(profile)} distinct stacks):"]
    ranked = sorted(profile.samples.items(), key=lambda kv: (-kv[1], kv[0]))
    for stack, ticks in ranked[:top]:
        lines.append(
            f"{100.0 * ticks / total:5.1f}%  {' -> '.join(stack)}"
        )
    return "\n".join(lines) + "\n"


def format_stack_flat(profile: StackProfile, min_percent: float = 0.0) -> str:
    """A flat listing with *exact* inclusive time next to self time.

    The column classic gprof could only estimate is measured here.
    """
    analysis = analyze_stacks(profile)
    lines = ["  self%   incl%     self      incl  name"]
    total = profile.total_ticks or 1
    for name, excl, incl in analysis.flat_rows():
        self_pct = 100.0 * analysis.exclusive.get(name, 0) / total
        incl_pct = analysis.inclusive_percent(name)
        if max(self_pct, incl_pct) < min_percent:
            continue
        lines.append(
            f"{self_pct:6.1f}  {incl_pct:6.1f}  {excl:7.2f}s {incl:7.2f}s  {name}"
        )
    return "\n".join(lines) + "\n"
