"""Analysis of complete-stack samples.

With whole stacks, the two weaknesses the retrospective concedes in
classic gprof disappear structurally:

* **Inclusive time is exact per sample.**  A routine's inclusive ticks
  are the samples in which it appears *at least once* — recursion and
  cycles need no collapsing, no average-time assumption, no sharing by
  call counts.
* **Caller attribution is observed, not inferred.**  The time a callee
  (and its subtree) costs each caller is read directly off the sampled
  stacks, so two callers with equal call counts but wildly different
  per-call costs are billed correctly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.stacks.profile import Stack, StackProfile


@dataclass
class StackAnalysis:
    """Aggregates derived from a :class:`StackProfile`.

    Attributes:
        profile: the analyzed samples.
        exclusive: ticks per routine while it was the executing leaf
            (the flat profile's "self time").
        inclusive: ticks per routine while it was anywhere on the stack
            (self + descendants, exact even under recursion).
        edge_inclusive: ticks per (caller, callee) pair while that edge
            was live on the stack (each distinct edge counted once per
            sample).
    """

    profile: StackProfile
    exclusive: Counter = field(default_factory=Counter)
    inclusive: Counter = field(default_factory=Counter)
    edge_inclusive: Counter = field(default_factory=Counter)

    # -- seconds/percent helpers ----------------------------------------------------

    def exclusive_seconds(self, name: str) -> float:
        """Self time of ``name`` in seconds."""
        return self.profile.seconds(self.exclusive.get(name, 0))

    def inclusive_seconds(self, name: str) -> float:
        """Self+descendants time of ``name`` in seconds (exact)."""
        return self.profile.seconds(self.inclusive.get(name, 0))

    def inclusive_percent(self, name: str) -> float:
        """Share of total time during which ``name`` was on the stack."""
        total = self.profile.total_ticks
        if not total:
            return 0.0
        return 100.0 * self.inclusive.get(name, 0) / total

    def caller_shares(self, name: str) -> dict[str, float]:
        """How ``name``'s inclusive time divides among its callers.

        Returns caller → fraction (summing to 1 over observed callers).
        This is the stack-based answer to the question gprof answers
        with the C^r_e/C_e approximation.
        """
        totals = {
            caller: ticks
            for (caller, callee), ticks in self.edge_inclusive.items()
            if callee == name
        }
        denom = sum(totals.values())
        if not denom:
            return {}
        return {caller: ticks / denom for caller, ticks in totals.items()}

    def flat_rows(self) -> list[tuple[str, float, float]]:
        """(name, exclusive s, inclusive s), sorted by exclusive time."""
        rows = [
            (
                name,
                self.exclusive_seconds(name),
                self.inclusive_seconds(name),
            )
            for name in self.profile.routines()
        ]
        rows.sort(key=lambda r: (-r[1], -r[2], r[0]))
        return rows


def analyze_stacks(profile: StackProfile) -> StackAnalysis:
    """Aggregate a stack profile into the exact attributions above."""
    analysis = StackAnalysis(profile)
    for stack, ticks in profile.samples.items():
        analysis.exclusive[stack[-1]] += ticks
        for name in set(stack):
            analysis.inclusive[name] += ticks
        for edge in _distinct_edges(stack):
            analysis.edge_inclusive[edge] += ticks
    return analysis


def _distinct_edges(stack: Stack) -> set[tuple[str, str]]:
    """Adjacent (caller, callee) pairs of a stack, deduplicated.

    Deduplication makes recursion safe: ``a;b;a;b`` contributes the
    edges (a,b) and (b,a) once each per sample, never double-charging a
    tick to the same edge.
    """
    return {(stack[i], stack[i + 1]) for i in range(len(stack) - 1)}
