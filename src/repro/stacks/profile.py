"""Stack sample storage and the folded on-disk format.

A stack sample is the full chain of routine names from the program's
root to the routine executing at the tick, e.g. ``("main", "calc2",
"format2", "write")``.  A :class:`StackProfile` is a multiset of such
chains plus the sampling rate — everything the stack-based analysis
needs.

The on-disk format is the de-facto standard *folded stacks* text:
one ``root;frame;...;leaf count`` line per distinct stack, which makes
the data directly consumable by flame-graph tooling.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.errors import ReproError

Stack = tuple[str, ...]


class StackProfile:
    """A multiset of complete call-stack samples.

    Attributes:
        samples: stack → number of ticks observed with that stack live.
        profrate: ticks per second (converts counts to seconds).
    """

    def __init__(self, profrate: int = 100):
        if profrate <= 0:
            raise ReproError(f"profrate must be positive, got {profrate}")
        self.samples: Counter[Stack] = Counter()
        self.profrate = profrate

    def record(self, stack: Sequence[str]) -> None:
        """Record one tick with ``stack`` live (root first, leaf last)."""
        if stack:
            self.samples[tuple(stack)] += 1

    @property
    def total_ticks(self) -> int:
        """Total samples recorded."""
        return sum(self.samples.values())

    @property
    def total_seconds(self) -> float:
        """Total sampled time."""
        return self.total_ticks / self.profrate

    def seconds(self, ticks: int) -> float:
        """Convert a tick count to seconds."""
        return ticks / self.profrate

    def merge(self, other: "StackProfile") -> "StackProfile":
        """Sum two stack profiles (multi-run accumulation)."""
        if other.profrate != self.profrate:
            raise ReproError(
                f"cannot merge profiles at {self.profrate} and "
                f"{other.profrate} ticks/second"
            )
        merged = StackProfile(self.profrate)
        merged.samples = self.samples + other.samples
        return merged

    def routines(self) -> set[str]:
        """Every routine appearing in any sampled stack."""
        return {frame for stack in self.samples for frame in stack}

    def __len__(self) -> int:
        """Number of *distinct* stacks."""
        return len(self.samples)


def write_folded(profile: StackProfile, path) -> None:
    """Write the profile in folded-stacks format (plus a header line)."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# repro-folded-1 profrate={profile.profrate}\n")
        for stack, count in sorted(profile.samples.items()):
            f.write(";".join(stack) + f" {count}\n")


def read_folded(path) -> StackProfile:
    """Read a profile written by :func:`write_folded`.

    Plain folded files without our header are accepted too (profrate
    defaults to 100) — they are what flame-graph tools exchange.
    """
    profile = StackProfile()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                if "profrate=" in line:
                    try:
                        profile.profrate = int(line.split("profrate=")[1].split()[0])
                    except (ValueError, IndexError) as exc:
                        raise ReproError(
                            f"{path}:{lineno}: bad profrate header"
                        ) from exc
                continue
            stack_text, _, count_text = line.rpartition(" ")
            if not stack_text:
                raise ReproError(f"{path}:{lineno}: malformed folded line")
            try:
                count = int(count_text)
            except ValueError as exc:
                raise ReproError(
                    f"{path}:{lineno}: bad sample count {count_text!r}"
                ) from exc
            if count < 0:
                raise ReproError(f"{path}:{lineno}: negative sample count")
            profile.samples[tuple(stack_text.split(";"))] += count
    return profile
