"""Call-stack sampling for Python programs.

The Python analogue of :mod:`repro.stacks.vm`: a SIGPROF handler (CPU
time, faithful) or a sampler thread (wall clock, portable) walks the
interrupted frame's ``f_back`` chain and records the complete routine
chain.  No ``sys.setprofile`` hook is involved at all — per-call
overhead is zero, per-sample cost is one frame walk, and backing off
``interval`` reduces even that: the modern trade the retrospective
describes.
"""

from __future__ import annotations

import signal
import sys
import threading
from types import FrameType

from repro.errors import ProfilerError
from repro.pyprof.addresses import describe_code
from repro.pyprof.tracer import is_internal_code
from repro.stacks.profile import StackProfile

#: Frames from these directories are profiler machinery, never samples.
_SKIP = is_internal_code


def capture_stack(frame: FrameType | None, limit: int = 500) -> list[str]:
    """Routine names of the frame chain, root first, internals skipped."""
    names: list[str] = []
    depth = 0
    while frame is not None and depth < limit:
        code = frame.f_code
        if not _SKIP(code):
            names.append(describe_code(code))
        frame = frame.f_back
        depth += 1
    names.reverse()
    return names


class PyStackSampler:
    """Samples complete Python call stacks on a timer.

    Arguments:
        interval: sampling period in seconds.
        mode: ``"signal"`` (SIGPROF / CPU time, Unix main thread) or
            ``"thread"`` (wall clock, portable).

    Usable as a context manager::

        with PyStackSampler(interval=0.002) as sampler:
            work()
        tree = analyze_stacks(sampler.profile)
    """

    def __init__(self, interval: float = 0.001, mode: str = "signal"):
        if interval <= 0:
            raise ProfilerError(f"interval must be positive, got {interval}")
        if mode not in ("signal", "thread"):
            raise ProfilerError(f"unknown mode {mode!r}")
        self.interval = interval
        self.mode = mode
        self.profile = StackProfile(profrate=max(round(1 / interval), 1))
        self._previous_handler = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_id: int | None = None
        self.active = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Arm the sampler."""
        if self.active:
            raise ProfilerError("sampler is already active")
        if self.mode == "signal":
            if threading.current_thread() is not threading.main_thread():
                raise ProfilerError("signal mode must start on the main thread")
            self._previous_handler = signal.signal(signal.SIGPROF, self._on_signal)
            signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        else:
            self._target_id = threading.get_ident()
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run_thread, name="repro-stack-sampler", daemon=True
            )
            self._thread.start()
        self.active = True

    def stop(self) -> None:
        """Disarm the sampler (idempotent)."""
        if not self.active:
            return
        if self.mode == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0)
            signal.signal(signal.SIGPROF, self._previous_handler or signal.SIG_DFL)
        else:
            self._stop.set()
            if self._thread is not None:
                self._thread.join()
                self._thread = None
        self.active = False

    def __enter__(self) -> "PyStackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- capture ------------------------------------------------------------------

    def _on_signal(self, signum, frame: FrameType | None) -> None:
        self.profile.record(capture_stack(frame))

    def _run_thread(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_id)
            self.profile.record(capture_stack(frame))
