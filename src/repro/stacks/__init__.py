"""Call-stack sampling: the retrospective's "modern profiler", built.

"Modern profilers solve both these problems [average-time attribution
and cycles] by periodically gathering not just isolated program counter
samples and isolated call graph arcs, but complete call stacks.  The
additional overhead of gathering the call stack can be hidden by
backing off the frequency with which the call stacks are sampled."

This package implements that successor design against both substrates —
the VM (walking the interpreter's frame chain at each profiling tick)
and Python (walking ``frame.f_back`` from SIGPROF or a sampler thread) —
plus the analysis it enables:

* exact *inclusive* time per routine (counted once per stack, so
  recursion and cycles need no special treatment);
* per-caller attribution from observed stacks rather than call-count
  averaging, eliminating gprof's documented skew pitfall;
* top-down call-tree and folded ("flame graph") renderings.

The comparison benchmarks (``benchmarks/bench_stacks.py``) measure both
claims against classic gprof on the same workloads.
"""

from repro.stacks.profile import StackProfile, read_folded, write_folded
from repro.stacks.analysis import StackAnalysis, analyze_stacks
from repro.stacks.convert import as_profile_data
from repro.stacks.pysampler import PyStackSampler
from repro.stacks.report import format_call_tree, format_hot_paths
from repro.stacks.vm import VMStackMonitor

__all__ = [
    "PyStackSampler",
    "StackAnalysis",
    "StackProfile",
    "VMStackMonitor",
    "analyze_stacks",
    "as_profile_data",
    "format_call_tree",
    "format_hot_paths",
    "read_folded",
    "write_folded",
]
