"""Deriving classic gprof inputs from complete-stack samples.

Complete stacks strictly subsume the classic data: every sample
contains a leaf PC observation (→ the histogram) and every adjacent
frame pair is an observed caller/callee relationship (→ arcs).  This
module performs that projection, so stack captures can feed the whole
classic pipeline — the Figure 4 listing, the CLI, the gmon format.

One semantic caveat, stated loudly: the projected arc "counts" are
**co-residence sample counts**, not call counts.  They weight callers
by *observed time under the arc* rather than by invocations — which
makes the classic propagation's output approximate the stack-exact
attribution (and dodge the average-time pitfall), at the price of the
``calls`` columns no longer meaning calls.  The synthetic symbol names
are suffixed accordingly in the provenance comment.
"""

from __future__ import annotations

from collections import Counter

from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.symbols import Symbol, SymbolTable
from repro.stacks.profile import StackProfile

#: Address units per routine in the synthetic layout.
ROUTINE_SIZE = 16


def as_profile_data(
    stacks: StackProfile,
) -> tuple[ProfileData, SymbolTable]:
    """Project a stack profile onto classic (histogram + arcs) data.

    Returns ``(profile_data, symbol_table)`` ready for
    :func:`repro.core.analyze`.  Histogram ticks go to each sample's
    leaf routine; arcs carry co-residence counts (see module caveat).
    """
    routines = sorted(stacks.routines())
    base = {
        name: i * ROUTINE_SIZE for i, name in enumerate(routines)
    }
    symbols = SymbolTable(
        Symbol(addr, name, addr + ROUTINE_SIZE)
        for name, addr in base.items()
    )
    hist = Histogram.for_range(
        0,
        len(routines) * ROUTINE_SIZE,
        scale=1.0 / ROUTINE_SIZE,
        profrate=stacks.profrate,
    )
    edge_counts: Counter[tuple[str, str]] = Counter()
    root_counts: Counter[str] = Counter()
    for stack, ticks in stacks.samples.items():
        leaf_bucket = hist.bucket_for(base[stack[-1]])
        hist.counts[leaf_bucket] += ticks
        root_counts[stack[0]] += ticks
        # deduplicate edges within one sample (recursion would otherwise
        # multiply-charge a tick to the same arc), mirroring
        # repro.stacks.analysis
        for caller, callee in {
            (stack[i], stack[i + 1]) for i in range(len(stack) - 1)
        }:
            edge_counts[(caller, callee)] += ticks
    arcs = [
        RawArc(base[caller] + 1, base[callee], count)
        for (caller, callee), count in sorted(edge_counts.items())
    ]
    # roots were observably entered: spontaneous arcs keep their entries
    # sane (ncalls > 0) without inventing a caller.
    arcs.extend(
        RawArc(0, base[name], count)
        for name, count in sorted(root_counts.items())
    )
    data = ProfileData(
        hist,
        arcs,
        comment="projected from stack samples; arc counts are "
        "co-residence samples, not calls",
    )
    return data, symbols
