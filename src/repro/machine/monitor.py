"""The execution-time monitor: histogram driver + arc table + lifecycle.

§3 splits execution monitoring into three parts: initialization before
the program runs (``monstartup``), the monitoring routine invoked from
profiled prologues (``mcount``, here :meth:`Monitor.mcount`), and the
shutdown step that condenses the data (``mcleanup``, here
:meth:`Monitor.mcleanup`).  The retrospective adds the programmer's
interface used for kernel profiling: turn the profiler on and off
(``moncontrol``), extract the data, and reset it — all without stopping
the program; :meth:`snapshot` and :meth:`reset` provide those.

The paper's design only persists data at termination — so a crashed or
killed run loses everything.  :meth:`enable_checkpoints` adds periodic
crash-safe flushing: every N clock ticks the current snapshot is written
atomically (write-to-temp-then-rename, see :mod:`repro.resilience`), so
a kill at any instant leaves the most recent complete checkpoint on
disk, never a torn file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import DEFAULT_PROFRATE, Histogram
from repro.core.profiledata import ProfileData
from repro.machine.mcount import ArcTable, ArcTableStats
from repro.resilience.faults import FaultInjector


@dataclass
class MonitorConfig:
    """Configuration fixed at ``monstartup`` time.

    Attributes:
        low_pc, high_pc: address range to sample.
        scale: histogram buckets per address unit (1.0 = the one-to-one
            mapping; smaller = coarser histogram in less memory).
        cycles_per_tick: simulated cycles per profiling clock tick (the
            1/60th-of-a-second granularity knob).
        profrate: nominal ticks per second, used to express simulated
            cycles as seconds in reports.
        checkpoint_path: when set, flush a crash-safe snapshot of the
            profile data here while the program runs.
        checkpoint_interval: clock ticks between checkpoint flushes
            (0 disables checkpointing even with a path set).
    """

    low_pc: int
    high_pc: int
    scale: float = 1.0
    cycles_per_tick: int = 100
    profrate: int = DEFAULT_PROFRATE
    checkpoint_path: str | None = None
    checkpoint_interval: int = 0


def _fast_bucket_params(
    histogram: Histogram,
) -> tuple[int, int, int, list[int]] | None:
    """Shift/mask parameters for the per-tick bucket computation.

    Returns ``(low_pc, high_pc, shift, counts)`` when every bucket
    covers exactly ``2**shift`` address units, so the tick hot path can
    index with ``(pc - low_pc) >> shift`` instead of the float division
    inside :meth:`Histogram.bucket_for`.  With an integral width that
    exactly tiles the range, the maximum index is ``nbuckets - 1``, so
    the reference path's last-bucket clamp can never fire and the two
    computations agree on every address (a property the tests pin).
    Returns None for geometries the shift cannot express; those fall
    back to the reference computation.
    """
    span = histogram.high_pc - histogram.low_pc
    nbuckets = len(histogram.counts)
    if span <= 0 or nbuckets <= 0 or span % nbuckets:
        return None
    width = span // nbuckets
    if width & (width - 1):
        return None
    return (
        histogram.low_pc,
        histogram.high_pc,
        width.bit_length() - 1,
        histogram.counts,
    )


class Monitor:
    """Per-execution profiling state, attached to a CPU.

    The CPU calls :meth:`tick` at every clock tick (histogram sampling
    costs the program nothing, as in the kernel-maintained original) and
    :meth:`mcount` from every profiled prologue (which *does* cost
    cycles — the return value is the simulated cost the CPU charges).
    """

    def __init__(self, config: MonitorConfig):
        self.config = config
        self.histogram = Histogram.for_range(
            config.low_pc, config.high_pc, config.scale, config.profrate
        )
        self._fast_bucket = _fast_bucket_params(self.histogram)
        self.arc_table = ArcTable()
        self.enabled = True
        self.ticks_dropped = 0
        self._checkpoint_path: str | None = None
        self._checkpoint_every = 0
        self._checkpoint_injector: FaultInjector | None = None
        self._checkpoint_comment = "checkpoint"
        self._ticks_since_flush = 0
        self.checkpoints_written = 0
        if config.checkpoint_path and config.checkpoint_interval > 0:
            self.enable_checkpoints(
                config.checkpoint_path, config.checkpoint_interval
            )

    # -- the two data-gathering entry points ------------------------------------

    def tick(self, pc: int) -> None:
        """Record one clock-tick PC sample (no cost to the program).

        This is the per-tick hot path: when the histogram's bucket
        width is an integral power of two (the default one-to-one
        geometry included), the bucket index is a cached shift instead
        of :meth:`Histogram.bucket_for`'s repeated float division.
        """
        if not self.enabled:
            return
        fast = self._fast_bucket
        if fast is not None:
            low, high, shift, counts = fast
            if low <= pc < high:
                counts[(pc - low) >> shift] += 1
            else:
                self.ticks_dropped += 1
        elif not self.histogram.record(pc):
            self.ticks_dropped += 1
        if self._checkpoint_every:
            self._ticks_since_flush += 1
            if self._ticks_since_flush >= self._checkpoint_every:
                self.flush_checkpoint()

    def mcount(self, from_pc: int | None, self_pc: int) -> int:
        """The monitoring routine: record an arc traversal.

        Returns the simulated cycle cost (0 when profiling is off — the
        prologue still tests the enable flag, which we price at zero for
        simplicity; unprofiled *builds* have no prologue at all).
        """
        if not self.enabled:
            return 0
        return self.arc_table.record(from_pc, self_pc)

    def rebind_histogram(self, histogram: Histogram) -> None:
        """Point the tick hot path at a different histogram.

        The SMP machine's per-process monitors are re-aimed at the
        executing CPU's histogram shard on every dispatch; the cached
        shift/mask parameters must follow the histogram or ticks would
        keep landing in the previous CPU's shard.
        """
        self.histogram = histogram
        self._fast_bucket = _fast_bucket_params(histogram)

    # -- the programmer's interface (moncontrol / kgmon) -------------------------

    def moncontrol(self, enabled: bool) -> None:
        """Turn profiling on or off while the program keeps running."""
        self.enabled = enabled

    def snapshot(self, comment: str = "") -> ProfileData:
        """Extract the profiling data gathered so far, without stopping.

        The kernel-profiling workflow: gather a window of activity, pull
        the data out, analyze offline.
        """
        return ProfileData(
            self.histogram.copy(),
            self.arc_table.arcs(),
            comment=comment,
        )

    def reset(self) -> None:
        """Zero the histogram and the arc table (kgmon reset)."""
        self.histogram.reset()
        self.arc_table.reset()

    # -- crash-safe checkpointing -------------------------------------------------

    def enable_checkpoints(
        self,
        path,
        every_ticks: int,
        injector: FaultInjector | None = None,
        comment: str = "checkpoint",
    ) -> None:
        """Flush a crash-safe snapshot to ``path`` every ``every_ticks``.

        Each flush is an atomic write of the complete data gathered so
        far, so killing the run at *any* point — including mid-flush —
        leaves the most recent finished checkpoint readable at ``path``.
        ``injector`` threads the fault-injection harness through the
        writes (tests kill chosen flushes with it).
        """
        if every_ticks <= 0:
            raise ValueError(
                f"checkpoint interval must be positive, got {every_ticks}"
            )
        self._checkpoint_path = path
        self._checkpoint_every = every_ticks
        self._checkpoint_injector = injector
        self._checkpoint_comment = comment
        self._ticks_since_flush = 0

    def flush_checkpoint(self) -> None:
        """Write the current snapshot to the checkpoint path, atomically."""
        if self._checkpoint_path is None:
            return
        from repro.gmon import write_gmon

        self._ticks_since_flush = 0
        write_gmon(
            self.snapshot(self._checkpoint_comment),
            self._checkpoint_path,
            injector=self._checkpoint_injector,
        )
        self.checkpoints_written += 1

    # -- shutdown -----------------------------------------------------------------

    def mcleanup(self, comment: str = "") -> ProfileData:
        """Condense the data structures as the program terminates (§3).

        With checkpointing enabled, the final state is also flushed to
        the checkpoint path, so the on-disk snapshot of a run that *did*
        terminate cleanly matches its complete data.
        """
        data = self.snapshot(comment)
        if self._checkpoint_path is not None:
            self.flush_checkpoint()
        return data

    @property
    def stats(self) -> ArcTableStats:
        """Arc-table operation statistics (for the T-MCOUNT benchmark)."""
        return self.arc_table.stats
