"""The execution-time monitor: histogram driver + arc table + lifecycle.

§3 splits execution monitoring into three parts: initialization before
the program runs (``monstartup``), the monitoring routine invoked from
profiled prologues (``mcount``, here :meth:`Monitor.mcount`), and the
shutdown step that condenses the data (``mcleanup``, here
:meth:`Monitor.mcleanup`).  The retrospective adds the programmer's
interface used for kernel profiling: turn the profiler on and off
(``moncontrol``), extract the data, and reset it — all without stopping
the program; :meth:`snapshot` and :meth:`reset` provide those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import DEFAULT_PROFRATE, Histogram
from repro.core.profiledata import ProfileData
from repro.machine.mcount import ArcTable, ArcTableStats


@dataclass
class MonitorConfig:
    """Configuration fixed at ``monstartup`` time.

    Attributes:
        low_pc, high_pc: address range to sample.
        scale: histogram buckets per address unit (1.0 = the one-to-one
            mapping; smaller = coarser histogram in less memory).
        cycles_per_tick: simulated cycles per profiling clock tick (the
            1/60th-of-a-second granularity knob).
        profrate: nominal ticks per second, used to express simulated
            cycles as seconds in reports.
    """

    low_pc: int
    high_pc: int
    scale: float = 1.0
    cycles_per_tick: int = 100
    profrate: int = DEFAULT_PROFRATE


class Monitor:
    """Per-execution profiling state, attached to a CPU.

    The CPU calls :meth:`tick` at every clock tick (histogram sampling
    costs the program nothing, as in the kernel-maintained original) and
    :meth:`mcount` from every profiled prologue (which *does* cost
    cycles — the return value is the simulated cost the CPU charges).
    """

    def __init__(self, config: MonitorConfig):
        self.config = config
        self.histogram = Histogram.for_range(
            config.low_pc, config.high_pc, config.scale, config.profrate
        )
        self.arc_table = ArcTable()
        self.enabled = True
        self.ticks_dropped = 0

    # -- the two data-gathering entry points ------------------------------------

    def tick(self, pc: int) -> None:
        """Record one clock-tick PC sample (no cost to the program)."""
        if not self.enabled:
            return
        if not self.histogram.record(pc):
            self.ticks_dropped += 1

    def mcount(self, from_pc: int | None, self_pc: int) -> int:
        """The monitoring routine: record an arc traversal.

        Returns the simulated cycle cost (0 when profiling is off — the
        prologue still tests the enable flag, which we price at zero for
        simplicity; unprofiled *builds* have no prologue at all).
        """
        if not self.enabled:
            return 0
        return self.arc_table.record(from_pc, self_pc)

    # -- the programmer's interface (moncontrol / kgmon) -------------------------

    def moncontrol(self, enabled: bool) -> None:
        """Turn profiling on or off while the program keeps running."""
        self.enabled = enabled

    def snapshot(self, comment: str = "") -> ProfileData:
        """Extract the profiling data gathered so far, without stopping.

        The kernel-profiling workflow: gather a window of activity, pull
        the data out, analyze offline.
        """
        return ProfileData(
            self.histogram.copy(),
            self.arc_table.arcs(),
            comment=comment,
        )

    def reset(self) -> None:
        """Zero the histogram and the arc table (kgmon reset)."""
        self.histogram.reset()
        self.arc_table.reset()

    # -- shutdown -----------------------------------------------------------------

    def mcleanup(self, comment: str = "") -> ProfileData:
        """Condense the data structures as the program terminates (§3)."""
        return self.snapshot(comment)

    @property
    def stats(self) -> ArcTableStats:
        """Arc-table operation statistics (for the T-MCOUNT benchmark)."""
        return self.arc_table.stats
