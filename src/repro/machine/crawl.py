"""Static call graph extraction by crawling the executable image.

§4: "In our programming system, the static calling information is also
contained in the executable version of the program...  One can examine
the instructions in the object program, looking for calls to routines,
and note which routines can be called."

For the VM this is exact for direct calls: every ``CALL`` instruction
names its target.  Indirect calls (``CALLI``) have no static target; as
an *address-taken* heuristic we treat ``PUSH &f`` inside routine ``g``
as a potential arc ``g → f`` — the code manifestly loads ``f``'s
address, so ``f`` "can be called" from there.  This mirrors how real
binary crawlers over-approximate calls through function pointers; the
resulting arcs get zero traversal counts and never carry time.
"""

from __future__ import annotations

from typing import Iterator

from repro.machine.executable import Executable
from repro.machine.isa import INSTRUCTION_SIZE, Op


def static_arcs(exe: Executable) -> Iterator[tuple[str, str]]:
    """Yield (caller, callee) name pairs apparent in the program text.

    Direct ``CALL`` targets are exact; ``PUSH &f`` contributes the
    address-taken heuristic arc.  Pairs may repeat when a caller has
    several call sites for the same callee; consumers deduplicate.
    """
    for i, ins in enumerate(exe.instructions):
        if ins.op is Op.CALL or (ins.op is Op.PUSH and _is_code_address(exe, ins.operand)):
            addr = i * INSTRUCTION_SIZE
            caller = exe.function_at(addr)
            callee = exe.function_at(ins.operand) if ins.operand is not None else None
            if caller is None or callee is None:
                continue
            if ins.op is Op.PUSH and callee.entry != ins.operand:
                continue  # a constant that merely looks like a mid-body address
            yield caller.name, callee.name


def _is_code_address(exe: Executable, value: int | None) -> bool:
    """Whether a PUSH operand is plausibly a function entry address."""
    if value is None or value % INSTRUCTION_SIZE:
        return False
    if not exe.low_pc <= value < exe.high_pc:
        return False
    fn = exe.function_at(value)
    return fn is not None and fn.entry == value


def static_call_graph(exe: Executable) -> set[tuple[str, str]]:
    """The deduplicated static call graph of an executable."""
    return set(static_arcs(exe))
