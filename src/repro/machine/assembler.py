"""A two-pass assembler for the VM.

Source syntax, line oriented::

    ; comment (also after instructions)
    .globals 4              ; size of the global segment (optional)

    .func main              ; begin routine 'main'
        PUSH 10
        CALL fib            ; operand: a function name
        OUT
        HALT
    .end

    .func helper noprofile  ; never gets a monitoring prologue
    loop:                   ; local label
        WORK 5
        JNZ loop
        PUSH &fib           ; push a function's address (functional parameter)
        CALLI
        RET
    .end

Assembling with ``profile=True`` plants an ``MCOUNT`` instruction at the
top of every routine not marked ``noprofile`` — the moral equivalent of
compiling with the profiling option, where "our compilers ... insert
calls to a monitoring routine in the prologue for each routine" (§3).
No other planning by the programmer is required, exactly as the paper
promises.
"""

from __future__ import annotations

from repro.errors import AssemblerError
from repro.machine.executable import Executable, Function
from repro.machine.isa import (
    ADDRESS_OPS,
    INSTRUCTION_SIZE,
    Instruction,
    Op,
    OPERAND_OPS,
)


def assemble(
    source: str,
    name: str = "a.out",
    profile: bool = False,
    count_blocks: bool = False,
) -> Executable:
    """Assemble ``source`` into an :class:`Executable`.

    Arguments:
        source: assembly text in the syntax described above.
        name: program name recorded in the image.
        profile: plant monitoring prologues (``MCOUNT``) in every
            routine not marked ``noprofile``.
        count_blocks: plant inline ``COUNT`` increments at every
            routine entry and label — §3's cheap statement-level
            counters ("inline increments to counters [Knuth71]"),
            the alternative to calling a monitoring routine.

    Raises :class:`~repro.errors.AssemblerError` with a line number on
    any syntax or reference error.
    """
    return _Assembler(source, name, profile, count_blocks).assemble()


class _Assembler:
    """Two passes: collect layout and labels, then resolve operands."""

    def __init__(
        self, source: str, name: str, profile: bool, count_blocks: bool = False
    ):
        self.source = source
        self.name = name
        self.profile = profile
        self.count_blocks = count_blocks
        self.counter_names: list[str] = []
        self._entry_count_pending = False
        self.items: list[tuple[int, str, str | int | None]] = []  # (line, op, raw operand)
        self.functions: list[Function] = []
        self.labels: dict[str, int] = {}  # resolved label → address
        self.num_globals = 0

    def assemble(self) -> Executable:
        self._first_pass()
        instructions = self._second_pass()
        entry = self.labels.get("main", 0)
        return Executable(
            name=self.name,
            instructions=instructions,
            functions=self.functions,
            num_globals=self.num_globals,
            entry_point=entry,
            counter_names=self.counter_names,
        )

    # -- pass 1: layout ---------------------------------------------------------

    def _first_pass(self) -> None:
        current_func: str | None = None
        func_profiled = False
        func_start = 0
        pending_labels: list[tuple[int, str]] = []
        addr = 0

        def place_labels() -> None:
            for lineno, label in pending_labels:
                key = self._label_key(current_func, label)
                if key in self.labels:
                    raise AssemblerError(f"duplicate label {label!r}", lineno)
                self.labels[key] = addr
            pending_labels.clear()

        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            line = raw.split(";", 1)[0].strip()
            if not line:
                continue
            if line.startswith(".globals"):
                parts = line.split()
                if len(parts) != 2 or not parts[1].isdigit():
                    raise AssemblerError(".globals takes one integer", lineno)
                self.num_globals = int(parts[1])
                continue
            if line.startswith(".func"):
                if current_func is not None:
                    raise AssemblerError(
                        f"nested .func (still inside {current_func!r})", lineno
                    )
                parts = line.split()
                if len(parts) < 2:
                    raise AssemblerError(".func needs a name", lineno)
                current_func = parts[1]
                func_profiled = self.profile and "noprofile" not in parts[2:]
                if current_func in self.labels:
                    raise AssemblerError(
                        f"duplicate function {current_func!r}", lineno
                    )
                self.labels[current_func] = addr
                func_start = addr
                if func_profiled:
                    self.items.append((lineno, "MCOUNT", None))
                    addr += INSTRUCTION_SIZE
                self._entry_count_pending = self.count_blocks
                continue
            if line == ".end":
                if current_func is None:
                    raise AssemblerError(".end outside .func", lineno)
                place_labels()
                self.functions.append(
                    Function(current_func, func_start, addr, func_profiled)
                )
                current_func = None
                continue
            if line.endswith(":"):
                label = line[:-1].strip()
                if not label.isidentifier():
                    raise AssemblerError(f"bad label {label!r}", lineno)
                pending_labels.append((lineno, label))
                continue
            if current_func is None:
                raise AssemblerError("instruction outside .func", lineno)
            op, operand = self._parse_instruction(line, lineno)
            block_label = pending_labels[-1][1] if pending_labels else None
            place_labels()
            if self.count_blocks and (self._entry_count_pending or block_label):
                # A basic block starts here (routine entry or a branch
                # target): plant the inline counter increment.
                counter = len(self.counter_names)
                self.counter_names.append(
                    f"{current_func}.{block_label or 'entry'}"
                )
                self.items.append((lineno, "COUNT", counter))
                addr += INSTRUCTION_SIZE
                self._entry_count_pending = False
            self.items.append((lineno, op, operand))
            addr += INSTRUCTION_SIZE
        if current_func is not None:
            raise AssemblerError(f"unterminated .func {current_func!r}", len(
                self.source.splitlines()
            ))
        if pending_labels:
            raise AssemblerError(
                f"label {pending_labels[0][1]!r} at end of input",
                pending_labels[0][0],
            )

    def _parse_instruction(self, line: str, lineno: int) -> tuple[str, str | None]:
        parts = line.split(None, 1)
        mnemonic = parts[0].upper()
        try:
            op = Op(mnemonic)
        except ValueError:
            raise AssemblerError(f"unknown instruction {mnemonic!r}", lineno) from None
        if op in (Op.MCOUNT, Op.COUNT):
            raise AssemblerError(
                f"{mnemonic} is planted by the assembler, not written by hand",
                lineno,
            )
        operand = parts[1].strip() if len(parts) > 1 else None
        if op in OPERAND_OPS and operand is None:
            raise AssemblerError(f"{mnemonic} needs an operand", lineno)
        if op not in OPERAND_OPS and operand is not None:
            raise AssemblerError(f"{mnemonic} takes no operand", lineno)
        return mnemonic, operand

    # -- pass 2: resolve ---------------------------------------------------------

    def _second_pass(self) -> list[Instruction]:
        instructions: list[Instruction] = []
        func_iter = iter(self.functions)
        current = next(func_iter, None)
        addr = 0
        for lineno, mnemonic, operand in self.items:
            while current is not None and addr >= current.end:
                current = next(func_iter, None)
            op = Op(mnemonic)
            value: int | None = None
            if isinstance(operand, int):
                value = operand  # assembler-planted counter index
            elif operand is not None:
                value = self._resolve(
                    op, operand, current.name if current else None, lineno
                )
            instructions.append(Instruction(op, value))
            addr += INSTRUCTION_SIZE
        return instructions

    def _resolve(
        self, op: Op, operand: str, func: str | None, lineno: int
    ) -> int:
        if operand.startswith("&"):
            # Address-of: the functional-parameter mechanism.
            if op is not Op.PUSH:
                raise AssemblerError("'&name' only valid with PUSH", lineno)
            target = operand[1:]
            if target not in self.labels or not self._is_function(target):
                raise AssemblerError(f"unknown function {target!r}", lineno)
            return self.labels[target]
        if op in ADDRESS_OPS:
            # Try a local label first, then a function name.
            local = self._label_key(func, operand)
            if local in self.labels:
                return self.labels[local]
            if operand in self.labels and self._is_function(operand):
                return self.labels[operand]
            raise AssemblerError(f"unknown label {operand!r}", lineno)
        try:
            return int(operand, 0)
        except ValueError:
            raise AssemblerError(
                f"{op.value} needs an integer operand, got {operand!r}", lineno
            ) from None

    def _is_function(self, name: str) -> bool:
        return any(f.name == name for f in self.functions)

    @staticmethod
    def _label_key(func: str | None, label: str) -> str:
        """Local labels are namespaced per function."""
        return f"{func}.{label}" if func else label
