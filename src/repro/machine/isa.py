"""Instruction set of the little stack machine used as profiling substrate.

The original gprof measured compiled VAX/PDP-11 executables; we stand in
a small virtual machine so that programs have *real* program counters,
call sites, return addresses, and a text segment that can be crawled for
the static call graph — the exact raw material gprof consumes.

Design points that matter to the profiler:

* Every instruction occupies :data:`INSTRUCTION_SIZE` address units, so
  program counters are honest addresses and the sampling histogram's
  bucket geometry is meaningful.
* ``CALL`` pushes a return address; the ``MCOUNT`` pseudo-instruction the
  assembler plants in profiled prologues can therefore discover both the
  callee (its own location) and the call site (the return address minus
  one instruction), exactly as §3.1 describes.
* ``CALLI`` calls through a value on the operand stack — a functional
  parameter.  One ``CALLI`` site invoking many targets is what exercises
  the secondary-key path of the arc hash table.
* ``WORK n`` burns ``n`` extra cycles: ground-truth control over where
  execution time goes, which the accuracy benchmarks rely on.

Each instruction has a cycle cost (:data:`COSTS`); the CPU's cycle
counter drives the simulated profiling clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

#: Address units per instruction.  Chosen to echo byte-addressed machines
#: with fixed-width instructions; any positive constant would do.
INSTRUCTION_SIZE = 4


class Op(Enum):
    """Opcodes of the VM."""

    # stack
    PUSH = "PUSH"      # operand: constant → push
    POP = "POP"        # discard top
    DUP = "DUP"        # duplicate top
    SWAP = "SWAP"      # swap top two
    # arithmetic (binary ops pop b then a, push a∘b)
    ADD = "ADD"
    SUB = "SUB"
    MUL = "MUL"
    DIV = "DIV"        # integer division, traps on zero divisor
    MOD = "MOD"
    NEG = "NEG"
    # comparisons (push 1 or 0)
    EQ = "EQ"
    NE = "NE"
    LT = "LT"
    LE = "LE"
    GT = "GT"
    GE = "GE"
    # locals and globals (operand: slot index)
    LOAD = "LOAD"
    STORE = "STORE"
    GLOAD = "GLOAD"
    GSTORE = "GSTORE"
    # indexed global access (index from the stack): the machine's
    # arrays, needed by data-movement workloads like sorting
    GLOADI = "GLOADI"   # pop index, push globals[index]
    GSTOREI = "GSTOREI"  # pop index, pop value, globals[index] = value
    # control flow (operand: absolute address)
    JMP = "JMP"
    JZ = "JZ"          # pop, jump if zero
    JNZ = "JNZ"        # pop, jump if nonzero
    # procedure linkage
    CALL = "CALL"      # operand: callee entry address
    CALLI = "CALLI"    # pop callee entry address from stack
    RET = "RET"        # return (value, if any, stays on operand stack)
    # miscellany
    HALT = "HALT"
    NOP = "NOP"
    WORK = "WORK"      # operand: extra cycles to burn
    OUT = "OUT"        # pop, append to the machine's output buffer
    MCOUNT = "MCOUNT"  # profiled-prologue call into the monitoring routine
    COUNT = "COUNT"    # inline counter increment (operand: counter index) —
                       # §3's cheap alternative for statement-level counts


#: Cycle cost of each instruction.  ``WORK`` adds its operand on top of
#: the base cost; ``MCOUNT``'s cost is decided by the monitoring routine
#: (base + hash probes) so profiling overhead is observable.
COSTS: dict[Op, int] = {
    Op.PUSH: 1, Op.POP: 1, Op.DUP: 1, Op.SWAP: 1,
    Op.ADD: 1, Op.SUB: 1, Op.MUL: 3, Op.DIV: 6, Op.MOD: 6, Op.NEG: 1,
    Op.EQ: 1, Op.NE: 1, Op.LT: 1, Op.LE: 1, Op.GT: 1, Op.GE: 1,
    Op.LOAD: 1, Op.STORE: 1, Op.GLOAD: 2, Op.GSTORE: 2,
    Op.GLOADI: 3, Op.GSTOREI: 3,
    Op.JMP: 1, Op.JZ: 1, Op.JNZ: 1,
    Op.CALL: 4, Op.CALLI: 5, Op.RET: 3,
    Op.HALT: 1, Op.NOP: 1, Op.WORK: 1, Op.OUT: 1, Op.MCOUNT: 0,
    Op.COUNT: 1,  # "The counter increment overhead is low" (§3)
}

#: Opcodes that take one operand.
OPERAND_OPS = frozenset(
    {Op.PUSH, Op.LOAD, Op.STORE, Op.GLOAD, Op.GSTORE,
     Op.JMP, Op.JZ, Op.JNZ, Op.CALL, Op.WORK, Op.COUNT}
)

#: Opcodes whose operand is a code address (assembler resolves labels).
ADDRESS_OPS = frozenset({Op.JMP, Op.JZ, Op.JNZ, Op.CALL})

#: Operand-stack effect of each opcode as ``(pops, pushes)``, the raw
#: material of the stack-balance verifier (:mod:`repro.check.absint`).
#: ``CALL``/``CALLI``/``RET`` are absent on purpose: a call's net effect
#: is the callee's summary (computed interprocedurally) and ``RET``
#: leaves the operand stack to the caller, so neither is a fixed
#: (pops, pushes) pair.  ``MCOUNT`` runs entirely in the monitor and
#: never touches the operand stack.
STACK_EFFECTS: dict[Op, tuple[int, int]] = {
    Op.PUSH: (0, 1), Op.POP: (1, 0), Op.DUP: (1, 2), Op.SWAP: (2, 2),
    Op.ADD: (2, 1), Op.SUB: (2, 1), Op.MUL: (2, 1), Op.DIV: (2, 1),
    Op.MOD: (2, 1), Op.NEG: (1, 1),
    Op.EQ: (2, 1), Op.NE: (2, 1), Op.LT: (2, 1), Op.LE: (2, 1),
    Op.GT: (2, 1), Op.GE: (2, 1),
    Op.LOAD: (0, 1), Op.STORE: (1, 0), Op.GLOAD: (0, 1), Op.GSTORE: (1, 0),
    Op.GLOADI: (1, 1), Op.GSTOREI: (2, 0),
    Op.JMP: (0, 0), Op.JZ: (1, 0), Op.JNZ: (1, 0),
    Op.HALT: (0, 0), Op.NOP: (0, 0), Op.WORK: (0, 0), Op.OUT: (1, 0),
    Op.MCOUNT: (0, 0), Op.COUNT: (0, 0),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    Attributes:
        op: the opcode.
        operand: the single operand, or None.  For :data:`ADDRESS_OPS`
            (and ``PUSH`` of a function address) this is an absolute
            code address after assembly.
    """

    op: Op
    operand: int | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.operand is None:
            return self.op.value
        return f"{self.op.value} {self.operand}"
