"""The monitoring routine's arc table, faithful to §3.1.

"Our solution is to access the table through a hash table.  We use the
call site as the primary key with the callee address being the secondary
key.  Since each call site typically calls only one callee, we can
reduce (usually to one) the number of minor lookups based on the callee.
... we were able to allocate enough space for the primary hash table to
allow a one-to-one mapping from call site addresses to the primary hash
table.  Thus our hash function is trivial to calculate and collisions
occur only for call sites that call multiple destinations (e.g.
functional parameters and functional variables)."

We reproduce that structure: a direct-mapped primary table indexed by
call site, each slot holding a small chain of (callee, count) records.
Probe counts are tracked so the T-MCOUNT benchmark can verify the
"usually one" claim, and so the monitoring routine's simulated cycle
cost reflects the real lookup work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.arcs import RawArc

#: Base cycle cost of entering the monitoring routine (prologue call,
#: register save, return-address discovery), before any hash probes.
#: Calibrated so that ordinary programs land in the paper's "five to
#: thirty percent" overhead band, with pathological call-only programs
#: above it and compute-bound programs below.
MCOUNT_BASE_COST = 5

#: Additional cycles per probe of the secondary (callee) chain.
MCOUNT_PROBE_COST = 1


@dataclass
class ArcTableStats:
    """Operation counts for the arc table, for the T-MCOUNT benchmark.

    Attributes:
        lookups: monitoring routine invocations (= profiled calls).
        probes: total secondary-chain probes across all lookups.
        collisions: lookups that needed more than one probe — exactly
            the call sites invoking multiple destinations.
        spontaneous: invocations whose caller could not be identified.
    """

    lookups: int = 0
    probes: int = 0
    collisions: int = 0
    spontaneous: int = 0

    @property
    def mean_probes(self) -> float:
        """Average probes per lookup (the paper's 'usually one')."""
        return self.probes / self.lookups if self.lookups else 0.0


@dataclass
class ArcTable:
    """The in-memory table of discovered call graph arcs.

    The primary index is the call-site address itself (the paper's
    one-to-one direct mapping); each entry chains (callee, count)
    records, almost always of length one.
    """

    _table: dict[int, list[list[int]]] = field(default_factory=dict)
    stats: ArcTableStats = field(default_factory=ArcTableStats)

    def record(self, from_pc: int | None, self_pc: int) -> int:
        """Count one traversal of the arc (from_pc → self_pc).

        ``from_pc`` of None marks a spontaneous invocation (unknown
        caller); it is recorded under address 0, per the file format's
        convention.  Returns the simulated cycle cost of the operation
        (base cost plus per-probe cost), which the CPU charges to the
        profiled program — this is the overhead the paper bounds at
        "five to thirty percent".
        """
        self.stats.lookups += 1
        if from_pc is None:
            self.stats.spontaneous += 1
            from_pc = 0
        chain = self._table.get(from_pc)
        if chain is None:
            chain = []
            self._table[from_pc] = chain
        probes = 0
        for entry in chain:
            probes += 1
            if entry[0] == self_pc:
                entry[1] += 1
                break
        else:
            probes += 1
            chain.append([self_pc, 1])
        self.stats.probes += probes
        if probes > 1:
            self.stats.collisions += 1
        return MCOUNT_BASE_COST + MCOUNT_PROBE_COST * probes

    def primary_chain(self, from_pc: int) -> list[list[int]] | None:
        """The secondary (callee) chain for one call site, or None.

        The fast interpreter's per-call-site memo keys off this: once a
        chain exists, its head entry never moves (records are appended,
        never reordered), so ``chain[0]`` can be cached and bumped
        directly for the paper's "usually one probe" case.  Mutating the
        returned lists bypasses :attr:`stats`; only :mod:`fastcpu` is
        expected to, and only in lock-step with the stats contract.
        """
        return self._table.get(from_pc)

    def arcs(self) -> list[RawArc]:
        """Condense the table to raw arc records (§3.2's file step)."""
        return [
            RawArc(from_pc, self_pc, count)
            for from_pc, chain in sorted(self._table.items())
            for self_pc, count in sorted(chain)
        ]

    def reset(self) -> None:
        """Drop all recorded arcs (the kgmon 'reset' operation).

        Statistics are preserved: they describe the monitoring routine's
        behaviour, not the program's.
        """
        self._table.clear()

    def __len__(self) -> int:
        """Number of distinct (call site, callee) pairs recorded."""
        return sum(len(chain) for chain in self._table.values())


@dataclass
class ArcBuffer:
    """A bare per-CPU arc accumulation buffer (no cost model, no stats).

    The SMP machine (:mod:`repro.machine.smp`) splits §3.1's monitoring
    routine in two: the *cost* of the lookup is charged from each
    process's private :class:`ArcTable` (so a process's virtual clock
    never depends on which CPU it happened to run on), while the *data*
    lands in the buffer of the CPU executing the process — a plain
    ``(call site, callee) -> count`` map touched by exactly one CPU,
    which is why the hot path needs no cross-CPU locking.
    """

    _counts: dict[tuple[int, int], int] = field(default_factory=dict)

    def record(self, from_pc: int | None, self_pc: int) -> None:
        """Count one traversal of the arc (from_pc -> self_pc).

        ``from_pc`` of None marks a spontaneous invocation; it is
        recorded under address 0, matching :meth:`ArcTable.record`.
        """
        key = (0 if from_pc is None else from_pc, self_pc)
        counts = self._counts
        counts[key] = counts.get(key, 0) + 1

    def arcs(self) -> list[RawArc]:
        """Condense the buffer to sorted raw arc records."""
        return [
            RawArc(from_pc, self_pc, count)
            for (from_pc, self_pc), count in sorted(self._counts.items())
        ]

    def reset(self) -> None:
        """Drop all recorded arcs (the kgmon per-shard reset)."""
        self._counts.clear()

    @property
    def total_calls(self) -> int:
        """Total arc traversals recorded in this buffer."""
        return sum(self._counts.values())

    def __len__(self) -> int:
        """Number of distinct (call site, callee) pairs recorded."""
        return len(self._counts)


@dataclass
class CalleeKeyedArcTable:
    """The road not taken: callee as primary key, call site as secondary.

    §3.1 weighs this alternative: "Such an organization has the
    advantage of associating callers with callees, at the expense of
    longer lookups in the monitoring routine."  A routine called from
    many sites (the common case for useful abstractions — the very
    motivation of the paper) chains all its call sites under one key,
    so the secondary probe count grows with the routine's popularity
    instead of staying at one.

    Implemented with the same record/arcs/stats interface as
    :class:`ArcTable` so the ablation benchmark can swap them.
    """

    _table: dict[int, list[list[int]]] = field(default_factory=dict)
    stats: ArcTableStats = field(default_factory=ArcTableStats)

    def record(self, from_pc: int | None, self_pc: int) -> int:
        """Count one traversal; returns the simulated cycle cost."""
        self.stats.lookups += 1
        if from_pc is None:
            self.stats.spontaneous += 1
            from_pc = 0
        chain = self._table.get(self_pc)
        if chain is None:
            chain = []
            self._table[self_pc] = chain
        probes = 0
        for entry in chain:
            probes += 1
            if entry[0] == from_pc:
                entry[1] += 1
                break
        else:
            probes += 1
            chain.append([from_pc, 1])
        self.stats.probes += probes
        if probes > 1:
            self.stats.collisions += 1
        return MCOUNT_BASE_COST + MCOUNT_PROBE_COST * probes

    def arcs(self) -> list[RawArc]:
        """Condense to raw arc records (identical output to ArcTable)."""
        return sorted(
            (
                RawArc(from_pc, self_pc, count)
                for self_pc, chain in self._table.items()
                for from_pc, count in chain
            ),
            key=lambda a: (a.from_pc, a.self_pc),
        )

    def reset(self) -> None:
        """Drop recorded arcs, keep statistics."""
        self._table.clear()

    def __len__(self) -> int:
        """Number of distinct (call site, callee) pairs recorded."""
        return sum(len(chain) for chain in self._table.values())
