"""A time-sharing machine, and why gprof samples instead of timing.

§3.2 gives two ways to gather execution times and rejects the first:

    "One method measures the execution time of a routine by measuring
    the elapsed time from routine entry to routine exit.  Unfortunately,
    time measurement is complicated on time-sharing systems by the
    time-slicing of the program.  A second method samples the value of
    the program counter at some interval ... particularly suited to
    time-sharing systems, where the time-slicing can serve as the basis
    for sampling the program counter."

This module reproduces that argument as an experiment.  A
:class:`TimeSharedMachine` runs several CPUs round-robin against one
*wall* clock.  An :class:`ElapsedTimeProfiler` implements the rejected
method — stamping routine entry and exit with the wall clock — and
systematically over-reports routines that happen to be live across a
context switch.  The sampling monitor, ticking on the process's *own*
cycle clock, is unaffected.  ``benchmarks/bench_timesharing.py``
quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.cpu import CPU


@dataclass
class ElapsedTimeProfiler:
    """The paper's rejected method: wall-clock entry-to-exit timing.

    Installed as a CPU's ``tracer``; ``clock`` is a zero-argument
    callable returning the current *wall* time (the time-shared
    machine's global cycle count).  Each routine accumulates the wall
    time between its entry and its exit — including any slices the
    scheduler gave to other processes in between, which is precisely
    the method's flaw.

    Attributes:
        inclusive_wall: routine name → total wall cycles between entry
            and exit, summed over activations.
        activations: routine name → number of completed activations.
    """

    clock: callable
    inclusive_wall: dict[str, int] = field(default_factory=dict)
    activations: dict[str, int] = field(default_factory=dict)
    _stack: list[tuple[str, int]] = field(default_factory=list)

    def on_call(self, cpu: CPU, target: int) -> None:
        fn = cpu.exe.function_at(target)
        name = fn.name if fn else f"<0x{target:x}>"
        self._stack.append((name, self.clock()))

    def on_return(self, cpu: CPU) -> None:
        if not self._stack:
            return
        name, start = self._stack.pop()
        self.inclusive_wall[name] = (
            self.inclusive_wall.get(name, 0) + self.clock() - start
        )
        self.activations[name] = self.activations.get(name, 0) + 1

    def mean_wall(self, name: str) -> float:
        """Average wall cycles per activation of ``name``."""
        n = self.activations.get(name, 0)
        return self.inclusive_wall.get(name, 0) / n if n else 0.0


class TimeSharedMachine:
    """Several CPUs sharing one machine, scheduled round-robin.

    Arguments:
        cpus: the processes.  Each keeps its own cycle clock (process
            time); the machine's :attr:`wall_cycles` advances with
            whichever process is running.
        quantum: wall cycles per scheduling slice.

    Each CPU's attached monitor keeps sampling on the CPU's *own*
    clock, so a process's histogram only ever ticks while it runs —
    the kernel behaviour that makes sampling time-sharing-proof.
    """

    def __init__(self, cpus: list[CPU], quantum: int = 500):
        if not cpus:
            raise MachineError("a machine needs at least one process")
        if quantum <= 0:
            raise MachineError(f"quantum must be positive, got {quantum}")
        self.cpus = list(cpus)
        self.quantum = quantum
        self.wall_cycles = 0
        self.context_switches = 0

    def wall_clock(self) -> int:
        """The global wall clock (for :class:`ElapsedTimeProfiler`)."""
        return self.wall_cycles

    def run(self, max_wall_cycles: int | None = None) -> None:
        """Run all processes to completion (or a wall-clock budget).

        Each slice is delegated to the process's own ``run`` with a
        cycle budget, so a fast-engine process keeps its predecoded
        dispatch loop across the whole quantum instead of paying
        ``step()`` overhead per instruction.  Within a slice the wall
        clock and the process clock advance in lockstep, so bounding
        the slice at the remaining wall budget stops execution at the
        same instruction the per-step accounting would have.
        """
        while True:
            alive = [cpu for cpu in self.cpus if not cpu.halted]
            if not alive:
                return
            for cpu in alive:
                if cpu.halted:
                    continue
                budget = self.quantum
                if max_wall_cycles is not None:
                    budget = min(budget, max_wall_cycles - self.wall_cycles)
                before = cpu.cycles
                cpu.run(max_cycles=before + max(budget, 1))
                self.wall_cycles += cpu.cycles - before
                if (
                    max_wall_cycles is not None
                    and self.wall_cycles >= max_wall_cycles
                ):
                    return
                self.context_switches += 1
