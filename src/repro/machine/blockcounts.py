"""Basic-block execution counts: the §2/§3 statement-level profile.

"Routine calls or statement executions can be measured by having a
compiler augment the code at strategic points.  The additions can be
inline increments to counters [Knuth71] ... The counter increment
overhead is low, and is suitable for profiling statements."

Assembling with ``count_blocks=True`` plants a ``COUNT`` at every
routine entry and label (the VM's branch targets — its basic-block
leaders).  After a run, this module pairs the CPU's counters with
their names and renders the §2-style tabular listing of exact
execution counts — the view gprof *complements* rather than replaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cpu import CPU


@dataclass(frozen=True)
class BlockCount:
    """One basic block's exact execution count."""

    function: str
    label: str
    count: int

    @property
    def name(self) -> str:
        """``function.label`` display form."""
        return f"{self.function}.{self.label}"


def block_counts(cpu: CPU) -> list[BlockCount]:
    """The executed CPU's counters, paired with their block names."""
    rows = []
    for name, count in zip(cpu.exe.counter_names, cpu.counters):
        function, _, label = name.partition(".")
        rows.append(BlockCount(function, label, count))
    return rows


def format_block_counts(cpu: CPU, zero_blocks: bool = True) -> str:
    """The §2 tabular presentation of exact statement counts.

    Sorted by count, descending; blocks that never ran are listed (or
    suppressed with ``zero_blocks=False``) — the boolean "has this code
    executed at all" view used for exhaustive testing.
    """
    rows = sorted(block_counts(cpu), key=lambda r: (-r.count, r.name))
    lines = ["block execution counts:", f"{'count':>12}  block"]
    for row in rows:
        if row.count == 0 and not zero_blocks:
            continue
        lines.append(f"{row.count:12d}  {row.name}")
    never = [r.name for r in rows if r.count == 0]
    if zero_blocks and never:
        lines.append("")
        lines.append(f"{len(never)} block(s) never executed")
    return "\n".join(lines) + "\n"
