"""The multi-CPU machine: sharded kernel-style profiling under real
interleaving.

The retrospective's hardest scenario — profiling a live Berkeley kernel
"without taking the kernel down" — only gets interesting once several
CPUs are executing at once.  This module scales the simulation to N
CPUs the way the real kernels did:

* **Per-CPU shards.**  Each simulated CPU owns a :class:`CPUShard`: a
  histogram bucket array plus a bare arc buffer
  (:class:`~repro.machine.mcount.ArcBuffer`).  A profiling event —
  a PC sample at a clock tick, an arc traversal in the monitoring
  routine — is recorded into the shard of the CPU executing the
  process *at that moment*.  A shard is touched by exactly one CPU, so
  the hot path takes no cross-CPU lock (the
  :class:`GlobalLockMonitor` strawman quantifies what one would cost).

* **Deterministic virtual time.**  Every process keeps its own cycle
  clock, and everything charged to it is a function of process-local
  state only: instruction costs are static, and the monitoring
  routine's lookup cost is charged from the process's *private*
  :class:`~repro.machine.mcount.ArcTable` (its chains model the
  per-process mcount hash structure, which — like the kernel's
  ``froms``/``tos`` arrays — persists across kgmon resets).  The data
  recorded into the shard is merely ``(site, callee) += 1``.  Hence a
  process executes the identical instruction stream, with identical
  tick placement and identical arcs, on 1 CPU or 8, under any slice
  schedule — only the *partition* of its events across shards changes.

* **Merge = fleet algebra.**  :func:`reduce_shards` folds shard
  snapshots through the proven
  :class:`~repro.fleet.accumulator.ProfileAccumulator` and then
  canonicalizes the header fields a shard count would leak into
  (``runs``, ``comment``).  Because the union of events is
  schedule-independent and the accumulator is order-canonical, the
  merged ``gmon`` bytes are identical for any CPU count, seed, and
  scheduling policy — the property the determinism battery
  (``tests/test_smp_determinism.py``) turns into a gate.

* **Live extraction.**  :meth:`SMPMachine.extract` snapshots (and
  optionally clears) every shard between scheduling rounds without
  stopping the machine — the kgmon workflow under concurrency.
  Because resets clear shard *data* but never a process's private cost
  table, extracted-plus-residual shards merge to byte-for-byte the
  same profile an uninterrupted run produces
  (``tests/test_smp_chaos.py`` sweeps every boundary).

The wall clock models N CPUs advancing together: each scheduling round
dispatches at most one process per CPU, and the wall advances by the
*maximum* cycles any CPU consumed that round — stragglers make the
round longer for everyone, which is exactly the effect that inflates
the §3.2 rejected elapsed-time measurement as the machine grows
(``tests/test_smp_bias.py``).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.core.histogram import DEFAULT_PROFRATE, Histogram
from repro.core.profiledata import ProfileData
from repro.errors import MachineError
from repro.fleet.accumulator import ProfileAccumulator
from repro.machine.cpu import CPU, InterruptSource
from repro.machine.executable import Executable
from repro.machine.fastcpu import make_cpu
from repro.machine.mcount import ArcBuffer
from repro.machine.monitor import Monitor, MonitorConfig

#: Scheduling policies understood by :class:`SliceScheduler`.
POLICIES = ("rr", "random", "affinity", "skew")


# ------------------------------------------------------------------ shards


@dataclass
class CPUShard:
    """One CPU's private profiling buffers.

    Attributes:
        index: the owning CPU number.
        histogram: PC-sample buckets (same layout on every shard, so
            shards merge bucket-by-bucket).
        arcs: the per-CPU arc buffer.
        ticks: samples recorded into this shard since the last reset.
        extractions: how many times this shard has been snapshotted.
    """

    index: int
    histogram: Histogram
    arcs: ArcBuffer = field(default_factory=ArcBuffer)
    ticks: int = 0
    extractions: int = 0

    def snapshot(self, comment: str = "") -> ProfileData:
        """An independent copy of this shard's data as a ProfileData."""
        self.extractions += 1
        return ProfileData(
            self.histogram.copy(),
            self.arcs.arcs(),
            runs=1,
            comment=comment,
        )

    def reset(self) -> None:
        """Zero the histogram and drop the arc buffer, in place.

        In-place so that monitors already bound to this shard keep
        recording into it — the kgmon reset never stops the machine.
        """
        self.histogram.reset()
        self.arcs.reset()
        self.ticks = 0


def reduce_shards(
    parts: list[ProfileData], comment: str = "", runs: int = 1
) -> ProfileData:
    """Merge shard snapshots into one canonical profile.

    The summation is the :mod:`repro.fleet` accumulator algebra — the
    same code path that merges thousands of ``gmon`` files — so the
    result is condensed and arc-sorted.  ``runs`` and ``comment`` are
    then pinned explicitly: a shard count or per-shard label must never
    leak into the wire bytes, or profiles taken on different CPU counts
    could not be byte-identical.
    """
    acc = ProfileAccumulator()
    for part in parts:
        acc.add_profile(part)
    merged = acc.result()
    return ProfileData(
        merged.histogram, merged.arcs, runs=runs, comment=comment
    )


# ---------------------------------------------------------------- monitors


class ShardedMonitor(Monitor):
    """A per-process monitor that records into the executing CPU's shard.

    The inherited tick path writes into ``self.histogram``, which
    :meth:`bind` re-aims at the current shard on every dispatch.  The
    monitoring routine is split: ``self.arc_table`` (the inherited
    private table) is consulted only for the §3.1 lookup *cost* — and
    for the per-process probe statistics — while the traversal count
    itself goes to the shard's arc buffer.  The private table survives
    kgmon resets, like the kernel's statically allocated mcount arrays,
    which keeps process virtual time independent of the extraction
    schedule.
    """

    def __init__(self, config: MonitorConfig):
        super().__init__(config)
        self._shard: CPUShard | None = None

    def bind(self, shard: CPUShard) -> None:
        """Aim tick and arc recording at ``shard`` (dispatch time)."""
        self._shard = shard
        self.rebind_histogram(shard.histogram)

    @property
    def shard(self) -> CPUShard | None:
        """The currently bound shard (None before first dispatch)."""
        return self._shard

    def mcount(self, from_pc: int | None, self_pc: int) -> int:
        """Record an arc into the bound shard; charge process-local cost."""
        if not self.enabled:
            return 0
        cost = self.arc_table.record(from_pc, self_pc)
        self._shard.arcs.record(from_pc, self_pc)
        return cost

    def tick(self, pc: int) -> None:
        shard = self._shard
        if shard is not None and self.enabled:
            shard.ticks += 1
        super().tick(pc)

    def snapshot(self, comment: str = "") -> ProfileData:
        raise MachineError(
            "a sharded monitor has no per-process profile; extract the "
            "machine's shards (SMPMachine.extract / merged_profile)"
        )

    def reset(self) -> None:
        raise MachineError(
            "shards are reset through the machine (SMPMachine.extract "
            "with reset=True), not through a process monitor"
        )


class GlobalLockMonitor(ShardedMonitor):
    """The strawman: one shared shard, one lock, taken per event.

    Every tick and every monitoring-routine invocation acquires a real
    ``threading.Lock`` before touching the single machine-wide buffer —
    what a naive SMP port of the §3 data gathering would do.  The
    recorded *data* is identical to the sharded layout's merge (the
    byte-identity gate in ``benchmarks/bench_smp.py`` checks exactly
    that); only the cost differs, which is the point of the T-SMP
    benchmark's sharded-vs-global-lock comparison.
    """

    def __init__(self, config: MonitorConfig, lock: threading.Lock):
        super().__init__(config)
        self._lock = lock

    def mcount(self, from_pc: int | None, self_pc: int) -> int:
        with self._lock:
            return super().mcount(from_pc, self_pc)

    def tick(self, pc: int) -> None:
        with self._lock:
            super().tick(pc)


# --------------------------------------------------------------- scheduler


class SliceScheduler:
    """A deterministic seeded slice scheduler.

    Given the round number, the runnable process ids, and the CPU
    count, :meth:`plan` returns ``(pid, cpu, quantum)`` triples — at
    most one process per CPU per round.  All randomness comes from one
    seeded :class:`random.Random`, so a (policy, seed) pair replays the
    identical schedule forever; the determinism battery's claim is the
    stronger one that the merged profile does not depend on the
    schedule at all.

    Policies:

    * ``rr`` — rotate the runnable queue across CPUs, fixed quantum;
    * ``random`` — seeded random process choice and quantum jitter in
      ``[quantum // 2, 2 * quantum]``;
    * ``affinity`` — processes prefer their home CPU (``pid % ncpus``)
      and occasionally migrate (seeded), fixed quantum;
    * ``skew`` — round-robin placement, but each slice's quantum is
      drawn from ``[quantum // 4, 2 * quantum]`` — per-CPU skew, the
      straggler workload for the elapsed-time bias experiment.
    """

    #: Probability per round that the affinity policy migrates one
    #: process off its home CPU.
    MIGRATE_PROB = 0.15

    def __init__(self, policy: str = "rr", seed: int = 0, quantum: int = 500):
        if policy not in POLICIES:
            raise MachineError(
                f"unknown scheduling policy {policy!r} "
                f"(choose from {', '.join(POLICIES)})"
            )
        if quantum <= 0:
            raise MachineError(f"quantum must be positive, got {quantum}")
        self.policy = policy
        self.seed = seed
        self.quantum = quantum
        self._rng = random.Random(seed)

    def plan(
        self, round_index: int, runnable: list[int], ncpus: int
    ) -> list[tuple[int, int, int]]:
        """The (pid, cpu, quantum) dispatch list for one round."""
        if not runnable:
            return []
        k = min(ncpus, len(runnable))
        rng = self._rng
        q = self.quantum
        if self.policy == "rr":
            start = (round_index * ncpus) % len(runnable)
            return [
                (runnable[(start + j) % len(runnable)], j, q)
                for j in range(k)
            ]
        if self.policy == "random":
            chosen = rng.sample(runnable, k)
            return [
                (pid, j, rng.randint(max(1, q // 2), 2 * q))
                for j, pid in enumerate(chosen)
            ]
        if self.policy == "skew":
            start = (round_index * ncpus) % len(runnable)
            return [
                (
                    runnable[(start + j) % len(runnable)],
                    j,
                    rng.randint(max(1, q // 4), 2 * q),
                )
                for j in range(k)
            ]
        # affinity: fill home CPUs first, spill the rest, rarely migrate.
        assignment: dict[int, int] = {}
        spill: list[int] = []
        for pid in runnable:
            home = pid % ncpus
            if home not in assignment:
                assignment[home] = pid
            else:
                spill.append(pid)
        free = [c for c in range(ncpus) if c not in assignment]
        for pid in spill:
            if not free:
                break
            assignment[free.pop(0)] = pid
        if len(assignment) > 1 and rng.random() < self.MIGRATE_PROB:
            a, b = rng.sample(sorted(assignment), 2)
            assignment[a], assignment[b] = assignment[b], assignment[a]
        return [(pid, cpu, q) for cpu, pid in sorted(assignment.items())]


# ----------------------------------------------------------------- machine


@dataclass
class Process:
    """One schedulable execution context on the SMP machine.

    Attributes:
        pid: process id (index into the machine's process table).
        cpu: the interpreter holding this process's machine state.
        monitor: the per-process sharded monitor (None if unprofiled).
        wall_base: offset such that ``wall_base + cpu.cycles`` is this
            process's view of the wall clock during its current slice.
        last_cpu: CPU the process last ran on (for migration counting).
        slices: slices this process has been dispatched.
    """

    pid: int
    cpu: CPU
    monitor: ShardedMonitor | None
    wall_base: int = 0
    last_cpu: int | None = None
    slices: int = 0

    def wall_clock(self) -> int:
        """This process's view of the wall clock (for tracers)."""
        return self.wall_base + self.cpu.cycles


class SMPMachine:
    """N simulated CPUs executing M processes of one program image.

    Like a multiprocessor running one kernel text: every process shares
    the executable (and its predecode cache), but owns its full machine
    state — stack, frames, globals, output, cycle clock — and its own
    profiling virtual time.  Profiling data is gathered into per-CPU
    shards and merged through :func:`reduce_shards`.

    Arguments:
        exe: the (profiled, for monitoring) program image.
        ncpus: number of simulated CPUs.
        nprocs: number of process instances (defaults to ``ncpus``).
            The workload is defined by ``nprocs`` alone — running the
            same processes on a different CPU count yields the same
            merged profile, byte for byte.
        policy, seed, quantum: scheduler configuration.
        engine: interpreter engine per process (``fast``/``reference``).
        profile: attach sharded monitors (requires a profiled image).
        cycles_per_tick, scale, profrate: monitor geometry, as for
            :class:`~repro.machine.monitor.MonitorConfig`.
        interrupts: optional per-process interrupt sources.
        sharding: ``"percpu"`` (the real layout) or ``"global-lock"``
            (the strawman: every CPU funnels into shard 0 behind one
            lock).
    """

    def __init__(
        self,
        exe: Executable,
        ncpus: int = 2,
        nprocs: int | None = None,
        *,
        policy: str = "rr",
        seed: int = 0,
        quantum: int = 500,
        engine: str = "fast",
        profile: bool = True,
        cycles_per_tick: int = 100,
        scale: float = 1.0,
        profrate: int = DEFAULT_PROFRATE,
        interrupts: list[InterruptSource] | None = None,
        sharding: str = "percpu",
    ):
        if ncpus < 1:
            raise MachineError(f"need at least one CPU, got {ncpus}")
        nprocs = ncpus if nprocs is None else nprocs
        if nprocs < 1:
            raise MachineError(f"need at least one process, got {nprocs}")
        if sharding not in ("percpu", "global-lock"):
            raise MachineError(
                f"unknown sharding {sharding!r} "
                "(choose percpu or global-lock)"
            )
        if profile and not exe.profiled:
            raise MachineError(
                "image was assembled without profiling prologues; "
                "re-assemble with profile=True"
            )
        self.exe = exe
        self.ncpus = ncpus
        self.sharding = sharding
        self.scheduler = SliceScheduler(policy, seed, quantum)
        self.shards = [
            CPUShard(
                i, Histogram.for_range(exe.low_pc, exe.high_pc, scale, profrate)
            )
            for i in range(ncpus if sharding == "percpu" else 1)
        ]
        lock = threading.Lock() if sharding == "global-lock" else None
        self.procs: list[Process] = []
        for pid in range(nprocs):
            monitor = None
            if profile:
                config = MonitorConfig(
                    exe.low_pc,
                    exe.high_pc,
                    scale=scale,
                    cycles_per_tick=cycles_per_tick,
                    profrate=profrate,
                )
                if lock is not None:
                    monitor = GlobalLockMonitor(config, lock)
                else:
                    monitor = ShardedMonitor(config)
            irqs = list(interrupts) if interrupts else None
            self.procs.append(
                Process(pid, make_cpu(exe, monitor, irqs, engine=engine), monitor)
            )
        self.wall_cycles = 0
        self.rounds = 0
        self.context_switches = 0
        self.migrations = 0

    # -- scheduling ---------------------------------------------------------

    def runnable(self) -> list[Process]:
        """Processes that have not halted."""
        return [p for p in self.procs if not p.cpu.halted]

    @property
    def halted(self) -> bool:
        """True once every process has run to completion."""
        return all(p.cpu.halted for p in self.procs)

    def step_round(self) -> bool:
        """Execute one scheduling round; False when nothing is runnable.

        Each CPU runs its assigned process for the planned quantum;
        conceptually the slices are simultaneous, so the wall clock
        advances by the *largest* per-CPU consumption of the round.
        """
        runnable = self.runnable()
        if not runnable:
            return False
        plan = self.scheduler.plan(
            self.rounds, [p.pid for p in runnable], self.ncpus
        )
        longest = 0
        for pid, cpu_index, quantum in plan:
            proc = self.procs[pid]
            if proc.cpu.halted:
                continue
            shard = self.shards[cpu_index if self.sharding == "percpu" else 0]
            if proc.monitor is not None:
                proc.monitor.bind(shard)
            proc.wall_base = self.wall_cycles - proc.cpu.cycles
            before = proc.cpu.cycles
            proc.cpu.run(max_cycles=before + quantum)
            used = proc.cpu.cycles - before
            if used > longest:
                longest = used
            if proc.last_cpu is not None and proc.last_cpu != cpu_index:
                self.migrations += 1
            proc.last_cpu = cpu_index
            proc.slices += 1
            self.context_switches += 1
        self.wall_cycles += longest
        self.rounds += 1
        return True

    def run_rounds(self, rounds: int) -> bool:
        """Run up to ``rounds`` scheduling rounds; True while alive."""
        for _ in range(rounds):
            if not self.step_round():
                return False
        return not self.halted

    def run(
        self,
        max_rounds: int | None = None,
        max_wall_cycles: int | None = None,
    ) -> "SMPMachine":
        """Run every process to completion (or a budget); returns self."""
        while not self.halted:
            if max_rounds is not None and self.rounds >= max_rounds:
                break
            if (
                max_wall_cycles is not None
                and self.wall_cycles >= max_wall_cycles
            ):
                break
            self.step_round()
        return self

    # -- profiling control (the kgmon surface) ------------------------------

    def moncontrol(self, enabled: bool) -> None:
        """Turn profiling on or off on every CPU, without stopping."""
        for proc in self.procs:
            if proc.monitor is not None:
                proc.monitor.moncontrol(enabled)

    def extract(
        self, comment: str = "", reset: bool = False
    ) -> list[ProfileData]:
        """Snapshot every shard; optionally clear them (kgmon extract).

        Safe at any scheduling-round boundary while the machine keeps
        running: resets clear shard data in place, and process cost
        tables are untouched, so extracted-plus-residual data always
        merges to the uninterrupted run's bytes.
        """
        parts = [shard.snapshot(comment) for shard in self.shards]
        if reset:
            for shard in self.shards:
                shard.reset()
        return parts

    def merged_profile(self, comment: str = "") -> ProfileData:
        """The shards reduced to one canonical profile.

        ``runs`` is the process count — the number of executions summed
        — never the shard count, so the bytes cannot depend on how many
        CPUs the workload happened to be spread across.
        """
        return reduce_shards(
            self.extract(), comment=comment, runs=len(self.procs)
        )

    # -- observability -------------------------------------------------------

    def total_ticks(self) -> int:
        """PC samples currently held across all shards."""
        return sum(shard.histogram.total_ticks for shard in self.shards)

    def total_calls(self) -> int:
        """Arc traversals currently held across all shards."""
        return sum(shard.arcs.total_calls for shard in self.shards)
