"""Executable images: the VM's equivalent of an ``a.out`` file.

An :class:`Executable` bundles a text segment (the instruction list),
the function symbol table, and a little metadata — everything gprof's
post-processor needs from the program besides the profile data itself:
symbol names for addresses, and instructions to crawl for static arcs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.symbols import Symbol, SymbolTable
from repro.errors import MachineError
from repro.machine.isa import INSTRUCTION_SIZE, Instruction, Op


@dataclass(frozen=True)
class Function:
    """One routine of the executable.

    Attributes:
        name: the routine's symbol name.
        entry: entry address.
        end: one past the routine's last instruction.
        profiled: whether the assembler planted a monitoring prologue.
    """

    name: str
    entry: int
    end: int
    profiled: bool = False


@dataclass
class Executable:
    """A loaded program image.

    Attributes:
        name: program name (provenance only).
        instructions: the text segment; instruction ``i`` occupies
            addresses ``[i*INSTRUCTION_SIZE, (i+1)*INSTRUCTION_SIZE)``.
        functions: routine records, in address order.
        num_globals: size of the global variable segment.
        entry_point: address where execution starts (the first
            instruction of ``main`` if present, else address 0).
        counter_names: names of the inline block counters planted by a
            ``count_blocks`` assembly (``function.label`` or
            ``function.entry``); empty for ordinary builds.
    """

    name: str
    instructions: list[Instruction]
    functions: list[Function]
    num_globals: int = 0
    entry_point: int = 0
    counter_names: list[str] = field(default_factory=list)

    @property
    def low_pc(self) -> int:
        """First text address."""
        return 0

    @property
    def high_pc(self) -> int:
        """One past the last text address."""
        return len(self.instructions) * INSTRUCTION_SIZE

    def fetch(self, pc: int) -> Instruction:
        """The instruction at address ``pc``."""
        if pc % INSTRUCTION_SIZE:
            raise MachineError(f"misaligned pc {pc:#x}")
        idx = pc // INSTRUCTION_SIZE
        if not 0 <= idx < len(self.instructions):
            raise MachineError(f"pc {pc:#x} outside text segment")
        return self.instructions[idx]

    def predecoded(self):
        """The fast interpreter's lowering of this image, built lazily
        and cached (see :func:`repro.machine.fastcpu.predecode`)."""
        from repro.machine.fastcpu import predecode

        return predecode(self)

    def symbol_table(self) -> SymbolTable:
        """The executable's symbol table, for post-processing."""
        return SymbolTable(
            Symbol(f.entry, f.name, f.end, module=self.name)
            for f in self.functions
        )

    def function_at(self, pc: int) -> Function | None:
        """The function whose body contains ``pc``."""
        for f in self.functions:
            if f.entry <= pc < f.end:
                return f
        return None

    def function_named(self, name: str) -> Function:
        """The function called ``name``."""
        for f in self.functions:
            if f.name == name:
                return f
        raise MachineError(f"no function named {name!r} in {self.name}")

    @property
    def profiled(self) -> bool:
        """Whether any routine carries a monitoring prologue."""
        return any(f.profiled for f in self.functions)

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable image (our on-disk executable format)."""
        return {
            "format": "repro-vmexe-1",
            "name": self.name,
            "num_globals": self.num_globals,
            "entry_point": self.entry_point,
            "functions": [
                {
                    "name": f.name,
                    "entry": f.entry,
                    "end": f.end,
                    "profiled": f.profiled,
                }
                for f in self.functions
            ],
            "text": [
                [ins.op.value, ins.operand] for ins in self.instructions
            ],
            "counter_names": list(self.counter_names),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Executable":
        """Inverse of :meth:`to_dict`."""
        if data.get("format") != "repro-vmexe-1":
            raise MachineError(f"unknown executable format {data.get('format')!r}")
        return cls(
            name=data["name"],
            instructions=[
                Instruction(Op(opname), operand) for opname, operand in data["text"]
            ],
            functions=[
                Function(f["name"], f["entry"], f["end"], f["profiled"])
                for f in data["functions"]
            ],
            num_globals=data["num_globals"],
            entry_point=data["entry_point"],
            counter_names=list(data.get("counter_names", ())),
        )

    def save(self, path) -> None:
        """Write the image to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f)

    @classmethod
    def load(cls, path) -> "Executable":
        """Read an image written by :meth:`save`."""
        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))

    def disassemble(self) -> str:
        """A readable text-segment dump, for debugging and docs."""
        by_entry = {f.entry: f for f in self.functions}
        lines = []
        for i, ins in enumerate(self.instructions):
            addr = i * INSTRUCTION_SIZE
            fn = by_entry.get(addr)
            if fn is not None:
                lines.append(f"{fn.name}:")
            lines.append(f"  {addr:#06x}  {ins}")
        return "\n".join(lines) + "\n"
