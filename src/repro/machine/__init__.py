"""The VM substrate: programs with real program counters to profile.

High-level helpers:

* :func:`run_profiled` — assemble with monitoring prologues, execute
  with a sampling monitor attached, return (cpu, profile data).
* :func:`run_unprofiled` — the control: same program, no profiling.
"""

from __future__ import annotations

from repro.core.profiledata import ProfileData
from repro.machine.assembler import assemble
from repro.machine.blockcounts import BlockCount, block_counts, format_block_counts
from repro.machine.cpu import CPU, Frame, InterruptSource
from repro.machine.crawl import static_arcs, static_call_graph
from repro.machine.executable import Executable, Function
from repro.machine.fastcpu import ENGINES, FastCPU, make_cpu, predecode
from repro.machine.isa import INSTRUCTION_SIZE, Instruction, Op
from repro.machine.mcount import ArcBuffer, ArcTable, ArcTableStats
from repro.machine.monitor import Monitor, MonitorConfig
from repro.machine.smp import (
    CPUShard,
    GlobalLockMonitor,
    SMPMachine,
    ShardedMonitor,
    SliceScheduler,
    reduce_shards,
)

__all__ = [
    "ArcBuffer",
    "ArcTable",
    "ArcTableStats",
    "BlockCount",
    "CPU",
    "CPUShard",
    "ENGINES",
    "FastCPU",
    "GlobalLockMonitor",
    "SMPMachine",
    "ShardedMonitor",
    "SliceScheduler",
    "reduce_shards",
    "block_counts",
    "format_block_counts",
    "Executable",
    "Frame",
    "Function",
    "INSTRUCTION_SIZE",
    "Instruction",
    "InterruptSource",
    "Monitor",
    "MonitorConfig",
    "Op",
    "assemble",
    "make_cpu",
    "predecode",
    "run_profiled",
    "run_unprofiled",
    "static_arcs",
    "static_call_graph",
]


def run_profiled(
    source: str,
    name: str = "a.out",
    cycles_per_tick: int = 100,
    scale: float = 1.0,
    profrate: int = 60,
    max_instructions: int | None = None,
    engine: str = "fast",
) -> tuple[CPU, ProfileData]:
    """Assemble ``source`` with profiling, run it, condense the data.

    The one-call equivalent of "compile with the profiling option, run,
    and pick up gmon.out".  Returns the finished CPU (for cycle counts
    and program output) and the condensed :class:`ProfileData`.
    ``engine`` selects the interpreter: the predecoded fast engine (the
    default) or the ``"reference"`` baseline — both produce identical
    profiles.
    """
    exe = assemble(source, name=name, profile=True)
    monitor = Monitor(
        MonitorConfig(
            exe.low_pc,
            exe.high_pc,
            scale=scale,
            cycles_per_tick=cycles_per_tick,
            profrate=profrate,
        )
    )
    cpu = make_cpu(exe, monitor, engine=engine)
    cpu.run(max_instructions=max_instructions)
    return cpu, monitor.mcleanup(comment=name)


def run_unprofiled(
    source: str,
    name: str = "a.out",
    max_instructions: int | None = None,
    engine: str = "fast",
) -> CPU:
    """Assemble ``source`` without profiling and run it (the control
    case for overhead measurements)."""
    exe = assemble(source, name=name, profile=False)
    cpu = make_cpu(exe, engine=engine)
    cpu.run(max_instructions=max_instructions)
    return cpu
