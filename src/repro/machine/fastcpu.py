"""The fast interpreter: predecode + threaded dispatch + batched clocks.

:class:`~repro.machine.cpu.CPU` is the *reference* engine: a readable
``if``/``elif`` chain that re-decodes every instruction, re-checks the
tick boundary, and re-enters Python attribute lookups on every cycle.
The paper's own thesis — "the greatest volume of data is the execution
counts ... the routines to gather it must be fast" (§3) — applies to
the simulated hardware too: every benchmark, canned program, and fleet
corpus generator in this reproduction is bottlenecked by that loop.

:class:`FastCPU` keeps the reference engine's API and *observable
behaviour* (same cycle clock, same histogram buckets, same arc counts,
byte-identical ``gmon.out``; the differential suite in
``tests/test_fastcpu_equivalence.py`` enforces this over the whole
canned corpus plus hypothesis-generated programs) while restructuring
the execution core around three ideas:

**Predecode.**  :func:`predecode` lowers an
:class:`~repro.machine.executable.Executable` once into parallel arrays
— integer opcode index, operand, static cycle cost — cached on the
executable, so the hot loop never touches :class:`Instruction` objects,
enum identity chains, or the ``COSTS`` dict.  Static jump/call targets
are resolved to instruction *indices* at predecode time; instructions
the fast path cannot prove safe (misaligned targets, missing or
negative operands) are lowered to a DEFER opcode that routes through
the reference ``step()``, so degenerate programs keep reference
semantics — including error messages — exactly.

**Threaded dispatch.**  Execution goes through a table of per-opcode
bound handlers (a closure array indexed by the predecoded opcode)
instead of the 30-branch chain.  Each handler receives the predecoded
operand and the instruction index and returns the next index; machine
state lives in closure cells bound once per CPU, not in attribute
lookups repeated per instruction.

**Event horizons (batched clocks).**  The per-instruction clock work is
hoisted out of the dispatch loop: the run loop computes the next event
cycle once — the next profiling tick, the next interrupt delivery, the
``max_cycles`` budget — and burns straight-line instructions against a
local cycle counter until an instruction would cross it.  The crossing
instruction (and anything predecode deferred) is executed by the
reference ``step()``, which fires the tick at the correct PC, delivers
checkpoints, and walks stacks, so sampling semantics are inherited
rather than re-implemented.  At the default 100 cycles per tick, the
careful path runs roughly once per sixty dispatches.

``MCOUNT`` — the monitoring routine, executed on every profiled call —
gets an inlined fast path for §3.1's "usually one" case: when the call
site's secondary chain exists and its head record is this callee, the
arc count is a direct head bump (one dict probe, no scan, no
allocation).  The head entry of a chain never moves (records are
appended, never reordered), so consulting the live table keeps this
memo coherent across ``kgmon``-style mid-run resets.  Multi-callee
sites, first calls, and spontaneous invocations fall through to
:meth:`ArcTable.record`.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.cpu import CPU, Frame, _trunc_div
from repro.machine.executable import Executable
from repro.machine.isa import (
    COSTS,
    INSTRUCTION_SIZE,
    OPERAND_OPS,
    Op,
)
from repro.machine.mcount import (
    MCOUNT_BASE_COST,
    MCOUNT_PROBE_COST,
    ArcTable,
)
from repro.machine.monitor import Monitor

#: Opcode numbering for the dispatch table: plain ops first, then the
#: "event" ops the run loop handles out of line.  The order within each
#: group is arbitrary but frozen — predecoded arrays embed it.
_PLAIN_OPS: tuple[Op, ...] = (
    Op.PUSH, Op.POP, Op.DUP, Op.SWAP,
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.NEG,
    Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE,
    Op.LOAD, Op.STORE, Op.GLOAD, Op.GSTORE, Op.GLOADI, Op.GSTOREI,
    Op.JMP, Op.JZ, Op.JNZ, Op.CALL, Op.CALLI, Op.RET,
    Op.HALT, Op.NOP, Op.OUT, Op.COUNT,
)

#: First opcode index the dispatch loop must special-case.
EVENT_MIN = len(_PLAIN_OPS)

#: Event opcodes: dynamic cycle costs (WORK, MCOUNT), no fast-path
#: lowering (DEFER -> reference step), or the sentinel planted one past
#: the text segment (OFFEND -> the reference fetch fault for execution
#: that falls off the end).
OP_WORK = EVENT_MIN
OP_MCOUNT = EVENT_MIN + 1
OP_DEFER = EVENT_MIN + 2
OP_OFFEND = EVENT_MIN + 3

OPCODE_INDEX: dict[Op, int] = {op: i for i, op in enumerate(_PLAIN_OPS)}
OPCODE_INDEX[Op.WORK] = OP_WORK
OPCODE_INDEX[Op.MCOUNT] = OP_MCOUNT

#: Opcodes whose operand is a static code address the predecoder
#: resolves to an instruction index (invalid targets lower to DEFER).
_JUMP_OPS = frozenset({Op.JMP, Op.JZ, Op.JNZ, Op.CALL})

#: Opcodes whose operand indexes a local slot: the fast handlers grow
#: the frame's locals list in place, which is only safe for
#: non-negative integer slots (negative ones must raise the reference
#: "negative local slot" error, not wrap around Python-style).
_LOCAL_OPS = frozenset({Op.LOAD, Op.STORE})

#: A cycle count no program reaches: the "no event pending" horizon.
_NO_EVENT = 1 << 62


class _HaltLoop(Exception):
    """Internal: the dispatched instruction halted the machine."""


class _Resync(Exception):
    """Internal: RET un-nested an interrupt; resume at ``addr`` after
    re-arming delivery (the event horizon must be recomputed)."""

    def __init__(self, addr: int):
        self.addr = addr


class Predecoded:
    """One executable lowered to parallel arrays (cached on the image).

    Attributes:
        ops: per-instruction integer opcode (``OPCODE_INDEX`` order),
            plus the OFFEND sentinel at index ``length``.
        args: per-instruction operand; jump/call targets are pre-divided
            to instruction indices, other operands are verbatim.
        costs: per-instruction static cycle cost (WORK's operand and
            MCOUNT's monitoring cost are charged by the run loop).
        length: number of real instructions (sentinel excluded).
        source: the instruction list this was decoded from, for cache
            validation by identity.
    """

    __slots__ = ("ops", "args", "costs", "length", "source")

    def __init__(self, exe: Executable):
        n = len(exe.instructions)
        ops = [0] * (n + 1)
        args: list = [None] * (n + 1)
        costs = [0] * (n + 1)
        for i, ins in enumerate(exe.instructions):
            op = ins.op
            operand = ins.operand
            code = OPCODE_INDEX.get(op)
            if code is None:  # pragma: no cover - exhaustive enum
                code = OP_DEFER
            elif op in _JUMP_OPS:
                # Resolve static control-transfer targets to indices.
                # Targets the reference engine would fault on (or
                # TypeError on) defer, preserving message and timing.
                if (
                    not isinstance(operand, int)
                    or operand % INSTRUCTION_SIZE
                    or not 0 <= operand < n * INSTRUCTION_SIZE
                ):
                    code = OP_DEFER
                else:
                    operand = operand // INSTRUCTION_SIZE
            elif op in _LOCAL_OPS or op is Op.WORK:
                if not isinstance(operand, int) or operand < 0:
                    code = OP_DEFER
            elif (
                operand is None
                and op in OPERAND_OPS
                and op is not Op.PUSH
            ):
                # GLOAD/GSTORE/COUNT with a missing operand: the
                # reference engine raises TypeError when (and only
                # when) the instruction executes.
                code = OP_DEFER
            ops[i] = code
            args[i] = operand
            costs[i] = COSTS[op]
        ops[n] = OP_OFFEND
        self.ops = ops
        self.args = args
        self.costs = costs
        self.length = n
        self.source = exe.instructions


def predecode(exe: Executable) -> Predecoded:
    """Lower ``exe`` once; the result is cached on the executable.

    The cache is validated by identity of the instruction list, so
    rebinding ``exe.instructions`` invalidates it.  (In-place item
    assignment does not — executables are treated as immutable after
    assembly, as everywhere else in the code base.)
    """
    cached = getattr(exe, "_predecoded", None)
    if cached is not None and cached.source is exe.instructions:
        return cached
    pre = Predecoded(exe)
    exe._predecoded = pre
    return pre


class FastCPU(CPU):
    """Drop-in replacement for :class:`CPU` with the fast run loop.

    Construction, attributes, ``step()`` (single-instruction execution,
    used by debuggers and tests), ``charge_overhead``, and
    ``stack_functions`` are all inherited — only ``run()`` is
    rewritten.  A CPU with a ``tracer`` installed falls back to
    reference stepping so ``on_call``/``on_return`` observe
    reference-exact intermediate state.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._handlers = self._build_handlers()

    # -- the dispatch table -------------------------------------------------------

    def _build_handlers(self) -> list:
        """Bind one closure per plain opcode.

        Handlers take ``(operand, index)`` and return the next
        instruction index.  They mutate the same stack/frame/global
        objects the reference engine uses and raise the same
        :class:`MachineError` messages.  The reference helpers embed
        ``self.pc`` *after* the fall-through advance for stack and
        local-slot faults — hence ``(i + 1)`` in those formats — but
        the pre-advance pc for arithmetic and global-slot faults.
        Handlers never touch the clock; the run loop owns cycle
        accounting.
        """
        isize = INSTRUCTION_SIZE
        stack = self.stack
        push = stack.append
        pop = stack.pop
        frames = self.frames
        frames_append = frames.append
        globals_ = self.globals
        counters = self.counters
        out_append = self.output.append
        max_stack = self.MAX_STACK
        max_frames = self.MAX_FRAMES
        n_instr = len(self.exe.instructions)
        cpu = self

        def underflow(i: int) -> MachineError:
            return MachineError(
                f"operand stack underflow at pc {(i + 1) * isize:#x}"
            )

        def overflow(i: int) -> MachineError:
            return MachineError(
                f"operand stack overflow at pc {(i + 1) * isize:#x}"
            )

        def h_push(a, i):
            if len(stack) >= max_stack:
                raise overflow(i)
            push(a)
            return i + 1

        def h_pop(a, i):
            try:
                pop()
            except IndexError:
                raise underflow(i) from None
            return i + 1

        def h_dup(a, i):
            try:
                v = pop()
            except IndexError:
                raise underflow(i) from None
            push(v)
            if len(stack) >= max_stack:
                raise overflow(i)
            push(v)
            return i + 1

        def h_swap(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            push(b)
            push(a2)
            return i + 1

        def h_add(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            push(a2 + b)
            return i + 1

        def h_sub(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            push(a2 - b)
            return i + 1

        def h_mul(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            push(a2 * b)
            return i + 1

        def h_div(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            if b == 0:
                raise MachineError(f"division by zero at pc {i * isize:#x}")
            push(_trunc_div(a2, b))
            return i + 1

        def h_mod(a, i):
            try:
                b, a2 = pop(), pop()
            except IndexError:
                raise underflow(i) from None
            if b == 0:
                raise MachineError(f"modulo by zero at pc {i * isize:#x}")
            push(a2 - _trunc_div(a2, b) * b)
            return i + 1

        def h_neg(a, i):
            try:
                push(-pop())
            except IndexError:
                raise underflow(i) from None
            return i + 1

        def _cmp(operator):
            def h(a, i):
                try:
                    b, a2 = pop(), pop()
                except IndexError:
                    raise underflow(i) from None
                push(1 if operator(a2, b) else 0)
                return i + 1

            return h

        def h_load(a, i):
            loc = frames[-1].locals
            if len(loc) <= a:
                loc.extend([0] * (a + 1 - len(loc)))
            if len(stack) >= max_stack:
                raise overflow(i)
            push(loc[a])
            return i + 1

        def h_store(a, i):
            try:
                v = pop()
            except IndexError:
                raise underflow(i) from None
            loc = frames[-1].locals
            if len(loc) <= a:
                loc.extend([0] * (a + 1 - len(loc)))
            loc[a] = v
            return i + 1

        def h_gload(a, i):
            if not 0 <= a < len(globals_):
                raise MachineError(
                    f"global slot {a} out of range at pc {i * isize:#x}"
                )
            if len(stack) >= max_stack:
                raise overflow(i)
            push(globals_[a])
            return i + 1

        def h_gstore(a, i):
            try:
                v = pop()
            except IndexError:
                raise underflow(i) from None
            if not 0 <= a < len(globals_):
                raise MachineError(
                    f"global slot {a} out of range at pc {i * isize:#x}"
                )
            globals_[a] = v
            return i + 1

        def h_gloadi(a, i):
            try:
                slot = pop()
            except IndexError:
                raise underflow(i) from None
            if not 0 <= slot < len(globals_):
                raise MachineError(
                    f"global slot {slot} out of range at pc {i * isize:#x}"
                )
            push(globals_[slot])
            return i + 1

        def h_gstorei(a, i):
            try:
                slot = pop()
                v = pop()
            except IndexError:
                raise underflow(i) from None
            if not 0 <= slot < len(globals_):
                raise MachineError(
                    f"global slot {slot} out of range at pc {i * isize:#x}"
                )
            globals_[slot] = v
            return i + 1

        def h_jmp(t, i):
            return t

        def h_jz(t, i):
            try:
                v = pop()
            except IndexError:
                raise underflow(i) from None
            return t if v == 0 else i + 1

        def h_jnz(t, i):
            try:
                v = pop()
            except IndexError:
                raise underflow(i) from None
            return i + 1 if v == 0 else t

        def h_call(t, i):
            if len(frames) >= max_frames:
                raise MachineError(
                    f"call stack overflow ({max_frames} frames) calling "
                    f"{t * isize:#x} from {i * isize:#x}"
                )
            frames_append(Frame(return_addr=(i + 1) * isize))
            return t

        def h_calli(a, i):
            try:
                target = pop()
            except IndexError:
                raise underflow(i) from None
            if len(frames) >= max_frames:
                raise MachineError(
                    f"call stack overflow ({max_frames} frames) calling "
                    f"{target:#x} from {i * isize:#x}"
                )
            q, rem = divmod(target, isize)
            if rem or not 0 <= q < n_instr:
                raise MachineError(f"call to bad address {target:#x}")
            frames_append(Frame(return_addr=(i + 1) * isize))
            return q

        def h_ret(a, i):
            frame = frames.pop()
            if frame.interrupted:
                cpu._irq_active = False
                raise _Resync(frame.return_addr)
            ra = frame.return_addr
            if ra is None:
                raise _HaltLoop
            return ra // isize

        def h_halt(a, i):
            raise _HaltLoop

        def h_nop(a, i):
            return i + 1

        def h_out(a, i):
            try:
                out_append(pop())
            except IndexError:
                raise underflow(i) from None
            return i + 1

        def h_count(a, i):
            counters[a] += 1
            return i + 1

        table = {
            Op.PUSH: h_push, Op.POP: h_pop, Op.DUP: h_dup, Op.SWAP: h_swap,
            Op.ADD: h_add, Op.SUB: h_sub, Op.MUL: h_mul,
            Op.DIV: h_div, Op.MOD: h_mod, Op.NEG: h_neg,
            Op.EQ: _cmp(lambda a, b: a == b),
            Op.NE: _cmp(lambda a, b: a != b),
            Op.LT: _cmp(lambda a, b: a < b),
            Op.LE: _cmp(lambda a, b: a <= b),
            Op.GT: _cmp(lambda a, b: a > b),
            Op.GE: _cmp(lambda a, b: a >= b),
            Op.LOAD: h_load, Op.STORE: h_store,
            Op.GLOAD: h_gload, Op.GSTORE: h_gstore,
            Op.GLOADI: h_gloadi, Op.GSTOREI: h_gstorei,
            Op.JMP: h_jmp, Op.JZ: h_jz, Op.JNZ: h_jnz,
            Op.CALL: h_call, Op.CALLI: h_calli, Op.RET: h_ret,
            Op.HALT: h_halt, Op.NOP: h_nop, Op.OUT: h_out,
            Op.COUNT: h_count,
        }
        return [table[op] for op in _PLAIN_OPS]

    # -- the run loop -------------------------------------------------------------

    def run(
        self,
        max_instructions: int | None = None,
        max_cycles: int | None = None,
    ) -> "FastCPU":
        """Run until HALT or a budget is exhausted; returns self.

        Observably identical to :meth:`CPU.run` — the differential
        suite pins clocks, histograms, arc tables, stats, and error
        messages — but instructions between events dispatch through the
        predecoded handler table with the clock batched against the
        next event horizon.
        """
        if self.tracer is not None:
            # Tracers observe per-instruction state; give them the
            # reference engine verbatim.
            return CPU.run(self, max_instructions, max_cycles)

        exe = self.exe
        pre = predecode(exe)
        ops = pre.ops
        args = pre.args
        costs = pre.costs
        n_instr = pre.length
        handlers = self._handlers
        isize = INSTRUCTION_SIZE
        monitor = self.monitor
        ticking = monitor is not None and self._tick_interval > 0
        has_irqs = bool(self._interrupts)
        frames = self.frames

        # MCOUNT inlining is only sound against the stock table (the
        # callee-keyed ablation lacks the site-keyed chain layout) and
        # the stock monitoring routine (a subclass override must see
        # every invocation); anything else routes through step().
        arc_table = monitor.arc_table if monitor is not None else None
        inline_mcount = (
            type(arc_table) is ArcTable
            and type(monitor).mcount is Monitor.mcount
        )
        stats = arc_table.stats if arc_table is not None else None
        get_chain = arc_table._table.get if arc_table is not None else None

        # Local mirrors of the mutable machine registers.  ``trap``
        # holds a pc the reference engine would fault fetching; the
        # fault is raised at the point the reference engine would
        # reach it (after budget checks and interrupt delivery).
        cycles = self.cycles
        n = self.instructions_executed
        stop_n = n + max_instructions if max_instructions is not None else -1
        idx, rem = divmod(self.pc, isize)
        trap = None
        if rem or idx < 0 or idx > n_instr:
            trap = self.pc
            idx = 0
        ref_state = False  # True while self.* is authoritative
        c = cycles  # last attempted charge, for the halt paths

        def careful(idx: int, cycles: int, n: int):
            """Execute one instruction via the reference ``step()``.

            Used for the instruction that crosses an event horizon
            (so ticks fire at the right pc, checkpoints flush, stack
            walks charge their overhead) and for everything predecode
            lowered to DEFER.  Returns re-derived
            ``(idx, cycles, n, trap)``.
            """
            nonlocal ref_state
            self.pc = idx * isize
            self.cycles = cycles
            self.instructions_executed = n
            ref_state = True
            CPU.step(self)
            ref_state = False
            q, r = divmod(self.pc, isize)
            if r or q < 0 or q > n_instr:
                return 0, self.cycles, self.instructions_executed, self.pc
            return q, self.cycles, self.instructions_executed, None

        try:
            while not self.halted:
                # Budgets, then delivery, then the deferred fetch
                # fault: the reference run()/step() ordering.
                if n == stop_n:
                    break
                if max_cycles is not None and cycles >= max_cycles:
                    break
                if has_irqs and not self._irq_active:
                    self.pc = trap if trap is not None else idx * isize
                    self.cycles = cycles
                    self._maybe_deliver_interrupt()
                    if self._irq_active:
                        idx = self.pc // isize
                        trap = None
                if trap is not None:
                    self.pc = trap
                    self.cycles = cycles
                    self.instructions_executed = n
                    ref_state = True
                    exe.fetch(trap)  # raises the reference fetch fault
                    raise AssertionError(  # pragma: no cover
                        f"fetch accepted trap pc {trap:#x}"
                    )

                # The event horizon: the next cycle at which anything
                # other than plain dispatch must happen.
                next_event = _NO_EVENT
                if ticking:
                    next_event = self._next_tick
                if has_irqs and not self._irq_active:
                    due = min(self._next_irq)
                    if due < next_event:
                        next_event = due
                if max_cycles is not None and max_cycles < next_event:
                    next_event = max_cycles

                try:
                    while n != stop_n:
                        op = ops[idx]
                        c = cycles + costs[idx]
                        if c >= next_event or op >= EVENT_MIN:
                            if op < EVENT_MIN or op == OP_DEFER:
                                idx, cycles, n, trap = careful(
                                    idx, cycles, n
                                )
                                break
                            if op == OP_MCOUNT:
                                if monitor is None or not monitor.enabled:
                                    # Zero cost: cannot cross an event.
                                    n += 1
                                    idx += 1
                                    continue
                                if not inline_mcount:
                                    idx, cycles, n, trap = careful(
                                        idx, cycles, n
                                    )
                                    break
                                self_pc = idx * isize
                                frame = frames[-1]
                                ra = frame.return_addr
                                if ra is None or frame.interrupted:
                                    from_pc = None
                                    chain = get_chain(0)
                                else:
                                    from_pc = ra - isize
                                    chain = get_chain(from_pc)
                                    if (
                                        chain is not None
                                        and chain[0][0] == self_pc
                                    ):
                                        # §3.1's "usually one": head
                                        # bump, no scan, no allocation.
                                        mc = (
                                            MCOUNT_BASE_COST
                                            + MCOUNT_PROBE_COST
                                        )
                                        if cycles + mc >= next_event:
                                            idx, cycles, n, trap = (
                                                careful(idx, cycles, n)
                                            )
                                            break
                                        chain[0][1] += 1
                                        stats.lookups += 1
                                        stats.probes += 1
                                        cycles += mc
                                        n += 1
                                        idx += 1
                                        continue
                                # First call from this site, secondary
                                # collision, or spontaneous: peek the
                                # probe count record() will report, to
                                # price the crossing check, then commit
                                # through the real monitoring routine.
                                probes = 1
                                if chain:
                                    probes = len(chain) + 1
                                    for j, entry in enumerate(chain):
                                        if entry[0] == self_pc:
                                            probes = j + 1
                                            break
                                mc = (
                                    MCOUNT_BASE_COST
                                    + MCOUNT_PROBE_COST * probes
                                )
                                if cycles + mc >= next_event:
                                    idx, cycles, n, trap = careful(
                                        idx, cycles, n
                                    )
                                    break
                                n += 1
                                monitor.mcount(from_pc, self_pc)
                                cycles += mc
                                idx += 1
                                continue
                            if op == OP_WORK:
                                c += args[idx]
                                if c >= next_event:
                                    idx, cycles, n, trap = careful(
                                        idx, cycles, n
                                    )
                                    break
                                cycles = c
                                n += 1
                                idx += 1
                                continue
                            # OP_OFFEND: execution fell off the end of
                            # the text segment.  Budgets were already
                            # checked and no interrupt can be due here
                            # (cycles < next_event), so the reference
                            # engine would fault fetching right now.
                            self.pc = idx * isize
                            self.cycles = cycles
                            self.instructions_executed = n
                            ref_state = True
                            exe.fetch(self.pc)  # raises
                            raise AssertionError(  # pragma: no cover
                                f"fetch accepted pc {self.pc:#x}"
                            )
                        n += 1
                        idx = handlers[op](args[idx], idx)
                        cycles = c
                except _HaltLoop:
                    # HALT (or RET from the entry frame) leaves the pc
                    # advanced past the halting instruction, charged.
                    cycles = c
                    idx += 1
                    self.halted = True
                    break
                except _Resync as resync:
                    cycles = c
                    q, r = divmod(resync.addr, isize)
                    if r or q < 0 or q > n_instr:
                        trap = resync.addr
                        idx = 0
                    else:
                        idx = q
                        trap = None
                # Fall through: careful() executed the crossing
                # instruction, the instruction budget ran out, or an
                # interrupt handler returned — recompute and continue.
        except BaseException:
            if not ref_state:
                # A dispatched handler faulted: the reference engine
                # leaves the pc advanced past the faulting instruction
                # and its cost uncharged.
                self.pc = (idx + 1) * isize
                self.cycles = cycles
                self.instructions_executed = n
            raise
        self.pc = trap if trap is not None else idx * isize
        self.cycles = cycles
        self.instructions_executed = n
        return self


#: Engine registry for CLIs and helpers.
ENGINES: dict[str, type[CPU]] = {"fast": FastCPU, "reference": CPU}


def make_cpu(
    exe: Executable,
    monitor: Monitor | None = None,
    interrupts=None,
    engine: str = "fast",
) -> CPU:
    """Construct the requested interpreter engine for ``exe``.

    ``fast`` (the default) is the predecoded threaded-dispatch engine;
    ``reference`` is the readable baseline.  The two are observably
    identical; ``reference`` exists as the debugging escape hatch and
    the differential-testing oracle.
    """
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise MachineError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None
    return cls(exe, monitor, interrupts=interrupts)
