"""A library of VM programs used by tests, examples, and benchmarks.

Each builder returns assembly source (see
:mod:`repro.machine.assembler`); callers assemble with or without
profiling.  The programs are chosen to exercise every behaviour the
paper discusses:

* ``fib`` — self-recursion (the ``called+self`` notation);
* ``even_odd`` — a two-routine cycle (Figures 2–3);
* ``abstraction`` — the §6 output-formatting example: several
  calculation routines funnel through shared format routines into one
  ``write`` sink, the workload on which flat profiles go diffuse;
* ``dispatch`` — functional parameters through one ``CALLI`` site, the
  case that makes the arc hash table probe its secondary key;
* ``call_heavy`` / ``compute_heavy`` — the two ends of the profiling
  overhead range (many cheap calls vs few expensive ones);
* ``skewed`` — one routine whose cost depends on its argument, the
  documented pitfall of the average-time assumption;
* ``netcycle`` — subsystem layers forming a big cycle closed by a
  rarely-traversed loopback arc (the retrospective's kernel story);
* ``deep`` — a deep linear call chain for propagation checks;
* ``codegen`` — a miniature table-driven code generator, the program
  gprof was originally written to improve.
"""

from __future__ import annotations

from typing import Callable


def _require_positive(**values: int) -> None:
    """Loop counters of the canned programs count down to zero with a
    JNZ test; zero or negative starting values would spin forever."""
    for name, value in values.items():
        if value < 1:
            raise ValueError(f"{name} must be >= 1, got {value}")


# --------------------------------------------------------------------------- fib


def fib(n: int = 15) -> str:
    """Naive Fibonacci: a self-recursive routine under a tiny main."""
    return f"""
.func main
    PUSH {n}
    CALL fib
    OUT
    HALT
.end

.func fib
    STORE 0
    LOAD 0
    PUSH 2
    LT
    JZ recurse
    LOAD 0
    RET
recurse:
    LOAD 0
    PUSH 1
    SUB
    CALL fib
    LOAD 0
    PUSH 2
    SUB
    CALL fib
    ADD
    RET
.end
"""


# ----------------------------------------------------------------------- even/odd


def even_odd(n: int = 40) -> str:
    """Mutual recursion: the minimal non-trivial call graph cycle."""
    return f"""
.func main
    PUSH {n}
    CALL even
    OUT
    HALT
.end

.func even
    STORE 0
    LOAD 0
    JZ yes
    LOAD 0
    PUSH 1
    SUB
    CALL odd
    RET
yes:
    PUSH 1
    RET
.end

.func odd
    STORE 0
    LOAD 0
    JZ no
    LOAD 0
    PUSH 1
    SUB
    CALL even
    RET
no:
    PUSH 0
    RET
.end
"""


# -------------------------------------------------------------------- abstraction


def abstraction(
    iterations: int = 50,
    calc_work: int = 5,
    format_work: int = 40,
    write_work: int = 15,
) -> str:
    """The §6 navigation example: CALC1..3 → FORMAT1/2 → WRITE.

    The formatting abstraction's time is spread across two format
    routines and the write sink; a flat profile shows three middling
    routines, while the call graph profile charges the cost to the
    calculations that caused it.
    """
    _require_positive(iterations=iterations)
    return f"""
.func main
    PUSH {iterations}
    STORE 0
loop:
    CALL calc1
    CALL calc2
    CALL calc3
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func calc1
    WORK {calc_work}
    PUSH 1
    CALL format1
    RET
.end

.func calc2
    WORK {calc_work}
    PUSH 2
    CALL format2
    RET
.end

.func calc3
    WORK {calc_work}
    PUSH 3
    CALL format2
    RET
.end

.func format1
    STORE 0
    WORK {format_work}
    LOAD 0
    CALL write
    RET
.end

.func format2
    STORE 0
    WORK {format_work}
    LOAD 0
    CALL write
    RET
.end

.func write
    STORE 0
    WORK {write_work}
    LOAD 0
    OUT
    RET
.end
"""


# ----------------------------------------------------------------------- dispatch


def dispatch(rounds: int = 30) -> str:
    """Functional parameters: one CALLI site, three destinations.

    The single indirect call site in ``invoke`` is the case §3.1 calls
    out: the primary hash (call site) collides, and the secondary key
    (callee) disambiguates.
    """
    _require_positive(rounds=rounds)
    return f"""
.func main
    PUSH {rounds}
    STORE 0
loop:
    PUSH &handler_a
    CALL invoke
    PUSH &handler_b
    CALL invoke
    PUSH &handler_c
    CALL invoke
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func invoke
    STORE 0
    LOAD 0
    CALLI
    RET
.end

.func handler_a
    WORK 10
    RET
.end

.func handler_b
    WORK 20
    RET
.end

.func handler_c
    WORK 30
    RET
.end
"""


# ------------------------------------------------------------- overhead workloads


def call_heavy(calls: int = 1000) -> str:
    """Many calls to a nearly-empty leaf: profiling overhead worst case."""
    _require_positive(calls=calls)
    return f"""
.func main
    PUSH {calls}
    STORE 0
loop:
    CALL leaf
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func leaf
    RET
.end
"""


def compute_heavy(calls: int = 20, work: int = 2000) -> str:
    """Few calls, lots of computation: profiling overhead best case."""
    _require_positive(calls=calls)
    return f"""
.func main
    PUSH {calls}
    STORE 0
loop:
    CALL crunch
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func crunch
    WORK {work}
    RET
.end
"""


# -------------------------------------------------------------------------- skewed


def skewed(cheap_calls: int = 99, dear_calls: int = 1, dear_work: int = 99) -> str:
    """One routine, very different per-call costs from two callers.

    ``work_n`` burns cycles proportional to its argument.  The cheap
    caller passes 1; the dear caller passes ``dear_work``.  gprof's
    average-time assumption will misattribute the dear caller's time —
    the pitfall the retrospective owns up to.
    """
    _require_positive(cheap_calls=cheap_calls, dear_calls=dear_calls, dear_work=dear_work)
    return f"""
.func main
    CALL cheap_caller
    CALL dear_caller
    HALT
.end

.func cheap_caller
    PUSH {cheap_calls}
    STORE 0
loop:
    PUSH 1
    CALL work_n
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    RET
.end

.func dear_caller
    PUSH {dear_calls}
    STORE 0
loop:
    PUSH {dear_work}
    CALL work_n
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    RET
.end

.func work_n
    STORE 0
inner:
    WORK 10
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ inner
    RET
.end
"""


# ------------------------------------------------------------------------ netcycle


def netcycle(packets: int = 40, loopback_every: int = 13) -> str:
    """Network-stack layers forming a large cycle via rare loopback.

    ``ip_input → tcp_input → app_recv → sock_send → tcp_output →
    ip_output`` is a pipeline; every ``loopback_every``-th packet,
    ``ip_output`` feeds back into ``ip_input`` — a low-traversal-count
    arc that fuses the whole stack into one cycle, exactly the situation
    that made kernel profiles useless until the arc-removal option was
    added.  An unrelated ``disk_io`` subsystem shows what clean
    attribution looks like.
    """
    _require_positive(packets=packets)
    return f"""
.globals 1
.func main
    PUSH {packets}
    STORE 0
loop:
    LOAD 0
    CALL ip_input
    CALL disk_io
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func ip_input
    STORE 0
    WORK 8
    LOAD 0
    CALL tcp_input
    RET
.end

.func tcp_input
    STORE 0
    WORK 12
    LOAD 0
    CALL app_recv
    RET
.end

.func app_recv
    STORE 0
    WORK 6
    LOAD 0
    CALL sock_send
    RET
.end

.func sock_send
    STORE 0
    WORK 5
    LOAD 0
    CALL tcp_output
    RET
.end

.func tcp_output
    STORE 0
    WORK 12
    LOAD 0
    CALL ip_output
    RET
.end

.func ip_output
    STORE 0
    WORK 8
    LOAD 0
    PUSH {loopback_every}
    MOD
    JNZ done
    PUSH 1
    CALL ip_input
done:
    RET
.end

.func disk_io
    WORK 25
    RET
.end
"""


# ---------------------------------------------------------------------------- deep


def deep(depth_work: int = 30, iterations: int = 25) -> str:
    """A five-deep linear chain, each level with its own self time."""
    _require_positive(iterations=iterations)
    return f"""
.func main
    PUSH {iterations}
    STORE 0
loop:
    CALL level1
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func level1
    WORK {depth_work}
    CALL level2
    RET
.end

.func level2
    WORK {depth_work}
    CALL level3
    RET
.end

.func level3
    WORK {depth_work}
    CALL level4
    RET
.end

.func level4
    WORK {depth_work}
    CALL level5
    RET
.end

.func level5
    WORK {depth_work}
    RET
.end
"""


# -------------------------------------------------------------------------- codegen


def codegen(statements: int = 20) -> str:
    """A miniature table-driven code generator.

    ``main`` loops over statements; ``gen_stmt`` recursively generates
    expressions (``gen_expr`` is self-recursive, standing in for tree
    walks), consulting a symbol-table ``lookup`` (with a ``rehash``
    helper) and emitting through a shared ``emit`` abstraction — the
    very structure whose profile motivated building gprof [Graham82].
    """
    _require_positive(statements=statements)
    return f"""
.func main
    PUSH {statements}
    STORE 0
loop:
    LOAD 0
    PUSH 3
    MOD
    PUSH 2
    ADD
    CALL gen_stmt
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

.func gen_stmt
    STORE 0
    WORK 4
    LOAD 0
    CALL gen_expr
    CALL emit
    RET
.end

.func gen_expr
    STORE 0
    WORK 6
    LOAD 0
    CALL lookup
    LOAD 0
    PUSH 1
    LE
    JNZ leaf
    LOAD 0
    PUSH 1
    SUB
    CALL gen_expr
    CALL emit
    RET
leaf:
    CALL emit
    RET
.end

.func lookup
    STORE 0
    WORK 9
    LOAD 0
    PUSH 3
    MOD
    JNZ found
    CALL rehash
found:
    RET
.end

.func rehash
    WORK 30
    RET
.end

.func emit
    WORK 7
    RET
.end
"""


# --------------------------------------------------------------------------- hanoi


def hanoi(disks: int = 10) -> str:
    """Towers of Hanoi: a clean exponential recursion tree.

    ``move(n)`` calls itself twice per level; the OUT at the leaves
    counts the moves (2^n - 1), a cheap correctness check.
    """
    return f"""
.globals 1
.func main
    PUSH 0
    GSTORE 0
    PUSH {disks}
    CALL move
    GLOAD 0
    OUT
    HALT
.end

.func move
    STORE 0
    LOAD 0
    JZ done
    LOAD 0
    PUSH 1
    SUB
    CALL move
    WORK 2
    GLOAD 0
    PUSH 1
    ADD
    GSTORE 0
    LOAD 0
    PUSH 1
    SUB
    CALL move
done:
    RET
.end
"""


# ----------------------------------------------------------------------------- sort


def insertion_sort(n: int = 24, seed: int = 7) -> str:
    """Insertion sort over the global segment: data-movement heavy.

    ``main`` fills globals with a linear-congruential sequence, sorts
    them with ``sort``, and OUTs the smallest element and a checksum.
    The comparisons and element accesses go through little ``compare``
    and ``load_slot`` abstractions, so the profile shows a data
    abstraction's cost concentrated by the call graph — the symbol
    table "lookup/insert/delete" discussion of §6, in array form.
    """
    _require_positive(n=n, seed=seed)
    return f"""
.globals {n}
.func main
    PUSH {seed}
    STORE 0        ; rng state
    PUSH 0
    STORE 1        ; i
fill:
    LOAD 0
    PUSH 1103
    MUL
    PUSH 12289
    ADD
    PUSH 10007
    MOD
    STORE 0
    LOAD 0         ; value
    LOAD 1         ; index
    GSTOREI        ; globals[i] = rng
    LOAD 1
    PUSH 1
    ADD
    STORE 1
    LOAD 1
    PUSH {n}
    LT
    JNZ fill
    CALL sort
    GLOAD 0
    OUT
    CALL checksum
    OUT
    HALT
.end

.func sort
    PUSH 1
    STORE 0        ; i
outer:
    LOAD 0
    STORE 1        ; j
inner:
    LOAD 1
    JZ next
    LOAD 1
    CALL compare   ; slot[j-1] > slot[j]?
    JZ next
    LOAD 1
    CALL swap
    LOAD 1
    PUSH 1
    SUB
    STORE 1
    JMP inner
next:
    LOAD 0
    PUSH 1
    ADD
    STORE 0
    LOAD 0
    PUSH {n}
    LT
    JNZ outer
    RET
.end

.func compare
    ; arg: index j; returns 1 when slot[j-1] > slot[j]
    STORE 0
    WORK 2
    LOAD 0
    PUSH 1
    SUB
    CALL load_slot
    LOAD 0
    CALL load_slot
    GT
    RET
.end

.func swap
    ; arg: index j; swaps slot[j-1] and slot[j]
    STORE 0
    WORK 1
    LOAD 0
    PUSH 1
    SUB
    CALL load_slot ; a = slot[j-1]
    LOAD 0
    CALL load_slot ; b = slot[j]
    LOAD 0
    PUSH 1
    SUB
    GSTOREI        ; globals[j-1] = b
    LOAD 0
    GSTOREI        ; globals[j]   = a
    RET
.end

.func checksum
    PUSH 0
    STORE 0        ; acc
    PUSH 0
    STORE 1        ; i
loop:
    LOAD 1
    CALL load_slot
    LOAD 0
    ADD
    STORE 0
    LOAD 1
    PUSH 1
    ADD
    STORE 1
    LOAD 1
    PUSH {n}
    LT
    JNZ loop
    LOAD 0
    RET
.end

.func load_slot
    STORE 0
    WORK 1
    LOAD 0
    GLOADI
    RET
.end
"""


#: Registry of every canned program, used by the CLI and by tests that
#: want to sweep all workloads.
PROGRAMS: dict[str, Callable[..., str]] = {
    "fib": fib,
    "even_odd": even_odd,
    "abstraction": abstraction,
    "dispatch": dispatch,
    "call_heavy": call_heavy,
    "compute_heavy": compute_heavy,
    "skewed": skewed,
    "netcycle": netcycle,
    "deep": deep,
    "codegen": codegen,
    "hanoi": hanoi,
    "insertion_sort": insertion_sort,
}
