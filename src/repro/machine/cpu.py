"""The VM interpreter: program counters, call stack, and a cycle clock.

The CPU executes an :class:`~repro.machine.executable.Executable` and
maintains the two things the profiler cares about:

* a **cycle clock** — every instruction has a cost; profiling overhead
  (the monitoring routine's work) is charged in cycles too, so the
  T-OVERHEAD benchmark can compare profiled and unprofiled runs of the
  same program exactly;
* a **profiling clock** — every ``cycles_per_tick`` cycles the attached
  :class:`~repro.machine.monitor.Monitor` samples the current PC, just
  as the original kernel recorded "a histogram of the program counter
  as it is observed at every clock tick".  Sampling happens *during*
  the instruction that crosses the tick boundary, so long-running
  instructions (``WORK n``) accumulate samples at their own address.

``MCOUNT`` instructions (planted by the assembler in profiled
prologues) invoke the monitoring routine with the callee's entry
address and the call site discovered from the return address — §3.1's
mechanism, including "spontaneous" invocation of the entry routine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError
from repro.machine.executable import Executable
from repro.machine.isa import COSTS, INSTRUCTION_SIZE, Instruction, Op
from repro.machine.monitor import Monitor


def _trunc_div(a: int, b: int) -> int:
    """Integer division truncating toward zero (C semantics), exact for
    arbitrarily large operands.

    When the operands share a sign the quotient is non-negative, so
    floor division already truncates toward zero and the hot DIV/MOD
    path is a single ``//``.  Only mixed-sign operands need the
    correction step.
    """
    if (a >= 0) == (b >= 0):
        return a // b
    q = a // b
    if q * b != a:
        q += 1
    return q


@dataclass
class Frame:
    """One activation record.

    Attributes:
        return_addr: where RET resumes in the caller; None for the
            initial (spontaneously invoked) frame.
        locals: per-activation variable slots, grown on demand.
        interrupted: True when this frame was pushed by an asynchronous
            interrupt rather than a CALL — its return address points at
            the interrupted instruction, *not* at a call site, which is
            §3.1's "non-standard calling sequence": the monitoring
            routine must declare the invocation spontaneous.
    """

    return_addr: int | None
    locals: list[int] = field(default_factory=list)
    interrupted: bool = False


@dataclass
class InterruptSource:
    """A periodic asynchronous interrupt.

    Attributes:
        handler: name of the routine to dispatch to.
        period: cycles between deliveries.
        phase: cycle of the first delivery (defaults to one period in).
    """

    handler: str
    period: int
    phase: int | None = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise MachineError(f"interrupt period must be positive, got {self.period}")


class CPU:
    """An interpreter for one executable, optionally monitored.

    Attributes:
        exe: the program image.
        monitor: profiling state, or None for an unprofiled run.
        cycles: the cycle clock.
        output: values emitted by ``OUT`` instructions.
    """

    #: Call-stack depth limit: deep recursion is a program bug, not a
    #: reason to exhaust host memory.
    MAX_FRAMES = 100_000
    #: Operand stack limit.
    MAX_STACK = 1_000_000

    def __init__(
        self,
        exe: Executable,
        monitor: Monitor | None = None,
        interrupts: list[InterruptSource] | None = None,
    ):
        self.exe = exe
        self.monitor = monitor
        self.pc = exe.entry_point
        self.stack: list[int] = []
        self.frames: list[Frame] = [Frame(return_addr=None)]
        self.globals: list[int] = [0] * exe.num_globals
        self.counters: list[int] = [0] * len(exe.counter_names)
        self.output: list[int] = []
        self.cycles = 0
        self.instructions_executed = 0
        self.halted = False
        self.tracer = None  # optional on_call/on_return listener
        self._tick_interval = (
            monitor.config.cycles_per_tick if monitor is not None else 0
        )
        self._next_tick = self._tick_interval if monitor is not None else 0
        self._interrupts = list(interrupts or ())
        self._next_irq = [
            src.phase if src.phase is not None else src.period
            for src in self._interrupts
        ]
        self._irq_entries = [
            exe.function_named(src.handler).entry for src in self._interrupts
        ]
        self._irq_active = False
        self.interrupts_delivered = 0

    # -- the clock -----------------------------------------------------------------

    def _advance_clock(self, cost: int, at_pc: int) -> None:
        """Charge ``cost`` cycles; deliver any clock ticks that elapse.

        Each tick samples ``at_pc`` — the address of the instruction
        being executed when the tick fires.
        """
        self.cycles += cost
        if self.monitor is None or self._tick_interval <= 0:
            return
        while self._next_tick <= self.cycles:
            self.monitor.tick(at_pc)
            self._next_tick += self._tick_interval

    # -- stack helpers ---------------------------------------------------------------

    def _pop(self) -> int:
        try:
            return self.stack.pop()
        except IndexError:
            raise MachineError(
                f"operand stack underflow at pc {self.pc:#x}"
            ) from None

    def _push(self, value: int) -> None:
        if len(self.stack) >= self.MAX_STACK:
            raise MachineError(f"operand stack overflow at pc {self.pc:#x}")
        self.stack.append(value)

    def _frame(self) -> Frame:
        return self.frames[-1]

    def _local(self, slot: int) -> list[int]:
        if slot < 0:
            raise MachineError(f"negative local slot {slot} at pc {self.pc:#x}")
        locals_ = self._frame().locals
        while len(locals_) <= slot:
            locals_.append(0)
        return locals_

    def _enter(self, target: int, return_addr: int) -> None:
        if len(self.frames) >= self.MAX_FRAMES:
            raise MachineError(
                f"call stack overflow ({self.MAX_FRAMES} frames) calling "
                f"{target:#x} from {return_addr - INSTRUCTION_SIZE:#x}"
            )
        if target % INSTRUCTION_SIZE or not (
            self.exe.low_pc <= target < self.exe.high_pc
        ):
            raise MachineError(f"call to bad address {target:#x}")
        self.frames.append(Frame(return_addr=return_addr))
        self.pc = target
        if self.tracer is not None:
            self.tracer.on_call(self, target)

    def _maybe_deliver_interrupt(self) -> None:
        """Dispatch one due interrupt (handlers do not nest)."""
        for i, due in enumerate(self._next_irq):
            if self.cycles < due:
                continue
            src = self._interrupts[i]
            while self._next_irq[i] <= self.cycles:
                self._next_irq[i] += src.period
            self.frames.append(Frame(return_addr=self.pc, interrupted=True))
            self.pc = self._irq_entries[i]
            self._irq_active = True
            self.interrupts_delivered += 1
            if self.tracer is not None:
                self.tracer.on_call(self, self._irq_entries[i])
            return

    # -- execution --------------------------------------------------------------------

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            raise MachineError("cpu is halted")
        if self._interrupts and not self._irq_active:
            self._maybe_deliver_interrupt()
        pc = self.pc
        ins = self.exe.fetch(pc)
        op = ins.op
        cost = COSTS[op]
        self.pc = pc + INSTRUCTION_SIZE  # default: fall through
        self.instructions_executed += 1

        if op is Op.PUSH:
            self._push(ins.operand)
        elif op is Op.POP:
            self._pop()
        elif op is Op.DUP:
            v = self._pop()
            self._push(v)
            self._push(v)
        elif op is Op.SWAP:
            b, a = self._pop(), self._pop()
            self._push(b)
            self._push(a)
        elif op is Op.ADD:
            b, a = self._pop(), self._pop()
            self._push(a + b)
        elif op is Op.SUB:
            b, a = self._pop(), self._pop()
            self._push(a - b)
        elif op is Op.MUL:
            b, a = self._pop(), self._pop()
            self._push(a * b)
        elif op is Op.DIV:
            b, a = self._pop(), self._pop()
            if b == 0:
                raise MachineError(f"division by zero at pc {pc:#x}")
            self._push(_trunc_div(a, b))
        elif op is Op.MOD:
            b, a = self._pop(), self._pop()
            if b == 0:
                raise MachineError(f"modulo by zero at pc {pc:#x}")
            self._push(a - _trunc_div(a, b) * b)
        elif op is Op.NEG:
            self._push(-self._pop())
        elif op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE):
            b, a = self._pop(), self._pop()
            result = {
                Op.EQ: a == b, Op.NE: a != b, Op.LT: a < b,
                Op.LE: a <= b, Op.GT: a > b, Op.GE: a >= b,
            }[op]
            self._push(int(result))
        elif op is Op.LOAD:
            self._push(self._local(ins.operand)[ins.operand])
        elif op is Op.STORE:
            self._local(ins.operand)[ins.operand] = self._pop()
        elif op is Op.GLOAD:
            self._push(self._global(ins.operand, pc))
        elif op is Op.GSTORE:
            self._set_global(ins.operand, self._pop(), pc)
        elif op is Op.GLOADI:
            self._push(self._global(self._pop(), pc))
        elif op is Op.GSTOREI:
            slot = self._pop()
            self._set_global(slot, self._pop(), pc)
        elif op is Op.JMP:
            self.pc = ins.operand
        elif op is Op.JZ:
            if self._pop() == 0:
                self.pc = ins.operand
        elif op is Op.JNZ:
            if self._pop() != 0:
                self.pc = ins.operand
        elif op is Op.CALL:
            self._enter(ins.operand, pc + INSTRUCTION_SIZE)
        elif op is Op.CALLI:
            self._enter(self._pop(), pc + INSTRUCTION_SIZE)
        elif op is Op.RET:
            frame = self.frames.pop()
            if self.tracer is not None:
                self.tracer.on_return(self)
            if frame.interrupted:
                self._irq_active = False
                self.pc = frame.return_addr  # resume interrupted code
            elif frame.return_addr is None:
                self.halted = True  # returning from the entry routine
            else:
                self.pc = frame.return_addr
        elif op is Op.HALT:
            self.halted = True
        elif op is Op.NOP:
            pass
        elif op is Op.WORK:
            if ins.operand < 0:
                raise MachineError(f"negative WORK operand at pc {pc:#x}")
            cost += ins.operand
        elif op is Op.OUT:
            self.output.append(self._pop())
        elif op is Op.MCOUNT:
            # §3.1: the monitoring routine notes its own return address
            # (identifying the callee's prologue) and the routine's
            # return address (identifying the call site in the caller).
            # Interrupt frames carry a return address that is *not* a
            # call site — "such anomalous invocations are declared
            # spontaneous".
            frame = self._frame()
            if frame.return_addr is None or frame.interrupted:
                from_pc = None
            else:
                from_pc = frame.return_addr - INSTRUCTION_SIZE
            if self.monitor is not None:
                cost += self.monitor.mcount(from_pc, pc)
        elif op is Op.COUNT:
            # §3's statement-level alternative: a bare in-memory
            # increment, no routine call, no hash lookup.
            self.counters[ins.operand] += 1
        else:  # pragma: no cover - exhaustive enum
            raise MachineError(f"unimplemented opcode {op}")

        self._advance_clock(cost, pc)

    def _global(self, slot: int, pc: int) -> int:
        if not 0 <= slot < len(self.globals):
            raise MachineError(f"global slot {slot} out of range at pc {pc:#x}")
        return self.globals[slot]

    def _set_global(self, slot: int, value: int, pc: int) -> None:
        if not 0 <= slot < len(self.globals):
            raise MachineError(f"global slot {slot} out of range at pc {pc:#x}")
        self.globals[slot] = value

    def run(
        self,
        max_instructions: int | None = None,
        max_cycles: int | None = None,
    ) -> "CPU":
        """Run until HALT or a budget is exhausted; returns self.

        Budgets make the CPU resumable: kgmon-style live profiling runs
        the "kernel" in slices, extracting profile snapshots in between.
        """
        executed = 0
        while not self.halted:
            if max_instructions is not None and executed >= max_instructions:
                break
            if max_cycles is not None and self.cycles >= max_cycles:
                break
            self.step()
            executed += 1
        return self

    @property
    def current_function(self) -> str | None:
        """Name of the routine containing the current PC (for debugging)."""
        fn = self.exe.function_at(self.pc)
        return fn.name if fn else None

    def charge_overhead(self, cost: int) -> None:
        """Charge ``cost`` cycles of *profiler* work to the clock.

        The profiling clock is shifted by the same amount, so the
        overhead itself is never sampled (the kernel's histogram never
        billed the kernel's own walk to the program) and, crucially, a
        per-tick cost larger than the tick interval cannot re-trigger
        ticks forever.
        """
        self.cycles += cost
        self._next_tick += cost

    def stack_functions(self) -> list[str]:
        """The live routine chain, root first, leaf last.

        Reconstructed the way a debugger (or a modern stack-sampling
        profiler) would: each frame's saved return address identifies
        the call site — and therefore the routine — it will resume in;
        the current PC identifies the routine executing right now.
        """
        names: list[str] = []
        for frame in self.frames[1:]:
            # An interrupted frame's return address is the interrupted
            # instruction itself, not the slot after a CALL.
            site = (
                frame.return_addr
                if frame.interrupted
                else frame.return_addr - INSTRUCTION_SIZE
            )
            fn = self.exe.function_at(site)
            if fn is not None:
                names.append(fn.name)
        leaf = self.exe.function_at(self.pc)
        if leaf is not None:
            names.append(leaf.name)
        return names
