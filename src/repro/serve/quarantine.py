"""The quarantine: where rejected uploads go instead of /dev/null.

An upload the service cannot accept — unsalvageable bytes, a salvaged
layout that does not match the tenant's fleet, a record that would
poison the merged state — is never dropped silently.  The raw bytes
land on disk next to a structured JSON reason, both written atomically,
so an operator can triage ("why are 3% of agent-17's uploads bad?"),
replay a fixed batch later, or feed the file to ``repro-check
--salvage`` by hand.

Entries are named ``NNNNNN-<digest>`` — a per-tenant monotonic index
plus a short content digest — so listings sort in arrival order and a
re-uploaded identical body is recognizable at a glance.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from repro.resilience.atomic import atomic_write_bytes

QUARANTINE_FORMAT = "repro-serve-quarantine-1"


class Quarantine:
    """Per-tenant quarantine directories under one root."""

    def __init__(self, root) -> None:
        self.root = os.fspath(root)
        self._next: dict[str, int] = {}
        self._lock = threading.Lock()

    def _tenant_dir(self, tenant: str) -> str:
        d = os.path.join(self.root, tenant)
        os.makedirs(d, exist_ok=True)
        return d

    def _next_index(self, tenant: str, d: str) -> int:
        with self._lock:
            if tenant not in self._next:
                taken = [
                    int(name.split("-", 1)[0])
                    for name in os.listdir(d)
                    if name.endswith(".json") and name.split("-", 1)[0].isdigit()
                ]
                self._next[tenant] = max(taken, default=-1) + 1
            idx = self._next[tenant]
            self._next[tenant] = idx + 1
        return idx

    def put(
        self,
        tenant: str,
        blob: bytes,
        reason: str,
        *,
        source: str = "",
        detail: dict | None = None,
    ) -> str:
        """Quarantine ``blob`` with a structured reason; returns the entry name."""
        d = self._tenant_dir(tenant)
        digest = hashlib.blake2b(blob, digest_size=6).hexdigest()
        name = f"{self._next_index(tenant, d):06d}-{digest}"
        meta = {
            "format": QUARANTINE_FORMAT,
            "reason": reason,
            "source": source,
            "bytes": len(blob),
            "digest": digest,
        }
        if detail:
            meta["detail"] = detail
        atomic_write_bytes(os.path.join(d, f"{name}.bin"), blob)
        atomic_write_bytes(
            os.path.join(d, f"{name}.json"),
            (json.dumps(meta, sort_keys=True, indent=2) + "\n").encode("utf-8"),
        )
        return name

    def entries(self, tenant: str) -> list[dict]:
        """Every quarantined entry for ``tenant``, in arrival order."""
        d = os.path.join(self.root, tenant)
        if not os.path.isdir(d):
            return []
        out = []
        for name in sorted(os.listdir(d)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(d, name), encoding="utf-8") as f:
                    meta = json.load(f)
            except (OSError, ValueError):
                # A torn or vanished meta file must not break triage of
                # the others; surface it as its own degraded entry.
                meta = {"format": QUARANTINE_FORMAT, "reason": "unreadable meta"}
            meta["entry"] = name[: -len(".json")]
            out.append(meta)
        return out

    def count(self, tenant: str) -> int:
        """Quarantined entries so far for ``tenant``."""
        d = os.path.join(self.root, tenant)
        if not os.path.isdir(d):
            return 0
        return sum(1 for n in os.listdir(d) if n.endswith(".json"))
