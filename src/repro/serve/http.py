"""A minimal, hostile-input-hardened HTTP/1.1 layer on asyncio streams.

Hand-rolled on purpose: the ingest service must run on the stdlib
alone, and its robustness story starts at the byte level — bounded
request lines, bounded header blocks, bounded bodies, typed failures.
Everything a client can send wrong maps to an :class:`HttpError` with
a status code; nothing maps to an unhandled exception.

Only what the service needs is implemented: request-line + headers
parsing, ``Content-Length`` bodies (chunked transfer is refused with
501), keep-alive, and a response serializer.  Query strings are parsed
with the stdlib ``urllib.parse``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from urllib.parse import parse_qsl, unquote, urlsplit

#: Longest accepted request line (method + target + version).
MAX_REQUEST_LINE = 8 * 1024
#: Longest accepted header block, and most header lines.
MAX_HEADER_BYTES = 32 * 1024
MAX_HEADER_COUNT = 64

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    422: "Unprocessable Content",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that cannot be served, with the status to say so."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None):
        self.status = status
        self.message = message
        self.headers = headers or {}
        super().__init__(message)


@dataclass
class Request:
    """One parsed request head (the body is read separately)."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"

    def content_length(self, max_body: int) -> int:
        """The declared body length, validated.

        Raises :class:`HttpError` 501 for chunked transfer, 411 when a
        body-carrying method declares no length, 400 for an unparseable
        length, and 413 when the declaration exceeds ``max_body`` —
        *before* any body byte is read, which is the front door's
        no-unbounded-buffering guarantee.
        """
        if "transfer-encoding" in self.headers:
            raise HttpError(501, "chunked transfer encoding not supported")
        raw = self.headers.get("content-length")
        if raw is None:
            if self.method in ("POST", "PUT"):
                raise HttpError(411, "Content-Length required")
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"unparseable Content-Length {raw!r}")
        if length < 0:
            raise HttpError(400, f"negative Content-Length {length}")
        if length > max_body:
            raise HttpError(
                413,
                f"body of {length} bytes exceeds the {max_body} byte limit",
            )
        return length


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request head; None on clean EOF before any byte.

    Malformed input raises :class:`HttpError` (400/413 flavors); the
    connection handler turns that into a response and closes.
    """
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client closed between requests: normal
        raise HttpError(400, "connection closed inside the request line")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request line too long")
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(413, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    headers: dict[str, str] = {}
    total = 0
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "connection closed inside the headers")
        if line == b"\r\n":
            break
        total += len(line)
        if total > MAX_HEADER_BYTES or len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(413, "header block too large")
        text = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {text!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(method, target, path, query, headers, version)


def render_response(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: dict[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialize one HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
