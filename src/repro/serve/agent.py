"""repro-agent: the uploader client half of the ingest contract.

A fleet agent is the *polite* kind of hostile traffic: it retries.
This client implements the retry discipline the server's robustness
depends on:

* **timeouts** on connect and response, so a wedged server never wedges
  the agent;
* **capped exponential backoff with deterministic jitter** — the delay
  schedule is a pure function of the seed, so tests (and incident
  reconstructions) can replay it exactly; a ``Retry-After`` header from
  a 429 overrides the computed delay (capped);
* **idempotency keys** — by default the blake2b digest of the body, so
  however many times an upload is retried, the server folds it exactly
  once and every retry gets the original sequence number back;
* **typed outcomes** — permanent rejections (400/404/409/422) are not
  retried; only overload (429), server errors (5xx), timeouts, and
  connection failures are.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import random
import socket
import time
from dataclasses import dataclass, field

from repro.errors import ReproError


class AgentError(ReproError):
    """An upload that failed for good (retries exhausted or rejected)."""

    def __init__(self, message: str, *, status: int | None = None,
                 attempts: int = 0, payload: dict | None = None):
        self.status = status
        self.attempts = attempts
        self.payload = payload or {}
        super().__init__(message)


@dataclass
class RetryPolicy:
    """Deterministic capped-exponential-backoff schedule."""

    retries: int = 5
    base_delay: float = 0.1
    max_delay: float = 5.0
    seed: int = 0

    def delays(self) -> list[float]:
        """The full jittered schedule, a pure function of the seed."""
        rng = random.Random(self.seed)
        out = []
        for attempt in range(self.retries):
            delay = min(self.max_delay, self.base_delay * (2 ** attempt))
            out.append(delay * (0.5 + rng.random() / 2))
        return out


@dataclass
class UploadResult:
    """A server acknowledgement, plus how hard it was to get."""

    status: str  # "merged" | "duplicate"
    seq: int
    salvaged: bool = False
    attempts: int = 1
    warnings: list[str] = field(default_factory=list)


def content_key(blob: bytes) -> str:
    """The default idempotency key: a stable digest of the body."""
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


#: Statuses that no retry will ever fix.
PERMANENT = frozenset({400, 404, 405, 409, 411, 413, 422, 501})


class AgentClient:
    """Uploads profiles to one repro-serve endpoint, with retries."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        policy: RetryPolicy | None = None,
        sleep=time.sleep,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.policy = policy if policy is not None else RetryPolicy()
        self._sleep = sleep

    # -- low-level one-shot request ---------------------------------------

    def request(
        self, method: str, path: str, body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One HTTP exchange; raises ``OSError`` flavors on transport loss."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers or {})
            resp = conn.getresponse()
            payload = resp.read()
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
            return resp.status, resp_headers, payload
        finally:
            conn.close()

    # -- the retrying upload ----------------------------------------------

    def upload(
        self, tenant: str, blob: bytes, *, key: str | None = None,
    ) -> UploadResult:
        """Upload one profile body; retries per the policy.

        ``key=None`` uses the content digest (exactly-once across
        retries); ``key=""`` explicitly disables deduplication.
        """
        if key is None:
            key = content_key(blob)
        headers = {"Content-Type": "application/octet-stream"}
        if key:
            headers["X-Idempotency-Key"] = key
        delays = self.policy.delays()
        last_error = "no attempt made"
        last_status: int | None = None
        for attempt in range(len(delays) + 1):
            if attempt:
                self._sleep(self._delay_for(attempt - 1, delays))
            try:
                status, _rheaders, payload = self.request(
                    "POST", f"/v1/profiles/{tenant}", blob, headers
                )
            except (OSError, http.client.HTTPException) as exc:
                last_error = f"transport failure: {exc}"
                last_status = None
                self._last_retry_after = None
                continue
            self._last_retry_after = _rheaders.get("retry-after")
            doc = _json_or_empty(payload)
            if status == 200:
                return UploadResult(
                    status=doc.get("status", "merged"),
                    seq=int(doc.get("seq", 0)),
                    salvaged=bool(doc.get("salvaged", False)),
                    warnings=list(doc.get("warnings", [])),
                    attempts=attempt + 1,
                )
            if status in PERMANENT:
                raise AgentError(
                    f"upload permanently rejected "
                    f"({status}): {doc.get('error') or doc.get('reason') or payload[:200]!r}",
                    status=status, attempts=attempt + 1, payload=doc,
                )
            last_error = f"retryable status {status}: {doc.get('error', '')}"
            last_status = status
        raise AgentError(
            f"upload failed after {len(delays) + 1} attempt(s): {last_error}",
            status=last_status, attempts=len(delays) + 1,
        )

    _last_retry_after: str | None = None

    def _delay_for(self, index: int, delays: list[float]) -> float:
        """The scheduled delay, unless the server asked for a longer hold."""
        delay = delays[index]
        if self._last_retry_after:
            try:
                delay = max(delay, min(float(self._last_retry_after),
                                       self.policy.max_delay))
            except ValueError:
                pass
        return delay

    # -- convenience wrappers ---------------------------------------------

    def upload_file(self, tenant: str, path: str) -> UploadResult:
        with open(path, "rb") as f:
            return self.upload(tenant, f.read())

    def stats(self) -> dict:
        status, _, payload = self.request("GET", "/v1/stats")
        if status != 200:
            raise AgentError(f"stats query failed ({status})", status=status)
        return _json_or_empty(payload)

    def merged_sum(self, tenant: str, window: float | None = None) -> bytes:
        path = f"/v1/profiles/{tenant}/sum"
        if window is not None:
            path += f"?window={window:g}"
        status, _, payload = self.request("GET", path)
        if status != 200:
            raise AgentError(
                f"sum query failed ({status}): "
                f"{_json_or_empty(payload).get('error', '')}",
                status=status,
            )
        return payload

    def healthy(self) -> bool:
        try:
            status, _, _ = self.request("GET", "/healthz")
        except (OSError, http.client.HTTPException):
            return False
        return status == 200


def _json_or_empty(payload: bytes) -> dict:
    try:
        doc = json.loads(payload.decode("utf-8"))
        return doc if isinstance(doc, dict) else {}
    except (ValueError, UnicodeDecodeError):
        return {}


def wait_until_healthy(
    host: str, port: int, *, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll ``/healthz`` until it answers or ``timeout`` elapses."""
    client = AgentClient(host, port, timeout=1.0)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.healthy():
            return True
        time.sleep(interval)
    return False


# Quiet the linter: socket is imported for the ConnectionError aliases
# some Python builds route through it.
_ = socket
