"""The per-tenant write-ahead journal: length-prefixed, checksummed, append-only.

Every upload the ingest service accepts is appended here — as one
self-delimiting *frame* — before it is folded into the in-memory
accumulator and before the client sees an acknowledgement.  That
ordering is the durability contract: an acknowledged upload is on disk,
fsynced, and a ``kill -9`` at any byte boundary loses at most the
frame being written — which, by the same ordering, was never
acknowledged.

Frame layout (all integers little-endian, unsigned)::

    magic        4   b"RSJ1"
    payload_len  4   bytes of payload that follow the checksum
    checksum     8   blake2b-64 of the payload
    payload      var (see JournalRecord)

Record payload::

    rtype        1   record type (1 = accepted upload)
    seq          8   per-tenant monotonic sequence number
    key_len      2   idempotency key length (0 = none)
    key          var UTF-8 idempotency key
    nwarn        2   count of attached warning strings
    warnings     var (u16 length + UTF-8 bytes) each
    blob         var the accepted profile, canonical gmon bytes

:func:`replay_journal` recovers the **maximal valid prefix**: it walks
frames until the first bad magic, impossible length, truncated frame,
or checksum mismatch, and reports exactly how many bytes it kept and
why it stopped — in the same no-crash/no-silent-lie spirit as
:mod:`repro.resilience.salvage`.  Sequence numbers make replay
idempotent against checkpoint compaction: a record whose ``seq`` the
checkpoint already covers is skipped, so any crash ordering between
"write checkpoint" and "truncate journal" double-counts nothing.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import BinaryIO, Iterator

from repro.resilience.faults import FaultInjector

FRAME_MAGIC = b"RSJ1"
_FRAME_HEAD = struct.Struct("<4sI8s")  # magic, payload_len, checksum
_REC_HEAD = struct.Struct("<BQH")  # rtype, seq, key_len
_U16 = struct.Struct("<H")

#: The only record type so far: an accepted (possibly salvaged) upload.
RECORD_UPLOAD = 1

#: Hard ceiling on one frame's payload; anything larger is structural
#: corruption (the service bounds uploads far below this).
MAX_PAYLOAD = 256 << 20


def _checksum(payload: bytes) -> bytes:
    import hashlib

    return hashlib.blake2b(payload, digest_size=8).digest()


@dataclass(frozen=True)
class JournalRecord:
    """One accepted upload, as journaled."""

    seq: int
    key: str
    blob: bytes
    warnings: tuple[str, ...] = ()
    rtype: int = RECORD_UPLOAD

    def encode(self) -> bytes:
        key = self.key.encode("utf-8")
        if len(key) > 0xFFFF:
            raise ValueError("idempotency key longer than 65535 bytes")
        if len(self.warnings) > 0xFFFF:
            raise ValueError("too many warnings for one record")
        parts = [_REC_HEAD.pack(self.rtype, self.seq, len(key)), key,
                 _U16.pack(len(self.warnings))]
        for w in self.warnings:
            wb = w.encode("utf-8")
            if len(wb) > 0xFFFF:
                wb = wb[:0xFFFF]
            parts.append(_U16.pack(len(wb)))
            parts.append(wb)
        parts.append(self.blob)
        return b"".join(parts)

    @classmethod
    def decode(cls, payload: bytes) -> "JournalRecord":
        """Parse a frame payload; raises ``ValueError`` on malformation."""
        if len(payload) < _REC_HEAD.size:
            raise ValueError("record shorter than its fixed header")
        rtype, seq, key_len = _REC_HEAD.unpack_from(payload, 0)
        if rtype != RECORD_UPLOAD:
            raise ValueError(f"unknown record type {rtype}")
        pos = _REC_HEAD.size
        if len(payload) - pos < key_len + _U16.size:
            raise ValueError("record ends inside the idempotency key")
        key = payload[pos : pos + key_len].decode("utf-8", errors="replace")
        pos += key_len
        (nwarn,) = _U16.unpack_from(payload, pos)
        pos += _U16.size
        warnings = []
        for _ in range(nwarn):
            if len(payload) - pos < _U16.size:
                raise ValueError("record ends inside a warning length")
            (wlen,) = _U16.unpack_from(payload, pos)
            pos += _U16.size
            if len(payload) - pos < wlen:
                raise ValueError("record ends inside a warning string")
            warnings.append(
                payload[pos : pos + wlen].decode("utf-8", errors="replace")
            )
            pos += wlen
        return cls(seq, key, payload[pos:], tuple(warnings), rtype)


def encode_frame(record: JournalRecord) -> bytes:
    """The on-disk bytes of one journal frame."""
    payload = record.encode()
    return _FRAME_HEAD.pack(FRAME_MAGIC, len(payload), _checksum(payload)) + payload


@dataclass
class ReplayReport:
    """What :func:`replay_journal` kept and why it stopped."""

    total_bytes: int = 0
    consumed_bytes: int = 0
    frames: int = 0
    torn_reason: str | None = None

    @property
    def clean(self) -> bool:
        return self.torn_reason is None

    @property
    def dropped_bytes(self) -> int:
        return self.total_bytes - self.consumed_bytes


def iter_frames(blob: bytes) -> Iterator[tuple[int, bytes]]:
    """Yield ``(offset, payload)`` for every structurally valid frame.

    Stops silently at the first malformation; :func:`replay_journal`
    wraps this with the full accounting.
    """
    pos = 0
    while len(blob) - pos >= _FRAME_HEAD.size:
        magic, length, checksum = _FRAME_HEAD.unpack_from(blob, pos)
        if magic != FRAME_MAGIC or length > MAX_PAYLOAD:
            return
        start = pos + _FRAME_HEAD.size
        if len(blob) - start < length:
            return
        payload = blob[start : start + length]
        if _checksum(payload) != checksum:
            return
        yield pos, payload
        pos = start + length


def replay_journal(path) -> tuple[list[JournalRecord], ReplayReport]:
    """Recover the maximal valid prefix of records from ``path``.

    Never raises on malformed content: a missing file is an empty
    journal, and the first torn/corrupt frame ends the replay with the
    reason recorded in the report.  ``report.consumed_bytes`` is the
    safe truncation point — everything after it is debris from a crash
    mid-append (which, per the ack-after-fsync contract, no client was
    ever told about).
    """
    report = ReplayReport()
    try:
        with open(path, "rb") as f:
            blob = f.read()
    except FileNotFoundError:
        return [], report
    report.total_bytes = len(blob)
    records: list[JournalRecord] = []
    pos = 0
    while True:
        remaining = len(blob) - pos
        if remaining == 0:
            break
        if remaining < _FRAME_HEAD.size:
            report.torn_reason = (
                f"file ends inside a frame header ({remaining}/"
                f"{_FRAME_HEAD.size} bytes)"
            )
            break
        magic, length, checksum = _FRAME_HEAD.unpack_from(blob, pos)
        if magic != FRAME_MAGIC:
            report.torn_reason = f"bad frame magic {magic!r}"
            break
        if length > MAX_PAYLOAD:
            report.torn_reason = f"impossible frame length {length}"
            break
        start = pos + _FRAME_HEAD.size
        if len(blob) - start < length:
            report.torn_reason = (
                f"file ends inside a frame payload "
                f"({len(blob) - start}/{length} bytes)"
            )
            break
        payload = blob[start : start + length]
        if _checksum(payload) != checksum:
            report.torn_reason = "frame checksum mismatch"
            break
        try:
            records.append(JournalRecord.decode(payload))
        except ValueError as exc:
            report.torn_reason = f"undecodable record: {exc}"
            break
        pos = start + length
        report.frames += 1
        report.consumed_bytes = pos
    return records, report


class JournalWriter:
    """Appends frames to a journal file, fsyncing each one.

    The fsync-per-append policy is what lets the service acknowledge an
    upload as durable; ``fsync=False`` trades that for throughput (the
    benchmark measures both).  A :class:`FaultInjector` can be armed on
    any append to simulate the process dying mid-frame.
    """

    def __init__(self, path, fsync: bool = True) -> None:
        self.path = os.fspath(path)
        self.fsync = fsync
        self._f: BinaryIO | None = None

    def _file(self) -> BinaryIO:
        if self._f is None or self._f.closed:
            self._f = open(self.path, "ab")
            self._f.seek(0, os.SEEK_END)  # make tell() report the size
        return self._f

    def append(
        self, record: JournalRecord, injector: FaultInjector | None = None
    ) -> int:
        """Append one frame; returns the file offset it starts at."""
        f = self._file()
        offset = f.tell()
        frame = encode_frame(record)
        if injector is not None:
            injector.write(f, frame)
        else:
            f.write(frame)
        f.flush()
        if self.fsync:
            os.fsync(f.fileno())
        return offset

    def truncate(self, size: int = 0) -> None:
        """Cut the journal back to ``size`` bytes (checkpoint compaction,
        or dropping a torn tail found at recovery)."""
        f = self._file()
        f.flush()
        f.truncate(size)
        f.seek(0, os.SEEK_END)
        if self.fsync:
            os.fsync(f.fileno())

    def close(self) -> None:
        if self._f is not None and not self._f.closed:
            self._f.close()
