"""Durable per-tenant ingest state: accumulator + journal + checkpoint.

A :class:`TenantStore` owns everything one tenant's profiles touch:

* the in-memory :class:`~repro.fleet.ProfileAccumulator` (the merged
  state queries read);
* the write-ahead journal (:mod:`repro.serve.journal`) every accepted
  upload hits — fsynced — *before* it is folded or acknowledged;
* the checkpoint: a single atomic container file holding the merged
  gmon bytes plus JSON metadata (last applied sequence number,
  idempotency keys, accumulated warnings, counters), compacted every
  ``checkpoint_every`` records so the journal stays short;
* the idempotency-key window that makes agent retries exactly-once;
* the retention deque of recent uploads that backs time-windowed
  queries.

Crash recovery (:meth:`TenantStore.open`) is: load the checkpoint if
its container verifies, replay the journal's maximal valid prefix,
skip records the checkpoint already covers (sequence numbers make any
crash ordering safe), truncate the torn tail, and carry every
degradation fact forward as warnings.  The invariant the fault
-injection suite pins: for *any* prefix of journal bytes, recovery
succeeds and the merged state equals an offline merge of exactly the
records that were durable — nothing lost, nothing double-counted,
nothing invented.

Everything here is synchronous and single-threaded per tenant; the
server's shard workers guarantee one tenant is only ever touched by
one worker (see :mod:`repro.serve.server`).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import GmonFormatError
from repro.fleet.accumulator import ProfileAccumulator
from repro.fleet.headers import HeaderKey
from repro.gmon.format import dumps_gmon, parse_gmon_raw, salvage_gmon_bytes
from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.faults import FaultInjector

from repro.serve.journal import (
    JournalRecord,
    JournalWriter,
    ReplayReport,
    replay_journal,
)
from repro.serve.quarantine import Quarantine

CKPT_MAGIC = b"RSC1"
_CKPT_LEN = struct.Struct("<I")
CKPT_FORMAT = "repro-serve-ckpt-1"

JOURNAL_NAME = "journal.log"
CHECKPOINT_NAME = "checkpoint.bin"


@dataclass
class ServeConfig:
    """Tunables for the ingest service (server and stores share it)."""

    root: str
    host: str = "127.0.0.1"
    port: int = 0
    image: str | None = None
    shards: int = 4
    queue_depth: int = 64
    max_body: int = 8 << 20
    max_inflight_bytes: int = 64 << 20
    checkpoint_every: int = 64
    dedup_window: int = 4096
    retention_seconds: float = 3600.0
    max_recent: int = 1024
    read_timeout: float = 30.0
    fsync: bool = True
    clock: Callable[[], float] = time.monotonic

    def tenants_root(self) -> str:
        return os.path.join(self.root, "tenants")

    def quarantine_root(self) -> str:
        return os.path.join(self.root, "quarantine")


# -- outcomes -------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    """What became of one upload."""

    status: str  # "merged" | "duplicate" | "quarantined"
    seq: int = 0
    salvaged: bool = False
    warnings: tuple[str, ...] = ()
    reason: str = ""
    entry: str = ""


# -- the checkpoint container ---------------------------------------------------


def encode_checkpoint(meta: dict, gmon: bytes) -> bytes:
    """One atomic container: magic + meta JSON + gmon bytes + checksum."""
    meta_b = json.dumps(meta, sort_keys=True).encode("utf-8")
    body = (
        CKPT_MAGIC
        + _CKPT_LEN.pack(len(meta_b))
        + meta_b
        + _CKPT_LEN.pack(len(gmon))
        + gmon
    )
    return body + hashlib.blake2b(body, digest_size=16).digest()


def decode_checkpoint(blob: bytes) -> tuple[dict, bytes] | None:
    """Verify and unpack a checkpoint container; None if it does not verify.

    The container is written atomically, so a mismatch means bit rot or
    tampering — the caller falls back to journal-only recovery and says
    so, it never trusts half a checkpoint.
    """
    if len(blob) < len(CKPT_MAGIC) + 2 * _CKPT_LEN.size + 16:
        return None
    body, digest = blob[:-16], blob[-16:]
    if hashlib.blake2b(body, digest_size=16).digest() != digest:
        return None
    if body[: len(CKPT_MAGIC)] != CKPT_MAGIC:
        return None
    pos = len(CKPT_MAGIC)
    (meta_len,) = _CKPT_LEN.unpack_from(body, pos)
    pos += _CKPT_LEN.size
    if len(body) - pos < meta_len + _CKPT_LEN.size:
        return None
    try:
        meta = json.loads(body[pos : pos + meta_len].decode("utf-8"))
    except ValueError:
        return None
    pos += meta_len
    (gmon_len,) = _CKPT_LEN.unpack_from(body, pos)
    pos += _CKPT_LEN.size
    if len(body) - pos != gmon_len:
        return None
    if not isinstance(meta, dict) or meta.get("format") != CKPT_FORMAT:
        return None
    return meta, body[pos:]


# -- per-tenant state -----------------------------------------------------------


@dataclass
class TenantStats:
    accepted: int = 0
    salvaged: int = 0
    duplicates: int = 0
    quarantined: int = 0

    def as_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "salvaged": self.salvaged,
            "duplicates": self.duplicates,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TenantStats":
        return cls(
            accepted=int(d.get("accepted", 0)),
            salvaged=int(d.get("salvaged", 0)),
            duplicates=int(d.get("duplicates", 0)),
            quarantined=int(d.get("quarantined", 0)),
        )


class TenantStore:
    """One tenant's durable ingest state (see the module docstring)."""

    def __init__(self, name: str, config: ServeConfig,
                 quarantine: Quarantine) -> None:
        self.name = name
        self.config = config
        self.quarantine = quarantine
        self.dir = os.path.join(config.tenants_root(), name)
        os.makedirs(self.dir, exist_ok=True)
        self.acc = ProfileAccumulator()
        self.seq = 0
        self.ckpt_seq = 0  # highest seq the checkpoint covers
        self.since_checkpoint = 0
        self.keys: OrderedDict[str, int] = OrderedDict()
        self.recent: deque[tuple[float, bytes]] = deque()
        self.stats = TenantStats()
        self.inflight = 0  # uploads queued on this tenant's shard
        self.recovery_warnings: list[str] = []
        self.journal = JournalWriter(
            os.path.join(self.dir, JOURNAL_NAME), fsync=config.fsync
        )

    # -- construction / recovery ------------------------------------------

    @classmethod
    def open(cls, name: str, config: ServeConfig,
             quarantine: Quarantine) -> "TenantStore":
        """Open (and if needed recover) the tenant rooted at its directory."""
        store = cls(name, config, quarantine)
        store._recover()
        return store

    def _recover(self) -> None:
        ckpt_path = os.path.join(self.dir, CHECKPOINT_NAME)
        if os.path.exists(ckpt_path):
            with open(ckpt_path, "rb") as f:
                blob = f.read()
            decoded = decode_checkpoint(blob)
            if decoded is None:
                self.recovery_warnings.append(
                    f"{self.name}: checkpoint did not verify; recovered "
                    "from the journal alone (records compacted into the "
                    "bad checkpoint are lost)"
                )
                self.quarantine.put(
                    self.name, blob, "checkpoint container failed to verify",
                    source=ckpt_path,
                )
            else:
                meta, gmon = decoded
                self.acc.add_raw(parse_gmon_raw(gmon))
                # the checkpoint blob re-parses clean; restore the real
                # warning history from meta instead
                self.acc._warnings[:] = []
                for w in meta.get("warnings", []):
                    self.acc.add_warning(str(w))
                self.ckpt_seq = int(meta.get("last_seq", 0))
                self.seq = self.ckpt_seq
                for key, kseq in meta.get("keys", []):
                    self.keys[str(key)] = int(kseq)
                self.stats = TenantStats.from_dict(meta.get("stats", {}))
        records, report = replay_journal(self.journal.path)
        self.replay_report: ReplayReport = report
        applied = 0
        for rec in records:
            if rec.seq <= self.ckpt_seq:
                continue  # already inside the checkpoint
            try:
                raw = parse_gmon_raw(rec.blob)
            except GmonFormatError as exc:
                # checksummed frames should never hold a bad blob; keep
                # the state sane anyway and say what happened
                self.recovery_warnings.append(
                    f"{self.name}: journal record seq {rec.seq} held an "
                    f"unparseable profile ({exc}); skipped"
                )
                continue
            self.acc.add_raw(raw)
            for w in rec.warnings:
                self.acc.add_warning(w)
            if rec.key:
                self._remember_key(rec.key, rec.seq)
            self.seq = max(self.seq, rec.seq)
            self.stats.accepted += 1
            if rec.warnings:
                self.stats.salvaged += 1
            applied += 1
        self.since_checkpoint = applied
        if not report.clean:
            self.recovery_warnings.append(
                f"{self.name}: journal tail dropped at byte "
                f"{report.consumed_bytes}/{report.total_bytes} "
                f"({report.torn_reason}); the frame being written when "
                "the service died was never acknowledged"
            )
            self.journal.truncate(report.consumed_bytes)
        for w in self.recovery_warnings:
            self.acc.add_warning(w)

    # -- the accept path ---------------------------------------------------

    def accept(self, blob: bytes, key: str = "",
               injector: FaultInjector | None = None) -> Outcome:
        """Validate/salvage/journal/fold one upload; never raises on content.

        The caller (a shard worker) is the only thread touching this
        tenant, so the journal-then-fold sequence needs no locking.
        """
        if key and key in self.keys:
            self.stats.duplicates += 1
            return Outcome("duplicate", seq=self.keys[key])
        salvaged = False
        warnings: tuple[str, ...] = ()
        salvage_report = None
        try:
            raw = parse_gmon_raw(blob)
            canonical = blob
        except GmonFormatError as exc:
            data, report = salvage_gmon_bytes(
                blob, source=f"{self.name}/upload"
            )
            if report.buckets_read == 0 and not data.arcs:
                self.stats.quarantined += 1
                entry = self.quarantine.put(
                    self.name, blob,
                    "unsalvageable upload: no histogram or arc data "
                    "recovered",
                    detail={"strict_error": str(exc),
                            "salvage": report.to_dict()},
                )
                return Outcome(
                    "quarantined", reason="unsalvageable upload",
                    entry=entry,
                )
            canonical = dumps_gmon(data)
            raw = parse_gmon_raw(canonical)
            salvaged = True
            salvage_report = report
            warnings = tuple(data.warnings)
        upload_key = HeaderKey(raw.low_pc, raw.high_pc, raw.nbuckets,
                               raw.profrate)
        if (
            self.acc.key is None
            and salvaged
            and "buckets" not in salvage_report.recovered_sections
        ):
            # A shrunken, partially-recovered histogram must not be the
            # layout every later healthy upload is judged against.
            self.stats.quarantined += 1
            entry = self.quarantine.put(
                self.name, blob,
                "salvaged upload too damaged to establish the tenant "
                "layout",
                detail={"salvage": salvage_report.to_dict()},
            )
            return Outcome(
                "quarantined",
                reason="salvaged upload too damaged to establish the "
                       "tenant layout",
                entry=entry,
            )
        if self.acc.key is not None and upload_key != self.acc.key:
            self.stats.quarantined += 1
            entry = self.quarantine.put(
                self.name, blob,
                "incompatible histogram layout",
                detail={
                    "expected": self.acc.key.describe(),
                    "actual": upload_key.describe(),
                    "salvaged": salvaged,
                },
            )
            return Outcome(
                "quarantined", reason="incompatible histogram layout",
                entry=entry,
            )
        seq = self.seq + 1
        self.journal.append(
            JournalRecord(seq, key, canonical, warnings), injector
        )
        # past this point the record is durable: fold it exactly as a
        # recovery replay would
        self.seq = seq
        self.acc.add_raw(raw)
        for w in warnings:
            self.acc.add_warning(w)
        if key:
            self._remember_key(key, seq)
        self.stats.accepted += 1
        if salvaged:
            self.stats.salvaged += 1
        self._remember_recent(canonical)
        self.since_checkpoint += 1
        if self.since_checkpoint >= self.config.checkpoint_every:
            self.checkpoint()
        return Outcome("merged", seq=seq, salvaged=salvaged,
                       warnings=warnings)

    def _remember_key(self, key: str, seq: int) -> None:
        self.keys[key] = seq
        self.keys.move_to_end(key)
        while len(self.keys) > self.config.dedup_window:
            self.keys.popitem(last=False)

    def _remember_recent(self, canonical: bytes) -> None:
        now = self.config.clock()
        self.recent.append((now, canonical))
        cutoff = now - self.config.retention_seconds
        while self.recent and (
            self.recent[0][0] < cutoff
            or len(self.recent) > self.config.max_recent
        ):
            self.recent.popleft()

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self, injector: FaultInjector | None = None) -> None:
        """Compact the journal into one atomic checkpoint container."""
        if self.acc.empty:
            return
        data = self.acc.result()
        meta = {
            "format": CKPT_FORMAT,
            "last_seq": self.seq,
            "keys": [[k, s] for k, s in self.keys.items()],
            "warnings": list(data.warnings),
            "stats": self.stats.as_dict(),
        }
        blob = encode_checkpoint(meta, dumps_gmon(data))
        atomic_write_bytes(
            os.path.join(self.dir, CHECKPOINT_NAME), blob, injector
        )
        # With the checkpoint durable, the journal's records are all
        # covered by last_seq; a crash anywhere around this truncate
        # merely leaves records that recovery will skip by seq.
        self.journal.truncate(0)
        self.since_checkpoint = 0

    # -- queries -----------------------------------------------------------

    def merged(self) -> bytes:
        """The all-time merged profile, as gmon bytes."""
        return dumps_gmon(self.acc.result())

    def merged_data(self):
        """The all-time merged profile, as ProfileData."""
        return self.acc.result()

    def window_data(self, seconds: float):
        """Merged ProfileData over uploads of the last ``seconds``.

        Only covers what the retention deque still holds (uploads since
        the last restart, within ``retention_seconds``); returns None
        when the window is empty.
        """
        cutoff = self.config.clock() - seconds
        acc = ProfileAccumulator()
        for ts, canonical in self.recent:
            if ts >= cutoff:
                acc.add_raw(parse_gmon_raw(canonical))
        if acc.empty:
            return None
        return acc.result()

    def stats_dict(self) -> dict:
        d = self.stats.as_dict()
        d.update(
            seq=self.seq,
            runs=self.acc.runs,
            total_ticks=self.acc.total_ticks if not self.acc.empty else 0,
            distinct_arcs=self.acc.distinct_arcs,
            layout=self.acc.key.digest() if self.acc.key else None,
            kernel_backend=self.acc.backend_name,
            recent=len(self.recent),
            quarantine_entries=self.quarantine.count(self.name),
        )
        return d

    def close(self) -> None:
        self.journal.close()
