"""repro.serve: a fault-tolerant continuous-profiling ingest service.

The batch tools (``repro-merge``, ``repro-fleet``) assume their inputs
sit still on disk.  A fleet that profiles continuously needs the
opposite: a long-running daemon that accepts ``gmon.out`` uploads as
they happen, survives crashes of itself and of its clients, and serves
merged views while ingesting.  This package is that daemon, built on
the stdlib alone:

* :mod:`repro.serve.http` — a hardened hand-rolled HTTP/1.1 layer;
* :mod:`repro.serve.journal` — the length-prefixed, checksummed
  append-only write-ahead journal (maximal-valid-prefix recovery);
* :mod:`repro.serve.quarantine` — where rejected uploads go instead
  of /dev/null;
* :mod:`repro.serve.state` — per-tenant durable state: journal +
  atomic checkpoint + in-memory :class:`~repro.fleet.ProfileAccumulator`;
* :mod:`repro.serve.server` — the asyncio front door: validation,
  backpressure, sharded workers, query endpoints;
* :mod:`repro.serve.agent` — the retrying uploader client
  (``repro-agent``).

The durability contract: an acknowledged upload is on fsync'd disk
before the acknowledgement is written, so ``kill -9`` at any byte
boundary loses only unacknowledged work, and a restart recovers the
byte-identical merged profile.
"""

from repro.serve.agent import (
    AgentClient,
    AgentError,
    RetryPolicy,
    UploadResult,
    content_key,
    wait_until_healthy,
)
from repro.serve.http import HttpError, Request, read_request, render_response
from repro.serve.journal import (
    JournalRecord,
    JournalWriter,
    ReplayReport,
    encode_frame,
    replay_journal,
)
from repro.serve.quarantine import Quarantine
from repro.serve.server import ReproServer, ServerStats, run_server
from repro.serve.state import (
    Outcome,
    ServeConfig,
    TenantStore,
    decode_checkpoint,
    encode_checkpoint,
)

__all__ = [
    "AgentClient",
    "AgentError",
    "HttpError",
    "JournalRecord",
    "JournalWriter",
    "Outcome",
    "Quarantine",
    "ReplayReport",
    "ReproServer",
    "Request",
    "RetryPolicy",
    "ServeConfig",
    "ServerStats",
    "TenantStore",
    "UploadResult",
    "content_key",
    "decode_checkpoint",
    "encode_checkpoint",
    "encode_frame",
    "read_request",
    "render_response",
    "replay_journal",
    "run_server",
    "wait_until_healthy",
]
