"""repro-serve: the fault-tolerant continuous-profiling ingest daemon.

The service shape of the paper's post-processor: thousands of agents
``POST`` their ``gmon.out`` files here; the server validates each one
at the front door, journals it durably, folds it into per-tenant merged
state, and serves the merged profile — raw, flat, or call-graph — back
out.  Robustness is the design center:

* **Front door** — before any body is buffered, the request must carry
  a plausible ``Content-Length`` (over-limit ⇒ 413 immediately) and its
  first bytes must peek as a gmon header
  (:func:`repro.gmon.peek_gmon_header_bytes`): wrong magic ⇒ 400,
  a layout incompatible with the tenant's fleet ⇒ 409 carrying both
  digests, exactly like the batch merger's structured ``MergeError``.
* **Backpressure** — accepted bodies enter a bounded per-tenant
  pipeline; a tenant over its ``queue_depth`` (or the server over its
  global in-flight byte budget) gets ``429`` + ``Retry-After`` and
  nothing is buffered.  Overload slows clients down; it never grows
  server memory without bound.
* **Sharded workers** — tenants hash onto ``shards`` worker tasks, so
  one tenant's uploads are strictly ordered (the determinism the
  byte-identity gate needs) while distinct tenants proceed in
  parallel.
* **Salvage, then quarantine** — a corrupt body is first offered to
  the salvaging parser; what cannot be recovered (or would poison the
  merged layout) is quarantined to disk with a structured reason and
  answered with ``422``.  Nothing is dropped silently; nothing corrupt
  reaches merged state.
* **Durability** — an upload is acknowledged only after its journal
  frame is fsynced (:mod:`repro.serve.state`); ``kill -9`` at any byte
  boundary and a restart recovers exactly the acknowledged uploads.
* **A connection can die at any await** — client disconnects
  mid-body, mid-response, or mid-keep-alive are counted, cleaned up,
  and never take a worker or another connection with them.
"""

from __future__ import annotations

import asyncio
import json
import re
import zlib
from dataclasses import dataclass

from repro.errors import GmonFormatError, ReproError
from repro.fleet.headers import HeaderKey
from repro.gmon.format import (
    PEEK_PREFIX_LEN,
    peek_gmon_header_bytes,
    peek_needed_len,
)

from repro.serve.http import (
    HttpError,
    Request,
    read_request,
    render_response,
)
from repro.serve.quarantine import Quarantine
from repro.serve.state import Outcome, ServeConfig, TenantStore

#: Tenant names are path segments and directory names; keep them tame.
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")


@dataclass
class ServerStats:
    connections: int = 0
    requests: int = 0
    disconnects: int = 0
    rejected_front_door: int = 0
    throttled: int = 0
    errors: int = 0

    def as_dict(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "disconnects": self.disconnects,
            "rejected_front_door": self.rejected_front_door,
            "throttled": self.throttled,
            "errors": self.errors,
        }


@dataclass
class _WorkItem:
    tenant: TenantStore
    blob: bytes
    key: str
    future: asyncio.Future


class ReproServer:
    """The asyncio ingest daemon.  ``await start()``, then ``serve_forever()``."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.quarantine = Quarantine(config.quarantine_root())
        self.tenants: dict[str, TenantStore] = {}
        self.stats = ServerStats()
        self.session = None  # lazy ProfileSession for flat/graph queries
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._inflight_bytes = 0
        self._pending_keys: dict[tuple[str, str], asyncio.Future] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Recover persisted tenants, spawn workers, bind the socket."""
        import os

        os.makedirs(self.config.tenants_root(), exist_ok=True)
        for name in sorted(os.listdir(self.config.tenants_root())):
            if TENANT_RE.match(name):
                self.tenants[name] = TenantStore.open(
                    name, self.config, self.quarantine
                )
        self._queues = [asyncio.Queue() for _ in range(self.config.shards)]
        self._workers = [
            asyncio.create_task(self._shard_worker(q), name=f"shard-{i}")
            for i, q in enumerate(self._queues)
        ]
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: drain workers, checkpoint every tenant."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for q in self._queues:
            await q.join()
        for w in self._workers:
            w.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        for store in self.tenants.values():
            try:
                store.checkpoint()
            except ReproError:
                pass  # an empty tenant has nothing to checkpoint
            store.close()

    # -- tenant plumbing ---------------------------------------------------

    def tenant(self, name: str) -> TenantStore:
        store = self.tenants.get(name)
        if store is None:
            store = TenantStore.open(name, self.config, self.quarantine)
            self.tenants[name] = store
        return store

    def _shard_of(self, name: str) -> asyncio.Queue:
        return self._queues[zlib.crc32(name.encode()) % len(self._queues)]

    async def _shard_worker(self, queue: asyncio.Queue) -> None:
        """Fold queued uploads, one at a time, forever.

        The worker must survive anything a single item does to it: an
        unexpected exception becomes that item's 500, never the
        worker's death.
        """
        while True:
            item: _WorkItem = await queue.get()
            try:
                outcome = item.tenant.accept(item.blob, item.key)
                if not item.future.done():
                    item.future.set_result(outcome)
            except asyncio.CancelledError:
                if not item.future.done():
                    item.future.set_exception(
                        HttpError(503, "server shutting down")
                    )
                raise
            except BaseException as exc:  # noqa: BLE001 — the worker must live
                self.stats.errors += 1
                if not item.future.done():
                    item.future.set_exception(
                        HttpError(500, f"ingest failed: {exc}")
                    )
            finally:
                self._inflight_bytes -= len(item.blob)
                item.tenant.inflight -= 1
                queue.task_done()

    # -- connection handling ----------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        read_request(reader), self.config.read_timeout
                    )
                except asyncio.TimeoutError:
                    break
                except HttpError as exc:
                    await self._respond_error(writer, exc, keep_alive=False)
                    break
                if request is None:
                    break
                self.stats.requests += 1
                try:
                    status, body, ctype, extra = await self._dispatch(
                        request, reader
                    )
                except HttpError as exc:
                    if exc.status in (400, 409, 413, 501):
                        self.stats.rejected_front_door += 1
                    elif exc.status == 429:
                        self.stats.throttled += 1
                    # A POST rejected mid-body leaves unread bytes on the
                    # wire; the connection cannot be reused for framing.
                    reuse = request.method == "GET" and exc.status not in (
                        400, 411, 413, 501,
                    )
                    await self._respond_error(
                        writer, exc, keep_alive=reuse and request.keep_alive
                    )
                    if not reuse:
                        break
                    continue
                except (asyncio.IncompleteReadError, ConnectionError):
                    self.stats.disconnects += 1
                    break
                except Exception as exc:  # noqa: BLE001 — connection must not crash the loop
                    self.stats.errors += 1
                    await self._respond_error(
                        writer, HttpError(500, f"internal error: {exc}"),
                        keep_alive=False,
                    )
                    break
                writer.write(
                    render_response(
                        status, body, content_type=ctype, headers=extra,
                        keep_alive=request.keep_alive,
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            self.stats.disconnects += 1
        except asyncio.CancelledError:
            pass  # server torn down mid-connection: close quietly below
        except Exception:  # noqa: BLE001 — never let a connection kill the server
            self.stats.errors += 1
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _respond_error(
        self, writer: asyncio.StreamWriter, exc: HttpError, keep_alive: bool
    ) -> None:
        body = json.dumps(
            {"error": exc.message, "status": exc.status}, sort_keys=True
        ).encode() + b"\n"
        try:
            writer.write(
                render_response(
                    exc.status, body, headers=exc.headers,
                    keep_alive=keep_alive,
                )
            )
            await writer.drain()
        except (ConnectionError, OSError):
            self.stats.disconnects += 1

    # -- routing -----------------------------------------------------------

    async def _dispatch(
        self, request: Request, reader: asyncio.StreamReader
    ) -> tuple[int, bytes, str, dict]:
        path = request.path
        if request.method == "POST":
            m = re.fullmatch(r"/v1/profiles/([^/]+)", path)
            if m:
                return await self._upload(request, reader, m.group(1))
            raise HttpError(404, f"no such endpoint {path!r}")
        if request.method != "GET":
            raise HttpError(405, f"method {request.method} not supported")
        # GET requests carry no body we would need to drain.
        if path == "/healthz":
            return 200, b'{"status": "ok"}\n', "application/json", {}
        if path == "/v1/stats":
            return self._stats_response()
        if path == "/v1/tenants":
            body = json.dumps(sorted(self.tenants), sort_keys=True).encode()
            return 200, body + b"\n", "application/json", {}
        m = re.fullmatch(r"/v1/quarantine/([^/]+)", path)
        if m:
            tenant = self._valid_tenant(m.group(1))
            body = json.dumps(
                self.quarantine.entries(tenant), sort_keys=True, indent=2
            ).encode()
            return 200, body + b"\n", "application/json", {}
        m = re.fullmatch(r"/v1/profiles/([^/]+)/(sum|flat|graph)", path)
        if m:
            return self._query(request, m.group(1), m.group(2))
        raise HttpError(404, f"no such endpoint {path!r}")

    def _valid_tenant(self, name: str) -> str:
        if not TENANT_RE.match(name):
            raise HttpError(400, f"invalid tenant name {name!r}")
        return name

    # -- the upload path ---------------------------------------------------

    async def _upload(
        self, request: Request, reader: asyncio.StreamReader, tenant_name: str
    ) -> tuple[int, bytes, str, dict]:
        tenant_name = self._valid_tenant(tenant_name)
        length = request.content_length(self.config.max_body)
        if length == 0:
            raise HttpError(400, "empty upload")
        store = self.tenant(tenant_name)
        key = request.headers.get("x-idempotency-key", "")
        if len(key) > 255:
            raise HttpError(400, "idempotency key longer than 255 bytes")

        # Front door: peek the header out of the first bytes before
        # buffering the rest of the body.
        head = await reader.readexactly(min(length, PEEK_PREFIX_LEN))
        consumed = len(head)
        if length >= PEEK_PREFIX_LEN:
            try:
                needed = peek_needed_len(head)
            except GmonFormatError as exc:
                # bad magic: this can never become a profile; refuse it
                # without buffering the declared body
                raise HttpError(400, f"not a profile data file: {exc}")
            more = min(length, needed) - consumed
            head += await reader.readexactly(more)
            consumed += more
            if length >= needed:
                try:
                    header = peek_gmon_header_bytes(head)
                except GmonFormatError:
                    # the magic was right but the header is nonsense
                    # (corruption in flight); salvage-or-quarantine
                    # territory for the worker, not a 500
                    header = None
                if header is not None:
                    upload_key = HeaderKey.of(header)
                    if (store.acc.key is not None
                            and upload_key != store.acc.key):
                        raise HttpError(
                            409,
                            f"histogram layout {upload_key.describe()} is "
                            f"incompatible with the tenant layout "
                            f"{store.acc.key.describe()}",
                        )
            # a body shorter than its own header is salvage territory:
            # let the worker decide (salvage or quarantine)
        elif head[: len(b"gmon")] != b"gmon"[: len(head)]:
            raise HttpError(400, "not a profile data file: bad magic")

        # Dedup before buffering the body when we can (a retried upload
        # races its own original here; both answers must agree).
        if key and key in store.keys:
            await _drain(reader, length - consumed)
            store.stats.duplicates += 1
            return self._outcome_response(
                Outcome("duplicate", seq=store.keys[key])
            )
        pending_token = (tenant_name, key)
        if key and pending_token in self._pending_keys:
            await _drain(reader, length - consumed)
            try:
                outcome = await asyncio.shield(
                    self._pending_keys[pending_token]
                )
            except (KeyError, HttpError, asyncio.CancelledError):
                raise HttpError(503, "original upload still in flight")
            store.stats.duplicates += 1
            return self._outcome_response(
                Outcome("duplicate", seq=outcome.seq)
            )

        # Backpressure: refuse before buffering, not after.
        if store.inflight >= self.config.queue_depth:
            raise HttpError(
                429,
                f"tenant {tenant_name} has {store.inflight} uploads queued",
                headers={"Retry-After": "1"},
            )
        if self._inflight_bytes + length > self.config.max_inflight_bytes:
            raise HttpError(
                429,
                "server over its in-flight byte budget",
                headers={"Retry-After": "2"},
            )

        body = head + await reader.readexactly(length - consumed)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        item = _WorkItem(store, body, key, future)
        store.inflight += 1
        self._inflight_bytes += len(body)
        if key:
            self._pending_keys[pending_token] = future
        try:
            await self._shard_of(tenant_name).put(item)
            outcome = await asyncio.shield(future)
        finally:
            if key:
                self._pending_keys.pop(pending_token, None)
        return self._outcome_response(outcome)

    def _outcome_response(self, outcome: Outcome) -> tuple[int, bytes, str, dict]:
        payload = {"status": outcome.status, "seq": outcome.seq}
        status = 200
        if outcome.status == "merged":
            payload["salvaged"] = outcome.salvaged
            if outcome.warnings:
                payload["warnings"] = list(outcome.warnings)
        elif outcome.status == "quarantined":
            status = 422
            payload = {
                "status": "quarantined",
                "reason": outcome.reason,
                "entry": outcome.entry,
            }
        body = json.dumps(payload, sort_keys=True).encode() + b"\n"
        return status, body, "application/json", {}

    # -- the query paths ---------------------------------------------------

    def _window_or_all(self, store: TenantStore, request: Request):
        window = request.query.get("window")
        if window is None:
            if store.acc.empty:
                raise HttpError(404, f"tenant {store.name} holds no profiles")
            return store.merged_data()
        try:
            seconds = float(window)
        except ValueError:
            raise HttpError(400, f"unparseable window {window!r}")
        if seconds <= 0:
            raise HttpError(400, "window must be positive seconds")
        data = store.window_data(seconds)
        if data is None:
            raise HttpError(
                404, f"no uploads within the last {seconds:g}s window"
            )
        return data

    def _query(
        self, request: Request, tenant_name: str, kind: str
    ) -> tuple[int, bytes, str, dict]:
        tenant_name = self._valid_tenant(tenant_name)
        store = self.tenants.get(tenant_name)
        if store is None:
            raise HttpError(404, f"unknown tenant {tenant_name!r}")
        data = self._window_or_all(store, request)
        if kind == "sum":
            from repro.gmon.format import dumps_gmon

            return 200, dumps_gmon(data), "application/octet-stream", {}
        session = self._profile_session()
        profile = session.analyze(data)
        if kind == "flat":
            from repro.report import format_flat_profile

            text = format_flat_profile(profile)
        else:
            from repro.report import format_graph_profile

            text = format_graph_profile(profile)
        if data.warnings:
            banner = "".join(
                f"warning: {w}\n" for w in data.warnings
            )
            text = banner + text
        return 200, text.encode("utf-8"), "text/plain; charset=utf-8", {}

    def _profile_session(self):
        if self.session is None:
            if self.config.image is None:
                raise HttpError(
                    409,
                    "flat/graph listings need a symbol image: start "
                    "repro-serve with --image",
                )
            from repro.pipeline import ProfileSession

            self.session = ProfileSession.from_image(self.config.image)
        return self.session

    def _stats_response(self) -> tuple[int, bytes, str, dict]:
        payload = {
            "server": self.stats.as_dict(),
            "inflight_bytes": self._inflight_bytes,
            "tenants": {
                name: store.stats_dict()
                for name, store in sorted(self.tenants.items())
            },
        }
        body = json.dumps(payload, sort_keys=True, indent=2).encode() + b"\n"
        return 200, body, "application/json", {}


async def _drain(reader: asyncio.StreamReader, n: int) -> None:
    """Consume and discard ``n`` remaining body bytes."""
    while n > 0:
        chunk = await reader.read(min(n, 64 * 1024))
        if not chunk:
            raise asyncio.IncompleteReadError(b"", n)
        n -= len(chunk)


async def run_server(config: ServeConfig, announce=None) -> None:
    """Start a server and run until cancelled (the CLI entry point)."""
    server = ReproServer(config)
    host, port = await server.start()
    if announce is not None:
        announce(host, port)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
