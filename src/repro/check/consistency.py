"""Profile-consistency checking: could this gmon come from this image?

The ``gmon`` format (:mod:`repro.gmon.format`) deliberately stores raw
addresses only; nothing in the file ties it to a particular executable.
Pair the wrong files — or corrupt the right one — and the analysis
pipeline will happily produce a confident, wrong report.  These checks
validate the pairing using the invariants the data-gathering machinery
guarantees:

* every recorded call site (``from_pc``) is the address of a CALL or
  CALLI instruction — MCOUNT derives it from the frame's return address
  minus one instruction (§3.1), so anything else means corruption or a
  mismatched image.  ``from_pc == 0`` is the file format's spontaneous
  marker and is exempt;
* every recorded callee (``self_pc``) is the entry of a *profiled*
  routine — MCOUNT records its own address, and the assembler plants it
  in the prologue slot;
* a direct CALL's operand agrees with the callee the arc records;
* histogram bounds and mass stay inside the text segment;
* a profiled routine with histogram mass has at least one recorded
  call — its prologue must have run before any of its instructions
  could be sampled (the "arc-count mass vs histogram mass" cross-check;
  the converse, calls without samples, is ordinary for cheap routines).
"""

from __future__ import annotations

from collections import defaultdict

from repro.check.diagnostics import Diagnostic, make
from repro.core.profiledata import ProfileData
from repro.machine.executable import Executable
from repro.machine.isa import INSTRUCTION_SIZE, Op


def check_arc_records(exe: Executable, data: ProfileData) -> list[Diagnostic]:
    """GP301/GP302/GP303/GP307: each arc record against the text segment."""
    diags: list[Diagnostic] = []
    for arc in data.condensed_arcs():
        callee_fn = exe.function_at(arc.self_pc)
        if (
            callee_fn is None
            or callee_fn.entry != arc.self_pc
            or not callee_fn.profiled
        ):
            if callee_fn is None:
                detail = "matches no routine"
            elif callee_fn.entry != arc.self_pc:
                detail = f"lands mid-body in '{callee_fn.name}'"
            else:
                detail = f"is unprofiled routine '{callee_fn.name}'"
            diags.append(make(
                "GP302",
                f"arc callee address {arc.self_pc:#06x} {detail}; MCOUNT "
                "only ever records a profiled routine's entry",
                address=arc.self_pc,
                routine=callee_fn.name if callee_fn else None,
            ))
        if arc.from_pc == 0:
            continue  # the file format's spontaneous-caller marker
        if arc.from_pc % INSTRUCTION_SIZE or not (
            exe.low_pc <= arc.from_pc < exe.high_pc
        ):
            diags.append(make(
                "GP303",
                f"arc call site {arc.from_pc:#06x} lies outside the text "
                f"segment [{exe.low_pc:#x}, {exe.high_pc:#x})",
                address=arc.from_pc,
            ))
            continue
        site_fn = exe.function_at(arc.from_pc)
        ins = exe.fetch(arc.from_pc)
        if ins.op not in (Op.CALL, Op.CALLI):
            diags.append(make(
                "GP301",
                f"arc call site {arc.from_pc:#06x} holds {ins.op.value}, "
                "not CALL or CALLI; the arc cannot have been recorded "
                "from this image",
                address=arc.from_pc,
                routine=site_fn.name if site_fn else None,
            ))
        elif ins.op is Op.CALL and ins.operand != arc.self_pc:
            target_fn = exe.function_at(ins.operand or 0)
            target = target_fn.name if target_fn else f"{ins.operand:#x}"
            diags.append(make(
                "GP307",
                f"arc from {arc.from_pc:#06x} records callee "
                f"{arc.self_pc:#06x} but the CALL there targets "
                f"'{target}' ({ins.operand:#x})",
                address=arc.from_pc,
                routine=site_fn.name if site_fn else None,
            ))
    return diags


def check_histogram_geometry(
    exe: Executable, data: ProfileData
) -> list[Diagnostic]:
    """GP304/GP305: the histogram fits the text segment.

    The monitor samples the program counter, so every bucket holding
    mass must cover text addresses.  Bounds merely *covering more* than
    the text segment would be survivable, but our gathering side always
    sizes the histogram to the segment, so a mismatch is a strong sign
    the gmon belongs to a different image.
    """
    diags: list[Diagnostic] = []
    hist = data.histogram
    if hist.low_pc < exe.low_pc or hist.high_pc > exe.high_pc:
        diags.append(make(
            "GP305",
            f"histogram covers [{hist.low_pc:#x}, {hist.high_pc:#x}) but "
            f"the text segment is [{exe.low_pc:#x}, {exe.high_pc:#x}); "
            "this profile likely belongs to a different executable",
        ))
    if hist.counts:
        width = hist.bucket_width
        for idx, count in enumerate(hist.counts):
            if not count:
                continue
            b_lo = hist.low_pc + idx * width
            b_hi = b_lo + width
            if b_hi <= exe.low_pc or b_lo >= exe.high_pc:
                diags.append(make(
                    "GP304",
                    f"histogram bucket {idx} holds {count} tick(s) at "
                    f"[{int(b_lo):#x}, {int(b_hi):#x}), outside the text "
                    "segment; no program counter was ever there",
                    address=int(b_lo),
                ))
    return diags


def check_mass_agreement(
    exe: Executable, data: ProfileData
) -> list[Diagnostic]:
    """GP306: histogram mass implies call-count mass for profiled code.

    A profiled routine cannot execute — and therefore cannot be sampled
    — without its MCOUNT prologue recording at least one incoming arc
    (spontaneous counts included).  A routine with at least a full
    tick's worth of apportioned samples and zero recorded calls marks
    the profile as internally inconsistent: truncated arc table, or
    data summed from mismatched runs.
    """
    self_times = data.histogram.assign_samples(exe.symbol_table())
    incoming: dict[str, int] = defaultdict(int)
    for arc in data.condensed_arcs():
        fn = exe.function_at(arc.self_pc)
        if fn is not None:
            incoming[fn.name] += arc.count
    diags: list[Diagnostic] = []
    ticks_per_sec = data.histogram.profrate
    for fn in exe.functions:
        if not fn.profiled:
            continue
        ticks = self_times.get(fn.name, 0.0) * ticks_per_sec
        if ticks >= 1.0 - 1e-9 and incoming.get(fn.name, 0) == 0:
            diags.append(make(
                "GP306",
                f"profiled routine '{fn.name}' carries {ticks:.0f} "
                "histogram tick(s) but the arc table records no call "
                "into it; its MCOUNT prologue cannot have been skipped",
                address=fn.entry, routine=fn.name,
            ))
    return diags


def consistency_passes(
    exe: Executable, data: ProfileData
) -> list[Diagnostic]:
    """All gmon-versus-executable checks, in layer order."""
    return (
        check_arc_records(exe, data)
        + check_histogram_geometry(exe, data)
        + check_mass_agreement(exe, data)
    )
