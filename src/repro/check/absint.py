"""Abstract interpretation over the VM ISA: stack effects and intervals.

Two worklist analyses over the per-routine CFGs, both deterministic:

**Stack-depth / effect analysis** (interprocedural).  Every opcode has
a fixed ``(pops, pushes)`` effect (:data:`repro.machine.isa.STACK_EFFECTS`)
except calls, whose net effect is the callee's *summary*: the depth
delta from routine entry to ``RET`` plus how far below the entry the
routine reaches (its arguments).  Summaries are solved by Kleene
iteration over the whole program — recursion converges because a
routine's base-case path defines its summary and the recursive paths
must then agree.  The verifier proves **operand-stack balance**: every
block is reached at one depth only and every ``RET`` leaves the same
delta; a violation means the routine corrupts its caller's stack.

**Constant / interval analysis** (intraprocedural).  Stack slots and
frame locals carry integer intervals; the transfer functions mirror
:meth:`repro.machine.cpu.CPU.step`.  Loop headers widen after a few
visits, so the fixpoint terminates.  The results prove branches whose
outcome never varies, blocks no concrete execution can reach (stronger
than CFG reachability — GP101's), and — combined with the natural-loop
structure — loops that provably never exit.

Frame locals are per-activation (a callee cannot touch its caller's
slots, see :class:`repro.machine.cpu.Frame`), so locals survive calls;
globals are shared and are modelled as unknown throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.cfg import RoutineCFG
from repro.machine.executable import Executable, Function
from repro.machine.isa import INSTRUCTION_SIZE, STACK_EFFECTS, Op

#: Widen a block's abstract state after this many joins at its entry.
_WIDEN_AFTER = 3

#: Fixpoint guard: the summary iteration is monotone (unknown -> known)
#: so it needs at most one pass per routine, but cap it anyway.
_MAX_SUMMARY_PASSES = 64


# --------------------------------------------------------------- stack summaries


@dataclass(frozen=True)
class StackSummary:
    """The interprocedural operand-stack effect of one routine.

    Attributes:
        delta: net depth change from entry to RET (e.g. ``0`` for a
            routine that pops one argument and pushes one result).
        reach: the lowest depth relative to the entry the routine ever
            touches (``-1`` for a one-argument routine); never positive.
    """

    delta: int
    reach: int


@dataclass
class BalanceResult:
    """Stack-balance verification of one routine.

    Attributes:
        function: the routine.
        entry_depths: depth (relative to routine entry) at each block's
            entry, for blocks where it is known and unique.
        conflicts: ``(block, depth_a, depth_b)`` triples for blocks
            reached at two different depths — the balance violation.
        ret_deltas: ``(ret_addr, delta)`` for each RET reached with a
            known depth.
        ret_conflict: True when two RETs leave different deltas.
        reach: the lowest depth relative to the entry any explored
            instruction touches (how many caller-pushed arguments the
            routine consumes); never positive.
        summary: the routine's solved :class:`StackSummary`, or None
            when no RET path has a determinable depth (infinite loops,
            HALT-only routines, paths through unresolvable calls).
    """

    function: Function
    entry_depths: dict[int, int] = field(default_factory=dict)
    conflicts: list[tuple[int, int, int]] = field(default_factory=list)
    ret_deltas: list[tuple[int, int]] = field(default_factory=list)
    ret_conflict: bool = False
    reach: int = 0
    summary: StackSummary | None = None

    @property
    def balanced(self) -> bool:
        """No join conflict and no RET-delta disagreement."""
        return not self.conflicts and not self.ret_conflict


def address_taken(exe: Executable) -> set[str]:
    """Routines whose entry address is pushed somewhere in the program —
    the candidate targets of every ``CALLI`` (the §4 crawl heuristic)."""
    names: set[str] = set()
    for ins in exe.instructions:
        if ins.op is not Op.PUSH or ins.operand is None:
            continue
        fn = exe.function_at(ins.operand)
        if fn is not None and fn.entry == ins.operand:
            names.add(fn.name)
    return names


def _call_effect(
    op: Op,
    operand: int | None,
    exe: Executable,
    summaries: dict[str, StackSummary | None],
    calli_candidates: set[str],
) -> StackSummary | None:
    """The summary-shaped effect of a CALL/CALLI, or None if unknown."""
    if op is Op.CALL:
        callee = exe.function_at(operand) if operand is not None else None
        if callee is None or callee.entry != operand:
            return None
        return summaries.get(callee.name)
    # CALLI pops the target address, then behaves like its callee; the
    # effect is known only when every candidate agrees.
    cands = sorted(calli_candidates)
    if not cands:
        return None
    effects = {summaries.get(name) for name in cands}
    if len(effects) != 1 or None in effects:
        return None
    callee_sum = effects.pop()
    return StackSummary(
        callee_sum.delta - 1, min(-1, callee_sum.reach - 1)
    )


def _analyze_depths(
    exe: Executable,
    fn: Function,
    cfg: RoutineCFG,
    summaries: dict[str, StackSummary | None],
    calli_candidates: set[str],
) -> BalanceResult:
    """One depth-flow pass over ``fn`` with the current summaries."""
    result = BalanceResult(fn)
    if cfg.entry not in cfg.blocks:
        return result
    entry_depth: dict[int, int] = {cfg.entry: 0}
    reach = 0
    work = [cfg.entry]
    seen_conflicts: set[int] = set()
    while work:
        start = work.pop(0)
        depth = entry_depth[start]
        block = cfg.blocks[start]
        known = True
        addr = block.start
        while addr < block.end:
            ins = exe.fetch(addr)
            op = ins.op
            if op in (Op.CALL, Op.CALLI):
                if op is Op.CALLI:
                    reach = min(reach, depth - 1)
                effect = _call_effect(
                    op, ins.operand, exe, summaries, calli_candidates
                )
                if effect is None:
                    known = False
                    break
                reach = min(reach, depth + effect.reach)
                depth += effect.delta
            elif op is Op.RET:
                result.ret_deltas.append((addr, depth))
                break
            else:
                pops, pushes = STACK_EFFECTS[op]
                reach = min(reach, depth - pops)
                depth += pushes - pops
            addr += INSTRUCTION_SIZE
        if not known:
            continue  # depths downstream of an unresolved call are unknown
        for succ in block.successors:
            if succ not in cfg.blocks:
                continue
            if succ in entry_depth:
                if entry_depth[succ] != depth and succ not in seen_conflicts:
                    seen_conflicts.add(succ)
                    result.conflicts.append(
                        (succ, entry_depth[succ], depth)
                    )
            else:
                entry_depth[succ] = depth
                work.append(succ)
    result.entry_depths = entry_depth
    result.reach = min(reach, 0)
    deltas = sorted({d for _addr, d in result.ret_deltas})
    if len(deltas) > 1:
        result.ret_conflict = True
    elif deltas and result.balanced:
        result.summary = StackSummary(deltas[0], min(reach, deltas[0]))
    result.conflicts.sort()
    result.ret_deltas.sort()
    return result


def stack_summaries(
    exe: Executable, cfgs: dict[str, RoutineCFG]
) -> dict[str, BalanceResult]:
    """Solve every routine's stack summary by whole-program iteration.

    Returns a :class:`BalanceResult` per routine (keyed by name).  The
    iteration is optimistic: summaries start unknown, each pass may
    determine more of them (a recursive routine's base path defines it,
    after which its recursive paths are checked for agreement), and the
    loop stops at the first pass that changes nothing.
    """
    summaries: dict[str, StackSummary | None] = {
        fn.name: None for fn in exe.functions
    }
    calli_candidates = address_taken(exe)
    results: dict[str, BalanceResult] = {}
    for _ in range(_MAX_SUMMARY_PASSES):
        changed = False
        for fn in exe.functions:
            cfg = cfgs.get(fn.name)
            if cfg is None or not cfg.blocks:
                results[fn.name] = BalanceResult(fn)
                continue
            res = _analyze_depths(exe, fn, cfg, summaries, calli_candidates)
            results[fn.name] = res
            if res.summary != summaries[fn.name]:
                summaries[fn.name] = res.summary
                changed = True
        if not changed:
            break
    return results


# ------------------------------------------------------------------- intervals


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval.  ``None`` = unbounded."""

    lo: int | None
    hi: int | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo},{hi}]"

    @property
    def constant(self) -> int | None:
        """The single value of a singleton interval, else None."""
        if self.lo is not None and self.lo == self.hi:
            return self.lo
        return None

    def contains(self, value: int) -> bool:
        """Whether ``value`` may be in the interval."""
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def join(self, other: "Interval") -> "Interval":
        """The convex hull of both intervals."""
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def widen(self, newer: "Interval") -> "Interval":
        """Standard widening: a growing bound jumps to unbounded."""
        lo = self.lo
        if newer.lo is None or (lo is not None and newer.lo < lo):
            lo = None
        hi = self.hi
        if newer.hi is None or (hi is not None and newer.hi > hi):
            hi = None
        return Interval(lo, hi)


TOP = Interval(None, None)


def _const(value: int) -> Interval:
    return Interval(value, value)


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.hi is None else a.lo - b.hi
    hi = None if a.hi is None or b.lo is None else a.hi - b.lo
    return Interval(lo, hi)


def _neg(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return Interval(lo, hi)


def _compare(op: Op, a: Interval, b: Interval) -> Interval:
    """Abstract comparison: 0, 1, or [0,1] when undecidable."""

    def lt(x: Interval, y: Interval):
        # definitely x < y / definitely not
        if x.hi is not None and y.lo is not None and x.hi < y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo >= y.hi:
            return False
        return None

    def le(x: Interval, y: Interval):
        if x.hi is not None and y.lo is not None and x.hi <= y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo > y.hi:
            return False
        return None

    def eq(x: Interval, y: Interval):
        ca, cb = x.constant, y.constant
        if ca is not None and cb is not None:
            return ca == cb
        # disjoint intervals can never be equal
        if x.hi is not None and y.lo is not None and x.hi < y.lo:
            return False
        if y.hi is not None and x.lo is not None and y.hi < x.lo:
            return False
        return None

    verdict = None
    if op is Op.LT:
        verdict = lt(a, b)
    elif op is Op.LE:
        verdict = le(a, b)
    elif op is Op.GT:
        verdict = lt(b, a)
    elif op is Op.GE:
        verdict = le(b, a)
    elif op is Op.EQ:
        verdict = eq(a, b)
    elif op is Op.NE:
        v = eq(a, b)
        verdict = None if v is None else not v
    if verdict is None:
        return Interval(0, 1)
    return _const(int(verdict))


def _mul(a: Interval, b: Interval) -> Interval:
    ca, cb = a.constant, b.constant
    if ca is not None and cb is not None:
        return _const(ca * cb)
    return TOP


def _divmod(op: Op, a: Interval, b: Interval) -> Interval:
    ca, cb = a.constant, b.constant
    if ca is not None and cb is not None and cb != 0:
        if (ca >= 0) == (cb >= 0):
            q = ca // cb
        else:
            q = ca // cb
            if q * cb != ca:
                q += 1
        return _const(q if op is Op.DIV else ca - q * cb)
    return TOP


@dataclass
class _State:
    """One abstract machine state: operand stack + frame locals."""

    stack: tuple[Interval, ...]
    locals: dict[int, Interval] = field(default_factory=dict)

    def local(self, slot: int) -> Interval:
        # Frame locals grow zero-filled on demand (CPU._local), so an
        # untouched slot is exactly 0.
        return self.locals.get(slot, _const(0))

    def copy(self) -> "_State":
        return _State(self.stack, dict(self.locals))

    def join(self, other: "_State", widen: bool) -> tuple["_State", bool]:
        """Join (or widen) two states; returns (state, changed)."""
        assert len(self.stack) == len(other.stack)
        stack = []
        changed = False
        for mine, theirs in zip(self.stack, other.stack):
            joined = mine.join(theirs)
            if widen and joined != mine:
                joined = mine.widen(joined)
            stack.append(joined)
            changed |= joined != mine
        slots = set(self.locals) | set(other.locals)
        locals_: dict[int, Interval] = {}
        for slot in slots:
            mine = self.local(slot)
            joined = mine.join(other.local(slot))
            if widen and joined != mine:
                joined = mine.widen(joined)
            locals_[slot] = joined
            changed |= joined != mine
        return _State(tuple(stack), locals_), changed


@dataclass
class BranchFact:
    """A conditional branch whose outcome the intervals decide.

    Attributes:
        address: the JZ/JNZ instruction's address.
        always_taken: True when the jump is always taken, False when it
            can never be taken.
        condition: the condition's abstract interval, rendered.
    """

    address: int
    always_taken: bool
    condition: str


@dataclass
class ValueResult:
    """Interval analysis of one routine.

    Attributes:
        function: the routine.
        reached: blocks the abstract execution reached.
        unreachable: CFG-reachable blocks the abstract execution proves
            no concrete run enters (dead branch arms), in address order.
        constant_branches: decided JZ/JNZ outcomes, in address order.
        dead_edges: CFG edges the analysis proves never taken.
        aborted: True when an unresolvable call made depths unknown and
            the analysis stopped early (results stay sound but partial).
    """

    function: Function
    reached: set[int] = field(default_factory=set)
    unreachable: list[int] = field(default_factory=list)
    constant_branches: list[BranchFact] = field(default_factory=list)
    dead_edges: set[tuple[int, int]] = field(default_factory=set)
    aborted: bool = False


def _exec_block(
    exe: Executable,
    block_start: int,
    block_end: int,
    state: _State,
    summaries: dict[str, StackSummary | None],
    calli_candidates: set[str],
) -> tuple[_State | None, Interval | None, Op | None, int | None]:
    """Abstractly execute one block.

    Returns ``(out_state, branch_condition, ender_op, ender_addr)``;
    ``out_state`` is None when an unresolved call clouds the depths.
    The branch condition is the interval popped by a terminating
    JZ/JNZ, already removed from ``out_state``.
    """
    stack = list(state.stack)
    locals_ = dict(state.locals)

    def local(slot: int) -> Interval:
        return locals_.get(slot, _const(0))

    addr = block_start
    while addr < block_end:
        ins = exe.fetch(addr)
        op = ins.op
        if op is Op.PUSH:
            stack.append(_const(ins.operand))
        elif op is Op.POP:
            stack.pop()
        elif op is Op.DUP:
            stack.append(stack[-1])
        elif op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
        elif op in (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD):
            b, a = stack.pop(), stack.pop()
            if op is Op.ADD:
                stack.append(_add(a, b))
            elif op is Op.SUB:
                stack.append(_sub(a, b))
            elif op is Op.MUL:
                stack.append(_mul(a, b))
            else:
                stack.append(_divmod(op, a, b))
        elif op is Op.NEG:
            stack.append(_neg(stack.pop()))
        elif op in (Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE):
            b, a = stack.pop(), stack.pop()
            stack.append(_compare(op, a, b))
        elif op is Op.LOAD:
            stack.append(local(ins.operand))
        elif op is Op.STORE:
            locals_[ins.operand] = stack.pop()
        elif op in (Op.GLOAD, Op.GLOADI):
            if op is Op.GLOADI:
                stack.pop()
            stack.append(TOP)  # globals are shared: unknown
        elif op is Op.GSTORE:
            stack.pop()
        elif op is Op.GSTOREI:
            stack.pop()
            stack.pop()
        elif op in (Op.JZ, Op.JNZ):
            cond = stack.pop()
            return _State(tuple(stack), locals_), cond, op, addr
        elif op in (Op.JMP, Op.RET, Op.HALT):
            return _State(tuple(stack), locals_), None, op, addr
        elif op in (Op.CALL, Op.CALLI):
            # For CALLI the effect already folds in the target-address
            # pop (see _call_effect), so the summary is applied as-is.
            effect = _call_effect(
                op, ins.operand, exe, summaries, calli_candidates
            )
            if effect is None:
                return None, None, None, None
            keep = len(stack) + effect.reach
            del stack[keep:]
            stack.extend([TOP] * (effect.delta - effect.reach))
        elif op is Op.OUT:
            stack.pop()
        else:  # NOP, WORK, MCOUNT, COUNT
            pass
        addr += INSTRUCTION_SIZE
    return _State(tuple(stack), locals_), None, None, None


def interpret_values(
    exe: Executable,
    fn: Function,
    cfg: RoutineCFG,
    balance: BalanceResult,
    summaries: dict[str, StackSummary | None],
    calli_candidates: set[str] | None = None,
) -> ValueResult:
    """Run the interval worklist over one routine.

    ``balance`` must be the routine's (clean) :class:`BalanceResult` —
    conflicted or depth-unknown routines are skipped wholesale, with
    ``aborted`` set, because stack shapes are undefined there.
    """
    result = ValueResult(fn)
    if calli_candidates is None:
        calli_candidates = address_taken(exe)
    if (
        not cfg.blocks
        or not balance.balanced
        or cfg.entry not in balance.entry_depths
    ):
        result.aborted = True
        return result

    # Arguments live on the caller's stack below the entry depth; model
    # them as |reach| unknown values so pops inside the routine resolve.
    pad = -balance.reach
    states: dict[int, _State] = {cfg.entry: _State(tuple([TOP] * pad))}
    visits: dict[int, int] = {}
    work = [cfg.entry]
    branch_sites: dict[int, tuple[Op, int]] = {}  # block -> (op, addr)
    conditions: dict[int, Interval] = {}  # block -> last seen condition

    while work:
        start = work.pop(0)
        result.reached.add(start)
        block = cfg.blocks[start]
        out = _exec_block(
            exe, block.start, block.end, states[start],
            summaries, calli_candidates,
        )
        out_state, cond, ender, ender_addr = out
        if out_state is None:
            # Unresolved call: successor depths unknown; stop exploring
            # this path but keep what we learned elsewhere.
            result.aborted = True
            for succ in block.successors:
                if succ in cfg.blocks and succ not in result.reached:
                    # propagate reachability conservatively, values TOP
                    depth = balance.entry_depths.get(succ)
                    if depth is None:
                        continue
                    top_state = _State(tuple([TOP] * (depth + pad)))
                    _enqueue(
                        states, visits, work, result, succ, top_state
                    )
            continue

        # Decide which successor edges are live.
        live: list[tuple[int, _State]] = []
        if ender in (Op.JZ, Op.JNZ) and cond is not None:
            assert ender_addr is not None
            branch_sites[start] = (ender, ender_addr)
            conditions[start] = (
                conditions[start].join(cond) if start in conditions else cond
            )
            target = exe.fetch(ender_addr).operand
            fall = block.end
            may_zero = cond.contains(0)
            may_nonzero = cond.constant != 0
            take_on_zero = ender is Op.JZ
            # A successor can be the branch target, the fall-through,
            # or (target == fall-through) both; it is live when any of
            # its roles is possible.
            for succ in sorted(set(block.successors)):
                possible = False
                if succ == target:
                    possible |= may_zero if take_on_zero else may_nonzero
                if succ == fall:
                    possible |= may_nonzero if take_on_zero else may_zero
                if possible:
                    live.append((succ, out_state))
                    # An earlier, narrower visit may have judged this
                    # edge dead; the join makes that verdict stale.
                    result.dead_edges.discard((start, succ))
                else:
                    result.dead_edges.add((start, succ))
        else:
            live = [(succ, out_state) for succ in block.successors]

        for succ, st in live:
            if succ not in cfg.blocks:
                continue
            _enqueue(states, visits, work, result, succ, st)

    for start in sorted(set(cfg.blocks) - result.reached):
        if start in cfg.reachable():
            result.unreachable.append(start)

    for block_start, (op, addr) in sorted(branch_sites.items()):
        cond = conditions[block_start]
        may_zero = cond.contains(0)
        may_nonzero = cond.constant != 0
        taken = may_zero if op is Op.JZ else may_nonzero
        not_taken = may_nonzero if op is Op.JZ else may_zero
        if taken and not_taken:
            continue  # outcome varies
        result.constant_branches.append(
            BranchFact(addr, always_taken=bool(taken), condition=str(cond))
        )
    result.dead_edges = {
        e for e in result.dead_edges if e[0] in result.reached
    }
    return result


def _enqueue(states, visits, work, result, succ, new_state) -> None:
    """Join ``new_state`` into ``succ``'s entry state; requeue on change."""
    old = states.get(succ)
    if old is None:
        states[succ] = new_state.copy()
        work.append(succ)
        return
    if len(old.stack) != len(new_state.stack):
        # Depth mismatch would have been reported by the balance pass;
        # stop here rather than corrupt the analysis.
        return
    visits[succ] = visits.get(succ, 0) + 1
    widen = visits[succ] >= _WIDEN_AFTER
    joined, changed = old.join(new_state, widen)
    if changed:
        states[succ] = joined
        if succ not in work:
            work.append(succ)
