"""Static analysis passes over the CFGs and the static call graph.

Each pass takes an :class:`~repro.machine.executable.Executable` (and,
for the profile-aware passes, a :class:`~repro.core.ProfileData`) and
returns :class:`~repro.check.diagnostics.Diagnostic` records.  The
passes deliberately over-report nothing on clean programs: every canned
program in :mod:`repro.machine.programs` — profiled or not — lints
clean, and the test suite enforces that as a zero-false-positive gate.

The static call graph used by the reachability passes is the §4 crawl
(:func:`repro.machine.crawl.static_arcs`): exact for direct ``CALL``
instructions, over-approximate for ``CALLI`` via the ``PUSH &f``
address-taken heuristic.  Where that heuristic comes up empty the
under-approximation itself is reported (GP104), mirroring how binary
call-graph recovery tools surface unresolved indirect calls.
"""

from __future__ import annotations

from collections import defaultdict

from repro.check.cfg import build_cfg
from repro.check.diagnostics import Diagnostic, make
from repro.core.arcs import symbolize_arcs
from repro.core.callgraph import Arc, CallGraph
from repro.core.cycles import number_graph, strongly_connected_components
from repro.core.profiledata import ProfileData
from repro.machine.crawl import static_arcs
from repro.machine.executable import Executable
from repro.machine.isa import INSTRUCTION_SIZE, Op


# --------------------------------------------------------------------- GP101/103/108


def check_control_flow(exe: Executable) -> list[Diagnostic]:
    """Per-routine CFG findings: unreachable code, missing returns,
    cross-routine branches.

    * GP101 — a basic block no path from the routine entry reaches;
    * GP103 — a *reachable* block whose control can run past the end of
      the routine body (execution would continue into whatever routine
      is laid out next, corrupting both behaviour and attribution);
    * GP108 — a reachable JMP/JZ/JNZ whose target is outside the
      routine body (time spent there is charged to the wrong routine).

    Unreachable blocks are not additionally checked for termination:
    GP101 already flags them, and dead code cannot fall anywhere.
    """
    diags: list[Diagnostic] = []
    for fn in exe.functions:
        cfg = build_cfg(exe, fn)
        if fn.entry >= fn.end:
            diags.append(make(
                "GP103",
                f"routine '{fn.name}' is empty: a call to it runs straight "
                "into the next routine's code",
                address=fn.entry, routine=fn.name,
            ))
            continue
        reached = cfg.reachable()
        for block in cfg.unreachable_blocks():
            diags.append(make(
                "GP101",
                f"basic block at {block.start:#06x} in '{fn.name}' is "
                "unreachable from the routine entry",
                address=block.start, routine=fn.name,
            ))
        for addr in sorted(reached):
            block = cfg.blocks[addr]
            if block.falls_off_end:
                diags.append(make(
                    "GP103",
                    f"control in '{fn.name}' can run past the routine's "
                    f"last instruction at {block.end - 4:#06x} without "
                    "RET or HALT",
                    address=block.end - 4, routine=fn.name,
                ))
        for branch_addr, target in cfg.escaping_branches:
            holder = next(
                (b for b in reached if branch_addr in cfg.blocks[b]), None
            )
            if holder is None:
                continue  # the branch sits in dead code: GP101 covers it
            victim = exe.function_at(target)
            where = f"'{victim.name}'" if victim else "unmapped text"
            diags.append(make(
                "GP108",
                f"branch at {branch_addr:#06x} in '{fn.name}' jumps into "
                f"{where} at {target:#06x}; sampled time there will be "
                f"charged to the wrong routine",
                address=branch_addr, routine=fn.name,
            ))
    return diags


# ----------------------------------------------------------------------------- GP102


def _static_reachable(exe: Executable) -> set[str]:
    """Routines reachable from the program entry in the static graph.

    Uses the §4 crawl: direct CALL arcs plus address-taken (``PUSH &f``)
    arcs, so functional parameters keep their targets alive.
    """
    children: dict[str, set[str]] = defaultdict(set)
    for caller, callee in static_arcs(exe):
        children[caller].add(callee)
    entry_fn = exe.function_at(exe.entry_point)
    if entry_fn is None:
        return {f.name for f in exe.functions}  # no entry: nothing is dead
    seen: set[str] = set()
    work = [entry_fn.name]
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        work.extend(children[name])
    return seen


def check_dead_routines(exe: Executable) -> list[Diagnostic]:
    """GP102: routines the program entry can never reach, statically.

    The flat profile's ``-z`` listing shows what one *execution* missed;
    this is the stronger static claim — no execution of this image can
    reach the routine (modulo indirect calls the address-taken
    heuristic cannot see, which GP104 reports separately).
    """
    reachable = _static_reachable(exe)
    return [
        make(
            "GP102",
            f"routine '{fn.name}' is unreachable from the entry routine "
            "in the static call graph (never CALLed, address never "
            "taken)",
            address=fn.entry, routine=fn.name,
        )
        for fn in exe.functions
        if fn.name not in reachable
    ]


# ----------------------------------------------------------------------------- GP104


def check_indirect_calls(exe: Executable) -> list[Diagnostic]:
    """GP104: CALLI sites with no statically-apparent candidate target.

    The crawler's address-taken heuristic over-approximates indirect
    calls from ``PUSH &f`` evidence; when a program contains CALLI but
    *no* function's address is ever taken, the static graph is known to
    under-approximate and downstream passes (GP102, GP105) lose their
    guarantees.  Each such call site is reported once.
    """
    address_taken = {
        ins.operand
        for ins in exe.instructions
        if ins.op is Op.PUSH and _is_entry_address(exe, ins.operand)
    }
    if address_taken:
        return []
    diags: list[Diagnostic] = []
    for i, ins in enumerate(exe.instructions):
        if ins.op is not Op.CALLI:
            continue
        addr = i * INSTRUCTION_SIZE
        fn = exe.function_at(addr)
        diags.append(make(
            "GP104",
            f"indirect call at {addr:#06x} has no statically-apparent "
            "candidate targets (no PUSH of any function address in the "
            "program); the static call graph under-approximates here",
            address=addr, routine=fn.name if fn else None,
        ))
    return diags


def _is_entry_address(exe: Executable, value: int | None) -> bool:
    """Whether ``value`` is the entry address of some routine."""
    if value is None:
        return False
    fn = exe.function_at(value)
    return fn is not None and fn.entry == value


# ----------------------------------------------------------------------------- GP2xx


def check_instrumentation(exe: Executable) -> list[Diagnostic]:
    """GP201–GP204: MCOUNT prologues are present, unique, and in place.

    §3: the compiler "inserts calls to a monitoring routine in the
    prologue for each routine".  For the VM that contract is: a routine
    marked ``profiled`` has exactly one MCOUNT, and it is the routine's
    first instruction (the monitoring routine derives the callee from
    the MCOUNT's own address, so a misplaced one mis-records arcs);
    a routine not marked profiled has none.
    """
    diags: list[Diagnostic] = []
    for fn in exe.functions:
        mcount_addrs = [
            addr
            for addr in range(fn.entry, fn.end, INSTRUCTION_SIZE)
            if exe.fetch(addr).op is Op.MCOUNT
        ]
        if fn.profiled:
            if not mcount_addrs:
                diags.append(make(
                    "GP201",
                    f"routine '{fn.name}' is marked profiled but has no "
                    "MCOUNT prologue; its calls will never be recorded",
                    address=fn.entry, routine=fn.name,
                ))
                continue
            if len(mcount_addrs) > 1:
                for extra in mcount_addrs[1:]:
                    diags.append(make(
                        "GP202",
                        f"routine '{fn.name}' has a second MCOUNT at "
                        f"{extra:#06x}; each activation would be counted "
                        "more than once",
                        address=extra, routine=fn.name,
                    ))
            if mcount_addrs[0] != fn.entry:
                diags.append(make(
                    "GP203",
                    f"MCOUNT in '{fn.name}' sits at {mcount_addrs[0]:#06x}, "
                    f"not in the prologue slot {fn.entry:#06x}; recorded "
                    "callee addresses will not match the routine entry",
                    address=mcount_addrs[0], routine=fn.name,
                ))
        else:
            for addr in mcount_addrs:
                diags.append(make(
                    "GP204",
                    f"routine '{fn.name}' is not marked profiled yet "
                    f"contains an MCOUNT at {addr:#06x}",
                    address=addr, routine=fn.name,
                ))
    return diags


# ------------------------------------------------------------------- GP105 / GP106


def _dynamic_graph(exe: Executable, data: ProfileData) -> CallGraph:
    """The routine-level dynamic call graph recorded in ``data``."""
    arcs = symbolize_arcs(data.condensed_arcs(), exe.symbol_table())
    return CallGraph(arcs)


def check_cycle_agreement(
    exe: Executable, data: ProfileData
) -> list[Diagnostic]:
    """GP105: every dynamic cycle should be statically apparent.

    §4 collapses strongly-connected components of the *dynamic* graph;
    the static graph, being an over-approximation of the same program,
    must place each dynamic cycle's members inside a single static SCC.
    A split cycle means an arc exists at run time that the crawl cannot
    see — an indirect call whose target address is computed, not
    pushed — and static results (GP102 among them) are unreliable for
    those routines.
    """
    numbered = number_graph(_dynamic_graph(exe, data))
    if not numbered.cycles:
        return []
    static_graph = CallGraph(extra_nodes=(fn.name for fn in exe.functions))
    for caller, callee in static_arcs(exe):
        static_graph.add_arc(Arc(caller, callee, 0))
    scc_of: dict[str, int] = {}
    for i, comp in enumerate(strongly_connected_components(static_graph)):
        for member in comp:
            scc_of[member] = i
    diags: list[Diagnostic] = []
    for cycle in numbered.cycles:
        sccs = {scc_of.get(m) for m in cycle.members}
        if len(sccs) > 1 or None in sccs:
            members = ", ".join(cycle.members)
            diags.append(make(
                "GP105",
                f"dynamic cycle {{{members}}} is not a cycle of the "
                "static call graph; an indirect call invisible to the "
                "crawl closes it",
                routine=cycle.members[0],
            ))
    return diags


def check_dead_but_called(
    exe: Executable, data: ProfileData
) -> list[Diagnostic]:
    """GP106: the static/dynamic cross-check on dead routines.

    A routine GP102 declares statically dead that nonetheless shows
    dynamic calls in the profile is direct evidence the static graph
    under-approximates (the inverse — statically reachable but never
    called — is ordinary and is what the flat profile's ``-z`` listing
    is for).
    """
    reachable = _static_reachable(exe)
    called: dict[str, int] = defaultdict(int)
    for arc in data.condensed_arcs():
        fn = exe.function_at(arc.self_pc)
        if fn is not None and arc.count > 0:
            called[fn.name] += arc.count
    return [
        make(
            "GP106",
            f"routine '{fn.name}' is statically unreachable yet the "
            f"profile records {called[fn.name]} call(s) into it; the "
            "static call graph under-approximates",
            address=fn.entry, routine=fn.name,
        )
        for fn in exe.functions
        if fn.name not in reachable and called.get(fn.name, 0) > 0
    ]


# ------------------------------------------------------------------------ aggregate


def static_passes(exe: Executable) -> list[Diagnostic]:
    """All executable-only passes, in layer order."""
    diags: list[Diagnostic] = []
    diags += check_control_flow(exe)
    diags += check_dead_routines(exe)
    diags += check_indirect_calls(exe)
    diags += check_instrumentation(exe)
    return diags


def profile_passes(exe: Executable, data: ProfileData) -> list[Diagnostic]:
    """The static-vs-dynamic cross-checks (needs profile data)."""
    return check_cycle_agreement(exe, data) + check_dead_but_called(exe, data)
