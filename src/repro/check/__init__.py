"""repro.check — static analysis and profile-consistency linting.

The "gprof-lint" subsystem.  §4 of the paper already crawls the
executable image for statically-apparent calls; this package grows that
single heuristic into a proper static-analysis layer:

* :mod:`repro.check.cfg` — per-routine basic-block control-flow graphs
  recovered from the VM text segment;
* :mod:`repro.check.passes` — analysis passes over the CFGs and the
  static call graph (unreachable code, dead routines, MCOUNT
  instrumentation verification, indirect-call under-approximation,
  static-vs-dynamic cycle agreement);
* :mod:`repro.check.consistency` — validation of a ``gmon`` profile
  against the executable that allegedly produced it;
* :mod:`repro.check.salvage` — GP4xx diagnostics translating a
  :class:`~repro.resilience.SalvageReport` (what the salvaging gmon
  reader dropped or repaired) into check findings;
* :mod:`repro.check.pipelinelint` — GP5xx diagnostics from running the
  staged analysis pipeline with tracing on and checking its stage
  output invariants (topological descent, time conservation);
* :mod:`repro.check.diagnostics` — the shared :class:`Diagnostic`
  record (stable ``GPnnn`` codes) with text and JSON renderers.

Use :func:`check_executable` for the whole battery, or call individual
passes for surgical use.  The ``repro-check`` CLI
(:mod:`repro.cli.check_cli`) and ``repro-gprof --lint`` are thin
wrappers over this module.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.check.consistency import consistency_passes
from repro.check.diagnostics import (
    CODES,
    CheckReport,
    Diagnostic,
    Severity,
    make,
)
from repro.check.passes import profile_passes, static_passes
from repro.check.pipelinelint import pipeline_passes
from repro.check.salvage import degradation_passes, salvage_passes
from repro.core.profiledata import ProfileData
from repro.machine.executable import Executable

__all__ = [
    "CODES",
    "CheckReport",
    "Diagnostic",
    "Severity",
    "check_executable",
    "consistency_passes",
    "degradation_passes",
    "make",
    "pipeline_passes",
    "profile_passes",
    "salvage_passes",
    "static_passes",
]


def check_executable(
    exe: Executable,
    profiles: Sequence[ProfileData] = (),
    gmon_labels: Iterable[str] = (),
) -> CheckReport:
    """Run every applicable check over ``exe`` (and optional profiles).

    Arguments:
        exe: the executable image to lint.
        profiles: profile data sets to validate against the image; each
            gets the full consistency battery plus the static-vs-dynamic
            cross-checks.
        gmon_labels: display labels for the profiles (file names in the
            CLI); padded with indices when shorter than ``profiles``.

    Returns a :class:`CheckReport` with deterministically-ordered
    diagnostics.  A clean program yields an empty report.
    """
    labels = list(gmon_labels)
    while len(labels) < len(profiles):
        labels.append(f"profile[{len(labels)}]")
    diagnostics = static_passes(exe)
    symbols = exe.symbol_table() if profiles else None
    for data in profiles:
        diagnostics += consistency_passes(exe, data)
        diagnostics += profile_passes(exe, data)
        diagnostics += pipeline_passes(symbols, data)
    return CheckReport(exe.name, diagnostics, labels[: len(profiles)])
