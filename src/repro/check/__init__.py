"""repro.check — static analysis and profile-consistency linting.

The "gprof-lint" subsystem.  §4 of the paper already crawls the
executable image for statically-apparent calls; this package grows that
single heuristic into a proper static-analysis layer:

* :mod:`repro.check.cfg` — per-routine basic-block control-flow graphs
  recovered from the VM text segment;
* :mod:`repro.check.dominators` — dominator trees (Cooper–Harvey–
  Kennedy) and natural loops with nesting depths over those CFGs;
* :mod:`repro.check.absint` — a worklist abstract interpreter over the
  ISA: interprocedural operand-stack balance plus an interval domain
  for constant branches and unreachable code;
* :mod:`repro.check.staticprofile` — the Wu/Larus-style static
  execution-frequency estimate: the *predicted* profile;
* :mod:`repro.check.flow` — the GP6xx static battery orchestrating the
  four modules above (``repro-check --flow``);
* :mod:`repro.check.expect` — the predicted profile confronted with a
  measured gmon file (``repro-gprof --expect``), plus §6 sampling
  confidence for the flat profile;
* :mod:`repro.check.passes` — analysis passes over the CFGs and the
  static call graph (unreachable code, dead routines, MCOUNT
  instrumentation verification, indirect-call under-approximation,
  static-vs-dynamic cycle agreement);
* :mod:`repro.check.consistency` — validation of a ``gmon`` profile
  against the executable that allegedly produced it;
* :mod:`repro.check.salvage` — GP4xx diagnostics translating a
  :class:`~repro.resilience.SalvageReport` (what the salvaging gmon
  reader dropped or repaired) into check findings;
* :mod:`repro.check.pipelinelint` — GP5xx diagnostics from running the
  staged analysis pipeline with tracing on and checking its stage
  output invariants (topological descent, time conservation);
* :mod:`repro.check.diagnostics` — the shared :class:`Diagnostic`
  record (stable ``GPnnn`` codes) with text and JSON renderers.

Use :func:`check_executable` for the whole battery, or call individual
passes for surgical use.  The ``repro-check`` CLI
(:mod:`repro.cli.check_cli`) and ``repro-gprof --lint`` are thin
wrappers over this module.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.check.consistency import consistency_passes
from repro.check.diagnostics import (
    CODES,
    CheckReport,
    Diagnostic,
    Severity,
    make,
)
from repro.check.expect import expect_passes, sampling_confidence
from repro.check.flow import FlowAnalysis, analyze_flow, flow_passes
from repro.check.passes import profile_passes, static_passes
from repro.check.pipelinelint import pipeline_passes
from repro.check.salvage import degradation_passes, salvage_passes
from repro.core.profiledata import ProfileData
from repro.machine.executable import Executable

__all__ = [
    "CODES",
    "CheckReport",
    "Diagnostic",
    "FlowAnalysis",
    "Severity",
    "analyze_flow",
    "check_executable",
    "consistency_passes",
    "degradation_passes",
    "expect_passes",
    "flow_passes",
    "make",
    "pipeline_passes",
    "profile_passes",
    "salvage_passes",
    "sampling_confidence",
    "static_passes",
]


def check_executable(
    exe: Executable,
    profiles: Sequence[ProfileData] = (),
    gmon_labels: Iterable[str] = (),
    flow: bool = False,
    flow_analysis: FlowAnalysis | None = None,
) -> CheckReport:
    """Run every applicable check over ``exe`` (and optional profiles).

    Arguments:
        exe: the executable image to lint.
        profiles: profile data sets to validate against the image; each
            gets the full consistency battery plus the static-vs-dynamic
            cross-checks.
        gmon_labels: display labels for the profiles (file names in the
            CLI); padded with indices when shorter than ``profiles``.
        flow: also run the dataflow battery (GP601–GP605) and, for each
            profile, the static-vs-measured expectation checks
            (GP610–GP612).
        flow_analysis: an already-computed :class:`FlowAnalysis` to
            reuse (implies ``flow``); :meth:`ProfileSession.lint`
            passes its cache-memoized one.

    Returns a :class:`CheckReport` with deterministically-ordered
    diagnostics: executable-level findings first, then each profile's
    findings tagged with (and grouped by) its label.  A clean program
    yields an empty report.
    """
    labels = list(gmon_labels)
    while len(labels) < len(profiles):
        labels.append(f"profile[{len(labels)}]")
    diagnostics = static_passes(exe)
    if flow_analysis is not None:
        flow = True
    if flow:
        if flow_analysis is None:
            flow_analysis = analyze_flow(exe)
        diagnostics += flow_passes(exe, flow_analysis)
    symbols = exe.symbol_table() if profiles else None
    for label, data in zip(labels, profiles):
        per_profile = consistency_passes(exe, data)
        per_profile += profile_passes(exe, data)
        per_profile += pipeline_passes(symbols, data)
        if flow_analysis is not None:
            per_profile += expect_passes(exe, data, flow_analysis)
        diagnostics += [
            dataclasses.replace(d, source=label) for d in per_profile
        ]
    return CheckReport(exe.name, diagnostics, labels[: len(profiles)])
