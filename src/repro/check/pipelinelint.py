"""GP5xx: lint the analysis pipeline's own stage invariants.

The staged §4 pipeline (:mod:`repro.pipeline`) makes strong promises
about its intermediates: every stage runs in registered order, the
topological numbering is a contiguous descent (Figure 1), and the
time-propagation recurrence never loses time or propagates less than a
routine's own self time.  On healthy data these hold by construction —
which is exactly why they are worth checking: a GP5xx finding means the
*analysis* is wrong, not the user's program, and the CI self-lint gate
should go red.

:func:`pipeline_passes` runs the pipeline with tracing enabled and
applies every checker.  The individual checkers
(:func:`stage_order_findings`, :func:`topology_findings`,
:func:`propagation_findings`, :func:`conservation_findings`) take the
already-built artifacts, so tests can feed them doctored inputs.
"""

from __future__ import annotations

from repro.check.diagnostics import Diagnostic, make
from repro.core.cycles import NumberedGraph, condensation_arcs

#: Tolerance for floating-point time comparisons.  Propagation sums
#: tick-derived floats; anything past this is a real violation, not
#: rounding.
_EPSILON = 1e-9


def stage_order_findings(trace) -> list[Diagnostic]:
    """GP504: the trace must list the registered stages, in order.

    Cached stages still appear in the trace (with their recorded
    counters), so a healthy run — cold or warm — always matches the
    registry exactly.
    """
    from repro.pipeline.stages import STAGES

    expected = [s.name for s in STAGES]
    actual = trace.stage_names()
    if actual == expected:
        return []
    return [
        make(
            "GP504",
            f"pipeline ran stages {actual} but the registry orders them "
            f"{expected}",
        )
    ]


def topology_findings(numbered: NumberedGraph) -> list[Diagnostic]:
    """GP502 + GP503: contiguous numbers, every arc descending.

    §4 propagates in increasing topological number, so the numbering
    must be a contiguous run and every condensation arc must go from a
    higher-numbered caller to a lower-numbered callee (Figure 1).
    Static augmentation *after* numbering is the classic way to break
    this — a zero-count arc completes a cycle the numbering never saw.
    """
    findings: list[Diagnostic] = []
    numbers = sorted(numbered.topo_number[rep] for rep in numbered.topo_order)
    if numbers:
        lo = numbers[0]
        if numbers != list(range(lo, lo + len(numbers))):
            findings.append(
                make(
                    "GP502",
                    f"topological numbers {numbers} are not the contiguous "
                    f"run [{lo}..{lo + len(numbers) - 1}]",
                )
            )
    number = numbered.topo_number
    for src, dst in sorted(condensation_arcs(numbered)):
        if number[src] <= number[dst]:
            findings.append(
                make(
                    "GP503",
                    f"arc {src} (#{number[src]}) -> {dst} (#{number[dst]}) "
                    "does not descend in topological number",
                    routine=src,
                )
            )
    return findings


def propagation_findings(prop) -> list[Diagnostic]:
    """GP501: total time must never undershoot self time.

    ``total_time = self_time + child_time`` with non-negative inherited
    child time, so a representative whose total dips below its own self
    time means the recurrence dropped (or negated) inherited seconds.
    """
    findings: list[Diagnostic] = []
    for rep in prop.numbered.topo_order:
        self_t = prop.self_time.get(rep, 0.0)
        total_t = prop.total_time.get(rep, 0.0)
        if total_t < self_t - _EPSILON:
            findings.append(
                make(
                    "GP501",
                    f"{rep}: propagated total {total_t:.6f}s is less than "
                    f"self time {self_t:.6f}s",
                    routine=rep,
                )
            )
    return findings


def conservation_findings(prop) -> list[Diagnostic]:
    """GP505: propagation must conserve the sampled time.

    The recurrence only moves seconds up the graph; summing every
    representative's self time must reproduce the total program time
    the percentages are computed against.
    """
    sampled = sum(prop.self_time.values())
    total = prop.total_program_time
    if abs(sampled - total) > max(_EPSILON, 1e-9 * max(abs(total), 1.0)):
        return [
            make(
                "GP505",
                f"representatives' self times sum to {sampled:.6f}s but "
                f"total program time is {total:.6f}s",
            )
        ]
    return []


def pipeline_passes(symbols, data, options=None, cache=None) -> list[Diagnostic]:
    """Run the pipeline with tracing on; flag violated stage invariants.

    Arguments:
        symbols: the image's symbol table.
        data: the profile data to analyze.
        options: optional :class:`~repro.core.AnalysisOptions`.
        cache: optional :class:`~repro.pipeline.AnalysisCache`; invariants
            are checked identically on cached intermediates.
    """
    from repro.core import analyze
    from repro.pipeline import PipelineTrace

    trace = PipelineTrace()
    profile = analyze(data, symbols, options, trace=trace, cache=cache)
    findings = stage_order_findings(trace)
    findings += topology_findings(profile.numbered)
    findings += propagation_findings(profile.propagation)
    findings += conservation_findings(profile.propagation)
    return findings
