"""Diagnostics: the shared currency of every ``repro.check`` pass.

Each analysis pass emits :class:`Diagnostic` records — a stable code
(``GP101``), a severity, an optional address/routine location, and a
human message — rather than printing directly, so one finding can be
rendered as a terminal line, a JSON object, or a CI annotation without
the pass knowing (or caring) which.

Codes are grouped the way the checks are layered:

* ``GP1xx`` — static structure: control-flow and call-graph findings
  derived from the executable image alone;
* ``GP2xx`` — instrumentation: the monitoring prologues the assembler
  plants (§3 of the paper) are present, unique, and in the right slot;
* ``GP3xx`` — profile consistency: a ``gmon`` file really could have
  been produced by this executable;
* ``GP4xx`` — salvage: what the salvaging gmon reader
  (:mod:`repro.resilience`) had to drop or repair to recover a
  truncated/corrupted profile data file;
* ``GP5xx`` — pipeline invariants: the staged §4 analysis
  (:mod:`repro.pipeline`) ran with tracing on and one of its stage
  output contracts did not hold (these indicate a bug in the analysis
  itself, not in the user's program or data).

Codes are append-only: once published, a code keeps its meaning so that
suppressions and regression baselines stay valid across versions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator


class Severity(Enum):
    """How bad a finding is.

    ``ERROR`` findings mean the artifact is structurally wrong (a
    profile that cannot be trusted, instrumentation that will drop
    arcs); ``WARNING`` findings are over-approximation gaps and likely
    programmer mistakes; ``INFO`` is advisory.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Orderable badness: higher is worse."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]


#: Registry of every diagnostic code: severity and a one-line summary.
#: ``repro-check --list-codes`` prints this table; the tutorial's
#: "Static analysis & lint" section documents each entry.
CODES: dict[str, tuple[Severity, str]] = {
    # -- GP1xx: static structure ------------------------------------------------
    "GP101": (Severity.WARNING,
              "unreachable code: basic block cannot be reached from its "
              "routine's entry"),
    "GP102": (Severity.WARNING,
              "dead routine: unreachable from the program entry point in "
              "the static call graph"),
    "GP103": (Severity.ERROR,
              "missing return: control can run past the end of the "
              "routine body"),
    "GP104": (Severity.WARNING,
              "opaque indirect call: CALLI with no statically-apparent "
              "candidate targets anywhere in the program"),
    "GP105": (Severity.WARNING,
              "hidden cycle: dynamic call-graph cycle is not contained in "
              "one static strongly-connected component"),
    "GP106": (Severity.WARNING,
              "phantom call target: statically-dead routine was "
              "dynamically called"),
    "GP108": (Severity.WARNING,
              "cross-routine branch: jump targets another routine's body"),
    # -- GP2xx: instrumentation -------------------------------------------------
    "GP201": (Severity.ERROR,
              "missing MCOUNT: profiled routine has no monitoring "
              "prologue"),
    "GP202": (Severity.ERROR,
              "duplicate MCOUNT: routine contains more than one "
              "monitoring prologue"),
    "GP203": (Severity.ERROR,
              "misplaced MCOUNT: monitoring prologue is not the routine's "
              "first instruction"),
    "GP204": (Severity.ERROR,
              "stray MCOUNT: instrumentation in a routine not marked "
              "profiled"),
    # -- GP3xx: profile consistency ---------------------------------------------
    "GP301": (Severity.ERROR,
              "bad call site: arc's from_pc is not a CALL or CALLI "
              "instruction"),
    "GP302": (Severity.ERROR,
              "bad callee: arc's self_pc is not the entry of a profiled "
              "routine"),
    "GP303": (Severity.ERROR,
              "call site outside the text segment"),
    "GP304": (Severity.ERROR,
              "histogram mass outside the text segment"),
    "GP305": (Severity.ERROR,
              "histogram bounds extend beyond the text segment"),
    "GP306": (Severity.WARNING,
              "sampled but never called: profiled routine has histogram "
              "mass but zero recorded calls"),
    "GP307": (Severity.ERROR,
              "call target mismatch: direct CALL's operand disagrees with "
              "the arc's recorded callee"),
    # -- GP4xx: salvage ----------------------------------------------------------
    "GP401": (Severity.ERROR,
              "unsalvageable profile data: no structurally-valid prefix "
              "(bad magic)"),
    "GP402": (Severity.ERROR,
              "salvaged profile: histogram data dropped (truncated or "
              "impossible header)"),
    "GP403": (Severity.ERROR,
              "salvaged profile: arc records dropped (truncated arc "
              "table)"),
    "GP404": (Severity.ERROR,
              "salvaged profile: header or comment truncated; profile "
              "body lost"),
    "GP405": (Severity.WARNING,
              "salvaged profile: anomaly repaired or tolerated (bad "
              "comment bytes, trailing garbage, impossible profrate)"),
    "GP406": (Severity.WARNING,
              "profile declares runs == 0; treated as a single run"),
    # -- GP5xx: pipeline invariants ----------------------------------------------
    "GP501": (Severity.ERROR,
              "pipeline invariant violated: propagated total time is "
              "smaller than self time"),
    "GP502": (Severity.ERROR,
              "pipeline invariant violated: topological numbers are not "
              "contiguous"),
    "GP503": (Severity.ERROR,
              "pipeline invariant violated: call graph arc does not "
              "descend in topological number"),
    "GP504": (Severity.ERROR,
              "pipeline invariant violated: stages ran out of registered "
              "order"),
    "GP505": (Severity.WARNING,
              "pipeline invariant violated: propagated time is not "
              "conserved across the graph"),
    # -- GP6xx: dataflow analysis and static-vs-measured expectation --------------
    "GP601": (Severity.WARNING,
              "constant branch: conditional jump whose outcome provably "
              "never varies"),
    "GP602": (Severity.ERROR,
              "stack imbalance: operand-stack depth conflicts between "
              "paths, or RET paths disagree on the net effect"),
    "GP603": (Severity.WARNING,
              "provably-infinite loop: no live exit edge, return, or "
              "halt anywhere in the loop body"),
    "GP604": (Severity.WARNING,
              "irreducible control flow: retreating edge enters a loop "
              "body past its header"),
    "GP605": (Severity.WARNING,
              "statically-unreachable code: interval analysis proves no "
              "execution enters the block"),
    "GP610": (Severity.ERROR,
              "impossible arc: measured call has no statically-possible "
              "call site"),
    "GP611": (Severity.ERROR,
              "samples in dead code: histogram mass inside a "
              "statically-unreachable block"),
    "GP612": (Severity.WARNING,
              "call-count contradiction: measured calls exceed static "
              "call-site multiplicity times caller activations"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis pass.

    Attributes:
        code: stable identifier from :data:`CODES` (``GP101``...).
        severity: how bad the finding is.
        message: human-readable description with the specifics.
        address: text address the finding anchors to, or None for
            program-level findings.
        routine: routine name the finding concerns, or None.
        source: the artifact the finding is *about* — a gmon file label
            for profile-derived findings, None for findings about the
            executable itself.
    """

    code: str
    severity: Severity
    message: str
    address: int | None = None
    routine: str | None = None
    source: str | None = None

    def sort_key(self) -> tuple:
        """Deterministic presentation order: (file, address, code).

        Source-less (executable-level) findings sort first, then each
        profile's findings grouped by label — so the listing is stable
        no matter in which order the passes were registered or the
        gmon files were named on the command line.
        """
        return (
            self.source or "",
            self.address if self.address is not None else -1,
            self.code,
            self.routine or "",
            self.message,
        )

    def render(self) -> str:
        """One terminal line, gcc-style: location, severity, code, text."""
        where = []
        if self.source:
            where.append(self.source)
        if self.address is not None:
            where.append(f"{self.address:#06x}")
        if self.routine:
            where.append(self.routine)
        loc = ":".join(where)
        prefix = f"{loc}: " if loc else ""
        return f"{prefix}{self.severity.value}: {self.code}: {self.message}"

    def to_dict(self) -> dict:
        """JSON-serializable form (stable field set)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "address": self.address,
            "routine": self.routine,
            "source": self.source,
            "message": self.message,
        }


def make(
    code: str,
    message: str,
    address: int | None = None,
    routine: str | None = None,
    source: str | None = None,
) -> Diagnostic:
    """Build a diagnostic, taking the severity from the code registry."""
    severity, _summary = CODES[code]
    return Diagnostic(code, severity, message, address, routine, source)


@dataclass
class CheckReport:
    """Everything one ``repro-check`` invocation found.

    Attributes:
        program: name of the checked executable.
        diagnostics: the findings, in deterministic order.
        gmon_files: labels of the profile data files that were checked
            (empty for a static-only run).
    """

    program: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    gmon_files: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.diagnostics = sorted(self.diagnostics, key=Diagnostic.sort_key)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def count(self, severity: Severity) -> int:
        """Number of findings at exactly ``severity``."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        """Number of error-severity findings."""
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        """Number of warning-severity findings."""
        return self.count(Severity.WARNING)

    def codes(self) -> set[str]:
        """The set of distinct codes that fired."""
        return {d.code for d in self.diagnostics}

    def render_text(self) -> str:
        """The terminal listing: one line per finding plus a summary."""
        lines = [f"repro-check: {self.program}"]
        for d in self.diagnostics:
            lines.append("  " + d.render())
        if not self.diagnostics:
            lines.append("  no problems found")
        lines.append(
            f"  {self.errors} error(s), {self.warnings} warning(s), "
            f"{self.count(Severity.INFO)} note(s)"
        )
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-serializable report (the machine interface)."""
        return {
            "format": "repro-check-1",
            "program": self.program,
            "gmon_files": list(self.gmon_files),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.count(Severity.INFO),
            },
        }

    def render_json(self) -> str:
        """Deterministic JSON: sorted keys, sorted diagnostics."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


def merge_reports(program: str, parts: Iterable[CheckReport]) -> CheckReport:
    """Combine several pass reports over the same program into one."""
    diagnostics: list[Diagnostic] = []
    gmon_files: list[str] = []
    for part in parts:
        diagnostics.extend(part.diagnostics)
        gmon_files.extend(part.gmon_files)
    return CheckReport(program, diagnostics, gmon_files)
