"""GP4xx: diagnostics for salvaged profile data.

The salvaging gmon reader (:mod:`repro.gmon` with ``mode="salvage"``)
records everything it dropped or repaired in a
:class:`~repro.resilience.SalvageReport`.  This pass translates that
report into the check subsystem's diagnostic currency, so ``repro-check
--salvage`` and CI gates can treat recovered-but-degraded profiles with
the same machinery as every other finding:

* ``GP401`` — nothing recovered at all (bad magic);
* ``GP402`` — histogram data dropped;
* ``GP403`` — arc records dropped;
* ``GP404`` — header/comment truncated, losing the profile body;
* ``GP405`` — anomaly repaired or tolerated without data loss;
* ``GP406`` — the file declared ``runs == 0`` (clamped, not hidden).
"""

from __future__ import annotations

from repro.check.diagnostics import Diagnostic, make
from repro.core.profiledata import ProfileData
from repro.gmon.format import RUNS_ZERO_WARNING
from repro.resilience.salvage import SalvageReport


def salvage_passes(report: SalvageReport) -> list[Diagnostic]:
    """Map one salvage report to GP4xx diagnostics.

    A clean report (byte-perfect file) yields no diagnostics.  Drops
    are errors — data is missing; notes are warnings — data was
    recovered but the file was not healthy.
    """
    source = report.source or "<profile data>"
    if report.unsalvageable:
        return [
            make("GP401", f"{source}: {message}")
            for message in report.dropped
        ] or [make("GP401", f"{source}: nothing recovered")]
    diagnostics: list[Diagnostic] = []
    for message in report.dropped:
        if "arc" in message:
            code = "GP403"
        elif "histogram" in message or "bucket" in message:
            code = "GP402"
        else:
            code = "GP404"
        diagnostics.append(make(code, f"{source}: {message}"))
    for message in report.notes:
        code = "GP406" if "runs == 0" in message else "GP405"
        diagnostics.append(make(code, f"{source}: {message}"))
    return diagnostics


def degradation_passes(data: ProfileData) -> list[Diagnostic]:
    """GP4xx diagnostics for warnings carried on strict-read data.

    A strictly-parsed file can still be degraded (``runs == 0``).  Use
    this for data *not* read through salvage mode — salvaged data's
    warnings mirror its report, which :func:`salvage_passes` already
    covers.
    """
    diagnostics: list[Diagnostic] = []
    for message in data.warnings:
        code = "GP406" if RUNS_ZERO_WARNING in message or "runs == 0" in message else "GP405"
        diagnostics.append(make(code, message))
    return diagnostics
