"""Expectation checks: the measured profile against the static prediction.

The paper's machinery trusts its inputs; §6 only quantifies *sampling*
error.  These passes confront the measured gmon data with the dataflow
analysis (:mod:`repro.check.flow`) — each side can vouch for facts the
other cannot see, so a disagreement localizes a bug in the
instrumentation, the data files, or the pairing of the two:

* **GP610** — a measured arc with no statically-possible call site:
  the callee of an indirect call is not in the program's address-taken
  candidate set, so no execution of *this* image can have recorded the
  arc (direct-call mismatches are GP307's; opaque CALLI programs are
  exempt, GP104 already owns that gap);
* **GP611** — histogram mass wholly inside a block the interval
  analysis proves unreachable: the program counter cannot have been
  there, so the samples belong to another image or corrupted buckets;
* **GP612** — a measured call count exceeding what the static call-site
  multiplicity allows: with every site of the arc outside loops, a
  caller activated N times can record at most sites × N calls.

And the §6 accuracy statement made actionable: the **expected sampling
error** of a routine's time is proportional to the square root of its
sample count (one sampling period per √n).  :func:`sampling_confidence`
computes the ± for every routine so the flat profile can print it, and
flags routines whose *entire* measured time is within one expected
error of zero — numbers the paper would tell you not to quote.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.check.diagnostics import Diagnostic, make
from repro.check.flow import FlowAnalysis, analyze_flow
from repro.core.profiledata import ProfileData
from repro.machine.executable import Executable
from repro.machine.isa import Op


def check_impossible_arcs(
    exe: Executable, data: ProfileData, flow: FlowAnalysis
) -> list[Diagnostic]:
    """GP610: measured arcs no execution of this image can produce."""
    diags: list[Diagnostic] = []
    candidates = flow.calli_candidates
    for arc in data.condensed_arcs():
        if arc.from_pc == 0 or arc.count <= 0:
            continue  # spontaneous marker / empty slot
        if not (exe.low_pc <= arc.from_pc < exe.high_pc) or (
            arc.from_pc % 4
        ):
            continue  # GP303's finding, not ours
        site_fn = exe.function_at(arc.from_pc)
        callee_fn = exe.function_at(arc.self_pc)
        if (
            site_fn is None
            or callee_fn is None
            or callee_fn.entry != arc.self_pc
        ):
            continue  # GP302/GP303 territory
        ins = exe.fetch(arc.from_pc)
        if ins.op is not Op.CALLI:
            continue  # direct CALLs are covered exactly by GP307
        if not candidates:
            continue  # opaque indirect calls: GP104 owns the gap
        if callee_fn.name not in candidates:
            diags.append(make(
                "GP610",
                f"arc {site_fn.name} -> {callee_fn.name} "
                f"({arc.count} call(s)) goes through the CALLI at "
                f"{arc.from_pc:#06x}, but '{callee_fn.name}' is not in "
                "the address-taken candidate set; no execution of this "
                "image can have recorded it",
                address=arc.from_pc, routine=site_fn.name,
            ))
    return diags


def check_samples_in_dead_code(
    exe: Executable, data: ProfileData, flow: FlowAnalysis
) -> list[Diagnostic]:
    """GP611: histogram mass wholly inside absint-unreachable blocks."""
    dead_ranges: list[tuple[int, int, str]] = []
    for name, rf in flow.routines.items():
        if rf.values.aborted:
            continue
        for start in rf.values.unreachable:
            block = rf.cfg.blocks[start]
            dead_ranges.append((block.start, block.end, name))
    # CFG-unreachable blocks (GP101) are just as impossible to sample.
    for name, rf in flow.routines.items():
        for block in rf.cfg.unreachable_blocks():
            dead_ranges.append((block.start, block.end, name))
    if not dead_ranges:
        return []
    dead_ranges.sort()
    diags: list[Diagnostic] = []
    hist = data.histogram
    if not hist.counts:
        return []
    width = hist.bucket_width
    for idx, count in enumerate(hist.counts):
        if not count:
            continue
        b_lo = hist.low_pc + idx * width
        b_hi = b_lo + width
        for lo, hi, name in dead_ranges:
            # Only a bucket *wholly* inside the dead block is damning;
            # a straddling bucket could owe its ticks to the live side.
            if lo <= b_lo and b_hi <= hi:
                diags.append(make(
                    "GP611",
                    f"histogram bucket {idx} holds {count} tick(s) at "
                    f"[{int(b_lo):#x}, {int(b_hi):#x}) inside a "
                    f"statically-unreachable block of '{name}'; the "
                    "program counter cannot have been there",
                    address=int(b_lo), routine=name,
                ))
                break
    return diags


def check_call_count_bounds(
    exe: Executable, data: ProfileData, flow: FlowAnalysis
) -> list[Diagnostic]:
    """GP612: measured call counts versus static site multiplicity.

    Only argued where the static side is airtight: every site of the
    arc sits outside all loops, the caller has no opaque CALLI, and no
    cross-routine branch jumps into the caller (which could re-run its
    sites without a recorded activation).
    """
    prediction = flow.prediction
    if prediction is None:
        return []

    # Routines some other routine branches into: activations unreliable.
    jump_targets: set[str] = set()
    for rf in flow.routines.values():
        for _addr, target in rf.cfg.escaping_branches:
            victim = exe.function_at(target)
            if victim is not None:
                jump_targets.add(victim.name)

    measured: dict[tuple[str, str], int] = defaultdict(int)
    activations: dict[str, int] = defaultdict(int)
    for arc in data.condensed_arcs():
        callee_fn = exe.function_at(arc.self_pc)
        if callee_fn is None or callee_fn.entry != arc.self_pc:
            continue
        activations[callee_fn.name] += arc.count
        if arc.from_pc == 0:
            continue
        site_fn = exe.function_at(arc.from_pc)
        if site_fn is not None:
            measured[(site_fn.name, callee_fn.name)] += arc.count

    entry_fn = exe.function_at(exe.entry_point)
    if entry_fn is not None:
        activations[entry_fn.name] += max(data.runs, 1)

    sites_by_arc = prediction.arc_sites()
    diags: list[Diagnostic] = []
    for (caller, callee), count in sorted(measured.items()):
        pred_caller = prediction.routines.get(caller)
        if pred_caller is None or pred_caller.opaque_calli:
            continue
        if caller in jump_targets:
            continue
        sites = sites_by_arc.get((caller, callee))
        if not sites:
            continue  # impossibility is GP610/GP307's claim, not ours
        if any(s.loop_depth > 0 for s in sites):
            continue  # a looped site makes the multiplicity unbounded
        n_sites = len({s.address for s in sites})
        bound = n_sites * activations[caller]
        if count > bound:
            diags.append(make(
                "GP612",
                f"arc {caller} -> {callee} records {count} call(s), but "
                f"{caller} was activated {activations[caller]} time(s) "
                f"and has only {n_sites} loop-free call site(s) for it "
                f"(at most {bound} call(s) possible)",
                routine=caller,
            ))
    return diags


def expect_passes(
    exe: Executable,
    data: ProfileData,
    flow: FlowAnalysis | None = None,
) -> list[Diagnostic]:
    """All measured-versus-predicted checks for one profile."""
    if flow is None:
        flow = analyze_flow(exe)
    return (
        check_impossible_arcs(exe, data, flow)
        + check_samples_in_dead_code(exe, data, flow)
        + check_call_count_bounds(exe, data, flow)
    )


# --------------------------------------------------------- sampling confidence


def sampling_confidence(
    exe: Executable, data: ProfileData
) -> dict[str, float]:
    """§6 expected sampling error, in seconds, per routine.

    "The expected error in the number of samples for a routine is
    proportional to the square root of the number of samples" — one
    sampling period per √n.  A routine with 100 samples at 100 Hz is
    known to ±0.1 s; one with a single sample is barely known at all.
    """
    hist = data.histogram
    if not hist.counts or hist.profrate <= 0:
        return {}
    period = 1.0 / hist.profrate
    self_times = hist.assign_samples(exe.symbol_table())
    confidence: dict[str, float] = {}
    for name, seconds in self_times.items():
        ticks = seconds * hist.profrate
        confidence[name] = math.sqrt(max(ticks, 0.0)) * period
    return confidence
