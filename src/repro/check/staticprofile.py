"""Static execution-frequency prediction: the profile before the run.

gprof derives everything from *measured* counts and samples; this
module derives the same shape of answer from the text segment alone, in
the style of Wu & Larus' static branch/frequency estimation:

* **block frequencies** per routine: propagate mass 1.0 from the entry
  along forward CFG edges (equal split at branches, dead edges from the
  interval analysis excluded), multiplying by
  :data:`LOOP_MULTIPLIER` at every natural-loop header so nesting
  compounds — a depth-2 block runs ~100× per activation;
* **per-activation cycles**: block frequency × the block's cycle cost
  from :data:`repro.machine.isa.COSTS` (``WORK`` adds its operand);
* **activation counts**: mass 1.0 enters at the program entry routine
  and flows along call-site frequencies through the static call graph;
  strongly-connected components (recursion) are collapsed and charged
  :data:`RECURSION_MULTIPLIER`, mirroring §4's cycle treatment;
* the **predicted profile**: per-routine static weight (activations ×
  per-activation cycles, normalized to a share) plus the
  statically-possible call multiset — every ``CALL`` site exactly,
  every ``CALLI`` site expanded to the address-taken candidate set.

The result is deterministic for a given image: block and site walks are
in address order, candidate sets are sorted, and the arithmetic has no
iteration-order freedom — the serialized artifact is byte-stable, and
the T-FLOW benchmark gates on that.

The numbers are *estimates* (every branch 50/50, every loop ~10
iterations); their value is relational — which routines should
dominate, which arcs are possible at all — which is exactly what the
expectation checks (:mod:`repro.check.expect`) compare against the
measured profile.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.check.absint import ValueResult, address_taken
from repro.check.cfg import RoutineCFG
from repro.check.dominators import DomTree, LoopForest
from repro.machine.executable import Executable
from repro.machine.isa import COSTS, INSTRUCTION_SIZE, Op

#: Assumed iterations of a natural loop per entry (the classic static
#: guess; Wu/Larus use loop-exit heuristics, we keep the flat prior).
LOOP_MULTIPLIER = 10.0

#: Assumed activations a recursive component gains over its external
#: entries — recursion is a loop through the call graph.
RECURSION_MULTIPLIER = 10.0


@dataclass(frozen=True)
class CallSite:
    """One statically-possible call.

    Attributes:
        address: the CALL/CALLI instruction's address.
        caller: routine containing the site.
        callee: the (candidate) target routine.
        indirect: True for CALLI candidates from the address-taken set.
        loop_depth: nesting depth of the site's block (0 outside loops).
        frequency: expected executions of the site per activation of
            the caller; for indirect sites, already split across the
            candidate set.
    """

    address: int
    caller: str
    callee: str
    indirect: bool
    loop_depth: int
    frequency: float


@dataclass
class RoutinePrediction:
    """The static estimate for one routine.

    Attributes:
        name: routine name.
        entry: entry address.
        block_freq: expected executions of each block per activation.
        cycles_per_activation: expected cycle cost of one activation,
            the routine's own instructions only (callees excluded).
        call_sites: the statically-possible call multiset out of this
            routine, in (address, callee) order.
        opaque_calli: addresses of CALLI sites with an *empty* candidate
            set — the static call graph under-approximates here and
            arc-level cross-checks must stand down for this caller.
        activations: expected activations over the whole run (filled by
            the interprocedural propagation; the entry routine gets 1).
    """

    name: str
    entry: int
    block_freq: dict[int, float] = field(default_factory=dict)
    cycles_per_activation: float = 0.0
    call_sites: tuple[CallSite, ...] = ()
    opaque_calli: tuple[int, ...] = ()
    activations: float = 0.0

    @property
    def weight(self) -> float:
        """The routine's predicted share of execution, in cycle units."""
        return self.activations * self.cycles_per_activation


@dataclass
class StaticProfile:
    """The whole predicted profile of one executable.

    Attributes:
        program: executable name.
        routines: predictions keyed by routine name, in address order.
    """

    program: str
    routines: dict[str, RoutinePrediction] = field(default_factory=dict)

    @property
    def total_weight(self) -> float:
        return sum(r.weight for r in self.routines.values())

    def share(self, name: str) -> float:
        """Predicted fraction of execution spent in ``name`` (0..1)."""
        total = self.total_weight
        if total <= 0.0:
            return 0.0
        return self.routines[name].weight / total

    def possible_arcs(self) -> set[tuple[str, str]]:
        """Every (caller, callee) pair any execution could record."""
        return {
            (site.caller, site.callee)
            for r in self.routines.values()
            for site in r.call_sites
        }

    def arc_sites(self) -> dict[tuple[str, str], list[CallSite]]:
        """Call sites grouped by (caller, callee)."""
        grouped: dict[tuple[str, str], list[CallSite]] = {}
        for r in self.routines.values():
            for site in r.call_sites:
                grouped.setdefault((site.caller, site.callee), []).append(site)
        return grouped

    def to_dict(self) -> dict:
        """JSON-serializable predicted profile (byte-deterministic)."""
        return {
            "format": "repro-staticprofile-1",
            "program": self.program,
            "loop_multiplier": LOOP_MULTIPLIER,
            "recursion_multiplier": RECURSION_MULTIPLIER,
            "routines": [
                {
                    "name": r.name,
                    "entry": r.entry,
                    "activations": round(r.activations, 9),
                    "cycles_per_activation": round(
                        r.cycles_per_activation, 9
                    ),
                    "weight": round(r.weight, 9),
                    "share": round(self.share(r.name), 9),
                    "opaque_calli": list(r.opaque_calli),
                    "calls": [
                        {
                            "site": s.address,
                            "callee": s.callee,
                            "indirect": s.indirect,
                            "loop_depth": s.loop_depth,
                            "frequency": round(s.frequency, 9),
                        }
                        for s in r.call_sites
                    ],
                }
                for r in self.routines.values()
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------- block frequencies


def block_frequencies(
    cfg: RoutineCFG,
    dom: DomTree,
    forest: LoopForest,
    dead_edges: frozenset[tuple[int, int]] = frozenset(),
) -> dict[int, float]:
    """Expected executions of each block per activation of the routine.

    One acyclic pass over the reverse postorder: back/retreating edges
    are dropped (their effect is the header's loop multiplier), branch
    mass splits equally over the remaining live successor blocks.
    """
    freq: dict[int, float] = {b: 0.0 for b in dom.rpo}
    if not dom.rpo:
        return freq
    index = {b: i for i, b in enumerate(dom.rpo)}
    freq[dom.rpo[0]] = 1.0
    for b in dom.rpo:
        if b in forest.loops:
            freq[b] *= LOOP_MULTIPLIER
        mass = freq[b]
        if mass == 0.0:
            continue
        succs = [
            s
            for s in sorted(set(cfg.blocks[b].successors))
            if s in index and index[s] > index[b]
            and (b, s) not in dead_edges
        ]
        if not succs:
            continue
        share = mass / len(succs)
        for s in succs:
            freq[s] += share
    return freq


def _block_cost(exe: Executable, start: int, end: int) -> int:
    """Cycle cost of one straight-line block."""
    cost = 0
    for addr in range(start, end, INSTRUCTION_SIZE):
        ins = exe.fetch(addr)
        cost += COSTS[ins.op]
        if ins.op is Op.WORK and ins.operand:
            cost += ins.operand
    return cost


# ------------------------------------------------------------ call-site harvest


def _routine_sites(
    exe: Executable,
    cfg: RoutineCFG,
    forest: LoopForest,
    freq: dict[int, float],
    candidates: list[str],
) -> tuple[tuple[CallSite, ...], tuple[int, ...]]:
    """All statically-possible call sites of one routine.

    Sites in unreachable or dead blocks keep frequency 0.0 but stay in
    the multiset: the *possible-arc* set must over-approximate (GP610
    must never fire on honest data), while the frequencies feed only
    the estimates.
    """
    name = cfg.function.name
    sites: list[CallSite] = []
    opaque: list[int] = []
    for start in sorted(cfg.blocks):
        block = cfg.blocks[start]
        depth = forest.depth_of(start)
        mass = freq.get(start, 0.0)
        for addr in range(block.start, block.end, INSTRUCTION_SIZE):
            ins = exe.fetch(addr)
            if ins.op is Op.CALL:
                callee = exe.function_at(ins.operand or 0)
                if callee is not None and callee.entry == ins.operand:
                    sites.append(CallSite(
                        addr, name, callee.name, False, depth, mass
                    ))
            elif ins.op is Op.CALLI:
                if not candidates:
                    opaque.append(addr)
                    continue
                split = mass / len(candidates)
                for cand in candidates:
                    sites.append(CallSite(
                        addr, name, cand, True, depth, split
                    ))
    sites.sort(key=lambda s: (s.address, s.callee))
    return tuple(sites), tuple(opaque)


# ------------------------------------------------------- activation propagation


def _tarjan_sccs(
    nodes: list[str], edges: dict[str, list[str]]
) -> list[list[str]]:
    """Strongly-connected components, iteratively, in reverse
    topological order of the condensation (callees before callers)."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, ei = work.pop()
            if ei == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            succs = edges.get(node, [])
            while ei < len(succs):
                succ = succs[ei]
                ei += 1
                if succ not in index_of:
                    work.append((node, ei))
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if advanced:
                continue
            if low[node] == index_of[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                sccs.append(sorted(comp))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _propagate_activations(
    exe: Executable, profile: StaticProfile
) -> None:
    """Fill :attr:`RoutinePrediction.activations` along the call graph.

    Mass 1.0 enters at the entry routine; each SCC of the static call
    graph receives the external call mass into any member, multiplies
    it by :data:`RECURSION_MULTIPLIER` when the component is recursive,
    and forwards mass out along its members' call-site frequencies.
    """
    names = list(profile.routines)
    edges: dict[str, list[str]] = {n: [] for n in names}
    for r in profile.routines.values():
        for site in r.call_sites:
            if site.callee in edges:
                edges[r.name].append(site.callee)
    for n in names:
        edges[n] = sorted(set(edges[n]))

    sccs = _tarjan_sccs(names, edges)
    sccs.reverse()  # callers before callees
    scc_of: dict[str, int] = {}
    for i, comp in enumerate(sccs):
        for member in comp:
            scc_of[member] = i

    incoming: dict[str, float] = {n: 0.0 for n in names}
    entry_fn = exe.function_at(exe.entry_point)
    if entry_fn is not None and entry_fn.name in incoming:
        incoming[entry_fn.name] = 1.0
    else:  # no resolvable entry: treat every routine as a root
        for n in names:
            incoming[n] = 1.0

    for i, comp in enumerate(sccs):
        recursive = len(comp) > 1 or any(
            m in edges[m] for m in comp
        )
        external = sum(incoming[m] for m in comp)
        for member in comp:
            if recursive:
                # The whole component shares the recursion-inflated
                # pot: mutual recursion visits every member.
                act = external * RECURSION_MULTIPLIER
            else:
                act = incoming[member]
            profile.routines[member].activations = act
            for site in profile.routines[member].call_sites:
                callee = site.callee
                if callee not in incoming or scc_of.get(callee) == i:
                    continue  # internal arcs are absorbed by the pot
                incoming[callee] += act * site.frequency


# ------------------------------------------------------------------ entry point


def build_static_profile(
    exe: Executable,
    cfgs: dict[str, RoutineCFG],
    doms: dict[str, DomTree],
    forests: dict[str, LoopForest],
    values: dict[str, ValueResult] | None = None,
) -> StaticProfile:
    """Assemble the predicted profile from the per-routine analyses.

    ``values`` (the interval results) is optional; when present, edges
    it proved dead are excluded from the frequency propagation — but
    never from the possible-call multiset.
    """
    profile = StaticProfile(exe.name)
    candidates = sorted(address_taken(exe))
    for fn in exe.functions:
        cfg = cfgs[fn.name]
        dom = doms[fn.name]
        forest = forests[fn.name]
        dead: frozenset[tuple[int, int]] = frozenset()
        val = values.get(fn.name) if values else None
        if val is not None and not val.aborted:
            dead = frozenset(val.dead_edges)
        freq = block_frequencies(cfg, dom, forest, dead)
        cycles = sum(
            freq.get(start, 0.0)
            * _block_cost(exe, block.start, block.end)
            for start, block in sorted(cfg.blocks.items())
        )
        sites, opaque = _routine_sites(exe, cfg, forest, freq, candidates)
        profile.routines[fn.name] = RoutinePrediction(
            name=fn.name,
            entry=fn.entry,
            block_freq=freq,
            cycles_per_activation=cycles,
            call_sites=sites,
            opaque_calli=opaque,
        )
    _propagate_activations(exe, profile)
    return profile
