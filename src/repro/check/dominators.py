"""Dominator trees and natural loops over :class:`RoutineCFG`.

The static half of the profile-guided loop needs to know *where the
time has to go*: which blocks guard which, where the loops are, and how
deeply they nest.  This module computes, per routine:

* the **dominator tree** via the Cooper–Harvey–Kennedy iterative
  algorithm ("A Simple, Fast Dominance Algorithm") — two reverse
  postorder sweeps on real programs, no Lengauer–Tarjan machinery;
* **natural loops** from back edges (an edge ``t → h`` where ``h``
  dominates ``t``): header, body, back edges, and nesting depth;
* **irreducible control flow** detection: a retreating edge whose
  target does not dominate its source has no natural loop, so any
  loop-based analysis (frequency estimation, infinite-loop proofs)
  must degrade to conservative answers for that routine.

Only blocks reachable from the routine entry participate; unreachable
blocks have no dominators (GP101 already reports them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.cfg import RoutineCFG


@dataclass
class DomTree:
    """The dominance structure of one routine's reachable blocks.

    Attributes:
        entry: start address of the routine's entry block.
        rpo: reachable block start addresses in reverse postorder
            (the entry first; every non-loop predecessor before its
            successors).
        idom: immediate dominator of each reachable block; the entry
            maps to itself.
        children: dominator-tree children of each block, sorted.
    """

    entry: int
    rpo: list[int] = field(default_factory=list)
    idom: dict[int, int] = field(default_factory=dict)
    children: dict[int, list[int]] = field(default_factory=dict)

    def dominates(self, a: int, b: int) -> bool:
        """Whether block ``a`` dominates block ``b`` (reflexively)."""
        node = b
        while True:
            if node == a:
                return True
            parent = self.idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    def strictly_dominates(self, a: int, b: int) -> bool:
        """Whether ``a`` dominates ``b`` and ``a != b``."""
        return a != b and self.dominates(a, b)

    def depth(self, block: int) -> int:
        """Distance from the entry in the dominator tree (entry = 0)."""
        d, node = 0, block
        while node != self.entry:
            node = self.idom[node]
            d += 1
        return d


@dataclass
class Loop:
    """One natural loop.

    Attributes:
        header: the loop's single entry block (start address).
        body: every block in the loop, header included.
        back_edges: the ``(tail, header)`` edges that define the loop;
            several back edges sharing a header are merged into one
            loop, per the usual convention.
        depth: nesting depth; an outermost loop has depth 1.
        parent: header of the innermost enclosing loop, or None.
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    depth: int = 1
    parent: int | None = None


@dataclass
class LoopForest:
    """Every natural loop of one routine, plus reducibility facts.

    Attributes:
        loops: loops keyed by header address.
        irreducible_edges: retreating edges ``(src, dst)`` whose target
            does not dominate their source — entries into a loop body
            that bypass the header.  Non-empty means the routine's
            control flow is irreducible and loop-based analyses are
            conservative for it.
    """

    loops: dict[int, Loop] = field(default_factory=dict)
    irreducible_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def irreducible(self) -> bool:
        """Whether any retreating edge lacks a dominating header."""
        return bool(self.irreducible_edges)

    def depth_of(self, block: int) -> int:
        """Loop nesting depth of ``block`` (0 outside all loops)."""
        return max(
            (loop.depth for loop in self.loops.values() if block in loop.body),
            default=0,
        )

    def innermost(self, block: int) -> Loop | None:
        """The deepest loop containing ``block``, or None."""
        best: Loop | None = None
        for loop in self.loops.values():
            if block in loop.body and (best is None or loop.depth > best.depth):
                best = loop
        return best


def _reverse_postorder(cfg: RoutineCFG) -> list[int]:
    """Reachable block start addresses, entry first, in reverse postorder.

    Successors are visited in sorted order so the result — and
    everything derived from it — is deterministic.
    """
    seen: set[int] = set()
    order: list[int] = []
    # Iterative DFS with an explicit stack: (block, successor iterator).
    stack: list[tuple[int, list[int]]] = []
    entry = cfg.entry
    if entry not in cfg.blocks:
        return []
    seen.add(entry)
    stack.append((entry, sorted(cfg.blocks[entry].successors, reverse=True)))
    while stack:
        block, succs = stack[-1]
        advanced = False
        while succs:
            nxt = succs.pop()
            if nxt in seen or nxt not in cfg.blocks:
                continue
            seen.add(nxt)
            stack.append(
                (nxt, sorted(cfg.blocks[nxt].successors, reverse=True))
            )
            advanced = True
            break
        if not advanced:
            order.append(block)
            stack.pop()
    order.reverse()
    return order


def compute_dominators(cfg: RoutineCFG) -> DomTree:
    """The Cooper–Harvey–Kennedy dominator tree of ``cfg``.

    Iterates ``idom[b] = intersect(processed predecessors)`` over the
    reverse postorder until a fixed point; on reducible flow graphs this
    converges in two passes.
    """
    rpo = _reverse_postorder(cfg)
    tree = DomTree(cfg.entry, rpo)
    if not rpo:
        return tree
    index = {b: i for i, b in enumerate(rpo)}
    reachable = set(rpo)
    preds: dict[int, list[int]] = {b: [] for b in rpo}
    for b in rpo:
        for s in cfg.blocks[b].successors:
            if s in reachable:
                preds[s].append(b)

    idom: dict[int, int] = {cfg.entry: cfg.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for b in rpo[1:]:
            candidates = [p for p in preds[b] if p in idom]
            new = candidates[0]
            for p in candidates[1:]:
                new = intersect(new, p)
            if idom.get(b) != new:
                idom[b] = new
                changed = True

    tree.idom = idom
    children: dict[int, list[int]] = {b: [] for b in rpo}
    for b in rpo[1:]:
        children[idom[b]].append(b)
    tree.children = {b: sorted(c) for b, c in children.items()}
    return tree


def find_loops(cfg: RoutineCFG, dom: DomTree | None = None) -> LoopForest:
    """Natural loops of ``cfg`` plus irreducible-edge detection.

    A back edge is ``t → h`` with ``h`` dominating ``t``; its natural
    loop is ``h`` plus every block that reaches ``t`` without passing
    through ``h``.  A *retreating* edge (target earlier in reverse
    postorder) that is not a back edge marks irreducible flow.
    """
    if dom is None:
        dom = compute_dominators(cfg)
    forest = LoopForest()
    if not dom.rpo:
        return forest
    index = {b: i for i, b in enumerate(dom.rpo)}
    reachable = set(dom.rpo)

    back_edges: dict[int, list[int]] = {}
    for b in dom.rpo:
        for s in cfg.blocks[b].successors:
            if s not in reachable:
                continue
            if dom.dominates(s, b):
                back_edges.setdefault(s, []).append(b)
            elif index[s] <= index[b]:
                forest.irreducible_edges.append((b, s))
    forest.irreducible_edges.sort()

    preds: dict[int, list[int]] = {b: [] for b in dom.rpo}
    for b in dom.rpo:
        for s in cfg.blocks[b].successors:
            if s in reachable:
                preds[s].append(b)

    for header in sorted(back_edges):
        tails = sorted(back_edges[header])
        body = {header}
        work = [t for t in tails if t != header]
        body.update(work)
        while work:
            node = work.pop()
            for p in preds[node]:
                if p not in body:
                    body.add(p)
                    work.append(p)
        forest.loops[header] = Loop(
            header,
            frozenset(body),
            tuple((t, header) for t in tails),
        )

    # Nesting: loop A encloses loop B when A's body contains B's header
    # and A != B.  Depth = number of enclosing loops + 1.
    headers = sorted(forest.loops)
    for h in headers:
        loop = forest.loops[h]
        enclosing = [
            other
            for oh, other in forest.loops.items()
            if oh != h and h in other.body
        ]
        loop.depth = len(enclosing) + 1
        if enclosing:
            # Innermost enclosing loop = the smallest body containing
            # this header; ties broken by header address (determinism).
            parent = min(enclosing, key=lambda l: (len(l.body), l.header))
            loop.parent = parent.header
    return forest
