"""Per-routine basic-block control-flow graphs over the VM text segment.

The paper's §4 crawls the executable for *calls*; the lint passes also
need the *intra*-routine control flow to reason about reachability and
termination.  This module recovers it the way a binary analyzer would:
partition each routine's instruction range (from the symbol table's
``entry``/``end``) into basic blocks at branch targets and after
control-transfer instructions, then wire up successor edges.

Edge semantics of the ISA (:mod:`repro.machine.isa`):

* ``JMP`` — one successor (the target), no fall-through;
* ``JZ`` / ``JNZ`` — two successors (target and fall-through);
* ``RET`` / ``HALT`` — no successors (control leaves the routine);
* ``CALL`` / ``CALLI`` — fall-through only: the callee returns to the
  next instruction, so calls do not end basic blocks;
* everything else — plain fall-through.

Two anomalies are recorded rather than silently normalized, because the
passes report them: a branch whose target lies outside the routine body
(:attr:`RoutineCFG.escaping_branches`) and a block whose control can
run past ``end`` into whatever routine is laid out next
(:attr:`BasicBlock.falls_off_end`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.executable import Executable, Function
from repro.machine.isa import INSTRUCTION_SIZE, Instruction, Op

#: Opcodes after which control cannot fall through to the next address.
_NO_FALLTHROUGH = frozenset({Op.JMP, Op.RET, Op.HALT})

#: Opcodes that end a basic block.
_BLOCK_ENDERS = frozenset({Op.JMP, Op.JZ, Op.JNZ, Op.RET, Op.HALT})

#: Branching opcodes whose operand is an intra-routine (or escaping)
#: code address.
_BRANCH_OPS = frozenset({Op.JMP, Op.JZ, Op.JNZ})


def branch_stays_inside(fn: Function, target: int) -> bool:
    """Whether a branch target lies inside ``fn``'s own body.

    The boundary case matters: ``fn.end`` is one *past* the routine's
    last instruction, so a branch to exactly ``end`` lands on the next
    routine's first instruction (or off the text segment entirely) and
    must be classified as **escaping** — never as an intra-routine
    successor.  Both CFG-construction sites below share this predicate
    so the half-open ``[entry, end)`` test cannot drift between them.
    """
    return fn.entry <= target < fn.end


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    Attributes:
        start: address of the first instruction.
        end: one past the address of the last instruction.
        successors: start addresses of intra-routine successor blocks.
        falls_off_end: True when control can leave the block by running
            past the routine's last instruction (no RET/HALT/JMP).
    """

    start: int
    end: int
    successors: tuple[int, ...] = ()
    falls_off_end: bool = False

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class RoutineCFG:
    """The control-flow graph of one routine.

    Attributes:
        function: the routine this graph describes.
        blocks: basic blocks keyed by start address.
        escaping_branches: ``(branch_addr, target_addr)`` pairs for
            JMP/JZ/JNZ instructions whose target lies outside the
            routine body — legal for the machine, but an attribution
            hazard the passes flag (GP108).
    """

    function: Function
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    escaping_branches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def entry(self) -> int:
        """Start address of the entry block."""
        return self.function.entry

    def reachable(self) -> set[int]:
        """Start addresses of blocks reachable from the routine entry."""
        if not self.blocks:
            return set()
        seen: set[int] = set()
        work = [self.entry]
        while work:
            addr = work.pop()
            if addr in seen or addr not in self.blocks:
                continue
            seen.add(addr)
            work.extend(self.blocks[addr].successors)
        return seen

    def unreachable_blocks(self) -> list[BasicBlock]:
        """Blocks no path from the entry reaches, in address order."""
        reached = self.reachable()
        return [
            block
            for addr, block in sorted(self.blocks.items())
            if addr not in reached
        ]


def build_cfg(exe: Executable, fn: Function) -> RoutineCFG:
    """Build the basic-block graph of ``fn`` from the text segment."""
    cfg = RoutineCFG(fn)
    if fn.entry >= fn.end:
        return cfg  # an empty routine has no blocks (and no RET: GP103)

    body = [
        (addr, exe.fetch(addr))
        for addr in range(fn.entry, fn.end, INSTRUCTION_SIZE)
    ]

    # Pass 1: leaders.  The entry, every intra-routine branch target,
    # and every instruction following a block-ending instruction.
    leaders: set[int] = {fn.entry}
    for addr, ins in body:
        if ins.op in _BRANCH_OPS and ins.operand is not None:
            if branch_stays_inside(fn, ins.operand):
                leaders.add(ins.operand)
            else:
                cfg.escaping_branches.append((addr, ins.operand))
        if ins.op in _BLOCK_ENDERS and addr + INSTRUCTION_SIZE < fn.end:
            leaders.add(addr + INSTRUCTION_SIZE)

    # Pass 2: cut blocks at leaders and wire successors.
    ordered = sorted(leaders)
    for i, start in enumerate(ordered):
        limit = ordered[i + 1] if i + 1 < len(ordered) else fn.end
        end = start
        last: Instruction | None = None
        for addr in range(start, limit, INSTRUCTION_SIZE):
            last = exe.fetch(addr)
            end = addr + INSTRUCTION_SIZE
            if last.op in _BLOCK_ENDERS:
                break
        successors: list[int] = []
        falls_off = False
        assert last is not None
        if last.op in _BRANCH_OPS and last.operand is not None:
            if branch_stays_inside(fn, last.operand):
                successors.append(last.operand)
        if last.op not in _NO_FALLTHROUGH:
            if end < fn.end:
                successors.append(end)
            else:
                falls_off = True
        cfg.blocks[start] = BasicBlock(
            start, end, tuple(successors), falls_off
        )
    return cfg


def build_all_cfgs(exe: Executable) -> dict[str, RoutineCFG]:
    """CFGs for every routine of the executable, keyed by name."""
    return {fn.name: build_cfg(exe, fn) for fn in exe.functions}
