"""The flow battery: dataflow analysis passes over the VM text.

Orchestrates the per-routine dataflow stack — CFG → dominator tree →
natural loops → stack-balance summaries → interval interpretation →
static frequency prediction — into one :class:`FlowAnalysis` object,
and derives the GP6xx *static* diagnostics from it:

* **GP601** — a conditional branch whose outcome provably never varies
  (excluding decided *back edges*: a never-taken back edge just means
  the loop body runs once under these build parameters, and an
  always-taken one is GP603's infinite-loop case);
* **GP602** — operand-stack imbalance: a block reachable at two
  different stack depths, or RET paths disagreeing on the net effect;
* **GP603** — a provably-infinite natural loop: live body, and no live
  exit edge, return, halt, or escape anywhere in it;
* **GP604** — irreducible control flow: a retreating edge whose target
  does not dominate its source, so loop-based reasoning (frequency
  estimation included) degrades to conservative answers;
* **GP605** — a block the *interval* analysis proves no execution
  reaches — strictly stronger than GP101's graph reachability, which
  these blocks pass.

Value-analysis facts (601/603/605) are only reported for routines the
interpreter covered completely (``aborted`` unset); partial coverage
stays silent rather than guessing.

The measured-versus-predicted confrontation lives in
:mod:`repro.check.expect`; the whole battery is surfaced as
``repro-check --flow`` and cached as a pipeline stage group.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.absint import (
    BalanceResult,
    StackSummary,
    ValueResult,
    address_taken,
    interpret_values,
    stack_summaries,
)
from repro.check.cfg import RoutineCFG, build_all_cfgs
from repro.check.diagnostics import Diagnostic, make
from repro.check.dominators import (
    DomTree,
    LoopForest,
    compute_dominators,
    find_loops,
)
from repro.check.staticprofile import StaticProfile, build_static_profile
from repro.machine.executable import Executable, Function
from repro.machine.isa import INSTRUCTION_SIZE, Op


@dataclass
class RoutineFlow:
    """Every per-routine dataflow artifact, bundled."""

    function: Function
    cfg: RoutineCFG
    dom: DomTree
    loops: LoopForest
    balance: BalanceResult
    values: ValueResult


@dataclass
class FlowAnalysis:
    """The whole-program dataflow analysis of one executable.

    Attributes:
        exe: the analyzed image.
        routines: per-routine artifacts, in address order.
        summaries: solved stack summaries by routine name (None where
            no RET path has a determinable depth).
        calli_candidates: the program-wide address-taken set.
        prediction: the static predicted profile.
    """

    exe: Executable
    routines: dict[str, RoutineFlow] = field(default_factory=dict)
    summaries: dict[str, StackSummary | None] = field(default_factory=dict)
    calli_candidates: set[str] = field(default_factory=set)
    prediction: StaticProfile | None = None


def analyze_flow(exe: Executable) -> FlowAnalysis:
    """Run the full dataflow stack over ``exe``."""
    flow = FlowAnalysis(exe)
    cfgs = build_all_cfgs(exe)
    balances = stack_summaries(exe, cfgs)
    flow.summaries = {n: b.summary for n, b in balances.items()}
    flow.calli_candidates = address_taken(exe)
    doms: dict[str, DomTree] = {}
    forests: dict[str, LoopForest] = {}
    values: dict[str, ValueResult] = {}
    for fn in exe.functions:
        cfg = cfgs[fn.name]
        dom = compute_dominators(cfg)
        forest = find_loops(cfg, dom)
        val = interpret_values(
            exe, fn, cfg, balances[fn.name], flow.summaries,
            flow.calli_candidates,
        )
        doms[fn.name] = dom
        forests[fn.name] = forest
        values[fn.name] = val
        flow.routines[fn.name] = RoutineFlow(
            fn, cfg, dom, forest, balances[fn.name], val
        )
    flow.prediction = build_static_profile(exe, cfgs, doms, forests, values)
    return flow


# ------------------------------------------------------------------ diagnostics


def _back_edge_set(forest: LoopForest) -> set[tuple[int, int]]:
    return {
        edge for loop in forest.loops.values() for edge in loop.back_edges
    }


def _block_of(cfg: RoutineCFG, addr: int) -> int | None:
    """Start address of the block containing ``addr``."""
    for start, block in cfg.blocks.items():
        if addr in block:
            return start
    return None


def check_constant_branches(rf: RoutineFlow) -> list[Diagnostic]:
    """GP601: conditional branches with a provably-fixed outcome."""
    if rf.values.aborted:
        return []
    diags: list[Diagnostic] = []
    back = _back_edge_set(rf.loops)
    for fact in rf.values.constant_branches:
        blk = _block_of(rf.cfg, fact.address)
        if blk is None:
            continue
        # Decided back edges are excluded: see the module docstring.
        target = None
        block = rf.cfg.blocks[blk]
        for succ in block.successors:
            if (blk, succ) in back:
                target = succ
                break
        if target is not None:
            continue
        outcome = "always taken" if fact.always_taken else "never taken"
        diags.append(make(
            "GP601",
            f"branch at {fact.address:#06x} in '{rf.function.name}' is "
            f"{outcome}: its condition is provably {fact.condition}; "
            "the untaken arm is dead weight",
            address=fact.address, routine=rf.function.name,
        ))
    return diags


def check_stack_balance(rf: RoutineFlow) -> list[Diagnostic]:
    """GP602: operand-stack balance violations."""
    diags: list[Diagnostic] = []
    name = rf.function.name
    for block, depth_a, depth_b in rf.balance.conflicts:
        diags.append(make(
            "GP602",
            f"block at {block:#06x} in '{name}' is reachable at operand-"
            f"stack depths {depth_a} and {depth_b}; the routine corrupts "
            "its caller's stack on one of the paths",
            address=block, routine=name,
        ))
    if rf.balance.ret_conflict:
        deltas = ", ".join(
            f"{d:+d} at {addr:#06x}" for addr, d in rf.balance.ret_deltas
        )
        diags.append(make(
            "GP602",
            f"RET paths of '{name}' disagree on the net stack effect "
            f"({deltas}); callers cannot rely on its result",
            address=rf.function.entry, routine=name,
        ))
    return diags


def check_infinite_loops(exe: Executable, rf: RoutineFlow) -> list[Diagnostic]:
    """GP603: natural loops with no live way out."""
    diags: list[Diagnostic] = []
    cfg, values = rf.cfg, rf.values
    live_blocks = (
        set(cfg.blocks) if values.aborted else set(values.reached)
    )
    dead_edges = set() if values.aborted else values.dead_edges
    escapes_from = {addr for addr, _t in cfg.escaping_branches}
    for header in sorted(rf.loops.loops):
        loop = rf.loops.loops[header]
        body_live = sorted(loop.body & live_blocks)
        if not body_live:
            continue
        has_exit = False
        for start in body_live:
            block = cfg.blocks[start]
            ender = None
            if block.end - INSTRUCTION_SIZE >= block.start:
                ender = exe.fetch(block.end - INSTRUCTION_SIZE).op
            if ender in (Op.RET, Op.HALT):
                has_exit = True
                break
            if block.falls_off_end:
                has_exit = True  # conservatively an exit
                break
            if any(
                block.start <= a < block.end for a in escapes_from
            ):
                has_exit = True
                break
            for succ in block.successors:
                if succ not in loop.body and (start, succ) not in dead_edges:
                    has_exit = True
                    break
            if has_exit:
                break
        if not has_exit:
            diags.append(make(
                "GP603",
                f"loop headed at {header:#06x} in '{rf.function.name}' "
                "has no live exit: no reachable path leaves the loop "
                "body and no body block returns or halts",
                address=header, routine=rf.function.name,
            ))
    return diags


def check_irreducible(rf: RoutineFlow) -> list[Diagnostic]:
    """GP604: retreating edges without a dominating header."""
    if not rf.loops.irreducible:
        return []
    edges = ", ".join(
        f"{src:#06x}->{dst:#06x}" for src, dst in rf.loops.irreducible_edges
    )
    return [make(
        "GP604",
        f"control flow in '{rf.function.name}' is irreducible "
        f"(retreating edge(s) {edges} enter a loop body past its "
        "header); loop-based estimates are conservative here",
        address=rf.loops.irreducible_edges[0][0],
        routine=rf.function.name,
    )]


def check_absint_unreachable(rf: RoutineFlow) -> list[Diagnostic]:
    """GP605: blocks only the interval analysis proves dead."""
    if rf.values.aborted:
        return []
    return [
        make(
            "GP605",
            f"block at {start:#06x} in '{rf.function.name}' is "
            "reachable in the CFG but no execution can enter it: every "
            "path to it crosses a provably-decided branch",
            address=start, routine=rf.function.name,
        )
        for start in rf.values.unreachable
    ]


def flow_passes(
    exe: Executable, flow: FlowAnalysis | None = None
) -> list[Diagnostic]:
    """All static GP6xx passes over one executable."""
    if flow is None:
        flow = analyze_flow(exe)
    diags: list[Diagnostic] = []
    for name in flow.routines:
        rf = flow.routines[name]
        diags += check_stack_balance(rf)
        diags += check_constant_branches(rf)
        diags += check_infinite_loops(exe, rf)
        diags += check_irreducible(rf)
        diags += check_absint_unreachable(rf)
    return diags


# ------------------------------------------------------------------ text report


def render_flow_report(flow: FlowAnalysis) -> str:
    """A readable per-routine dataflow summary (the golden format).

    Deterministic: routines in address order, loops by header, call
    sites by address.
    """
    lines = [f"flow report: {flow.exe.name}", ""]
    prediction = flow.prediction
    for name, rf in flow.routines.items():
        fn = rf.function
        summary = flow.summaries.get(name)
        if summary is None:
            effect = "effect ?"
        else:
            effect = f"effect {summary.delta:+d} (reach {summary.reach})"
        lines.append(
            f"{name}: [{fn.entry:#06x}, {fn.end:#06x}) "
            f"{len(rf.cfg.blocks)} block(s), {effect}"
        )
        for header in sorted(rf.loops.loops):
            loop = rf.loops.loops[header]
            body = ", ".join(f"{b:#06x}" for b in sorted(loop.body))
            lines.append(
                f"  loop @{header:#06x} depth {loop.depth}: {{{body}}}"
            )
        if rf.loops.irreducible:
            lines.append(
                "  irreducible edges: "
                + ", ".join(
                    f"{s:#06x}->{d:#06x}"
                    for s, d in rf.loops.irreducible_edges
                )
            )
        if prediction is not None:
            pred = prediction.routines[name]
            lines.append(
                f"  predicted: {pred.activations:.2f} activation(s) x "
                f"{pred.cycles_per_activation:.2f} cycles = "
                f"{100.0 * prediction.share(name):.1f}% of static weight"
            )
            for site in pred.call_sites:
                kind = "calli" if site.indirect else "call"
                lines.append(
                    f"  {kind} @{site.address:#06x} -> {site.callee} "
                    f"(x{site.frequency:.2f}/activation"
                    + (f", loop depth {site.loop_depth})" if site.loop_depth
                       else ")")
                )
        lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"
