"""JSON export of an analyzed profile, for downstream tooling.

The text listings are for humans; dashboards, diffing scripts, and CI
regression gates want structure.  ``profile_to_dict`` captures the
whole :class:`~repro.core.analysis.Profile` — entries, relatives,
cycles, flat rows, removed arcs — as plain JSON-serializable data with
a versioned envelope.
"""

from __future__ import annotations

import json

from repro.core.analysis import GraphEntry, Profile, RelativeLine

FORMAT = "repro-profile-1"


def _line_to_dict(line: RelativeLine) -> dict:
    return {
        "name": line.name,
        "self_share": line.self_share,
        "child_share": line.child_share,
        "count": line.count,
        "total": line.total,
        "cycle": line.cycle,
        "intra_cycle": line.intra_cycle,
    }


def _entry_to_dict(entry: GraphEntry) -> dict:
    return {
        "index": entry.index,
        "name": entry.name,
        "display_name": entry.display_name,
        "percent": entry.percent,
        "self_seconds": entry.self_seconds,
        "child_seconds": entry.child_seconds,
        "ncalls": entry.ncalls,
        "self_calls": entry.self_calls,
        "cycle": entry.cycle,
        "is_cycle": entry.is_cycle,
        "parents": [_line_to_dict(p) for p in entry.parents],
        "children": [_line_to_dict(c) for c in entry.children],
        "members": [_line_to_dict(m) for m in entry.members],
    }


def profile_to_dict(profile: Profile) -> dict:
    """The complete analysis as JSON-serializable data."""
    return {
        "format": FORMAT,
        "total_seconds": profile.total_seconds,
        "entries": [_entry_to_dict(e) for e in profile.graph_entries],
        "flat": [
            {
                "name": f.name,
                "percent": f.percent,
                "self_seconds": f.self_seconds,
                "calls": f.calls,
                "self_ms_per_call": f.self_ms_per_call,
                "total_ms_per_call": f.total_ms_per_call,
            }
            for f in profile.flat_entries
        ],
        "never_called": list(profile.never_called),
        "cycles": [
            {"number": c.number, "members": list(c.members)}
            for c in profile.numbered.cycles
        ],
        "removed_arcs": [
            {"caller": r.caller, "callee": r.callee, "count": r.count}
            for r in profile.removed_arcs
        ],
    }


def save_profile_json(profile: Profile, path, indent: int | None = 1) -> None:
    """Write :func:`profile_to_dict` output to ``path``."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(profile_to_dict(profile), f, indent=indent)
