"""Batched §4 time propagation over the topological order.

:func:`repro.core.propagate.propagate` solves ``T_r = S_r + sum T_e *
C_e^r / C_e`` leaves-first.  The graph walk that discovers *which*
arcs push time where — members per representative, external callers,
intra-cycle exclusions — depends only on the numbered graph, not on
the self-time vector, so it is flattened once into a :class:`PropPlan`
of parallel columns and reused across every solve against the same
graph (each iteration of a PGO loop, every same-layout profile of a
fleet).

The solve itself then touches nothing but the columns:

* scalar mode (python/array backends): one pass over the flat arc
  arrays — no set construction, no dict lookups per arc;
* vector mode (numpy): per representative, the fractions
  ``count / ncalls`` and both shares are computed as elementwise f8
  column ops, and the pushes into ``child_time`` / ``routine_child``
  are scattered with ``np.add.at``.

Bit-compatibility argument: IEEE-754 elementwise array operations are
the same operations as their scalar counterparts, applied to the same
values; ``np.add.at`` accumulates strictly in index order, matching
the scalar loop's push order; and the plan fixes one canonical arc
order (members in cycle-member order — the reference previously
iterated a *set* here, so its float accumulation order was hash-seed
dependent; the plan's order is deterministic).  ``total_program_time``
and the per-rep member sums stay sequential python additions in both
modes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import PropagationError

#: Arc spans shorter than this run the scalar loop even in vector mode;
#: the values are bit-identical either way, numpy just loses on setup.
_VECTOR_MIN_ARCS = 16


@dataclass
class PropPlan:
    """The numbered graph, flattened into solve-ready columns.

    Representatives are indexed by topological position; every arc that
    can carry time appears once, grouped by callee representative
    (``arc_start[i]:arc_start[i+1]`` are node ``i``'s incoming arcs).
    """

    order: list[str]
    members: list[tuple[str, ...]]
    ncalls: list[int]
    self_calls: list[int]
    routines: list[str]
    arc_caller: list[str]
    arc_member: list[str]
    arc_count: list[int]
    arc_rep: list[int]  # rep index of the callee representative
    arc_parent: list[int]  # rep index of the caller's representative
    arc_caller_idx: list[int]  # routine index of the caller
    arc_start: list[int]
    fingerprint: int  # graph.num_arcs() at build time (staleness check)


@dataclass
class SolveResult:
    """One solved propagation, as plain columns (see PropPlan indexing)."""

    self_time: list[float]
    child_time: list[float]
    total_time: list[float]
    routine_child: list[float]
    arc_self: list[float]
    arc_child: list[float]
    total_program_time: float


def build_plan(numbered) -> PropPlan:
    """Flatten a :class:`~repro.core.cycles.NumberedGraph` for solving."""
    graph = numbered.graph
    rep_of = numbered.representative

    routines = list(graph.nodes())
    for routine in routines:
        if routine not in rep_of:
            raise PropagationError(f"routine {routine!r} was never numbered")
    routine_index = {name: i for i, name in enumerate(routines)}

    order = list(numbered.topo_order)
    rep_pos = {rep: i for i, rep in enumerate(order)}
    members: list[tuple[str, ...]] = []
    ncalls: list[int] = []
    self_calls: list[int] = []
    arc_caller: list[str] = []
    arc_member: list[str] = []
    arc_count: list[int] = []
    arc_rep: list[int] = []
    arc_parent: list[int] = []
    arc_caller_idx: list[int] = []
    arc_start = [0]

    for rep in order:
        mems = numbered.members_of(rep)
        member_set = set(mems)
        external = 0
        internal = 0
        for m in mems:
            external += graph.spontaneous_calls(m)
            for caller, arc in graph.parents(m).items():
                if caller in member_set:
                    internal += arc.count
                else:
                    external += arc.count
                    if arc.count:
                        arc_caller.append(caller)
                        arc_member.append(m)
                        arc_count.append(arc.count)
                        arc_rep.append(rep_pos[rep])
                        arc_parent.append(rep_pos[rep_of[caller]])
                        arc_caller_idx.append(routine_index[caller])
        members.append(mems)
        ncalls.append(external)
        self_calls.append(internal)
        arc_start.append(len(arc_count))

    return PropPlan(
        order=order,
        members=members,
        ncalls=ncalls,
        self_calls=self_calls,
        routines=routines,
        arc_caller=arc_caller,
        arc_member=arc_member,
        arc_count=arc_count,
        arc_rep=arc_rep,
        arc_parent=arc_parent,
        arc_caller_idx=arc_caller_idx,
        arc_start=arc_start,
        fingerprint=graph.num_arcs(),
    )


def plan_for(numbered) -> PropPlan:
    """:func:`build_plan`, memoized on the numbered-graph instance.

    Cached pipeline values are treat-as-immutable, so the plan can ride
    the instance; ``fingerprint`` guards the direct-API case where
    someone edits the underlying graph between propagations.
    """
    plan = getattr(numbered, "_prop_plan", None)
    if plan is None or plan.fingerprint != numbered.graph.num_arcs():
        plan = build_plan(numbered)
        try:
            numbered._prop_plan = plan
        except AttributeError:  # slotted variant: just rebuild next time
            pass
    return plan


def solve(
    plan: PropPlan, self_times: Mapping[str, float], vector: bool
) -> SolveResult:
    """Solve the recurrence over a plan; scalar or vector data path."""
    nrep = len(plan.order)
    narc = len(plan.arc_count)

    self_time = [0.0] * nrep
    for i in range(nrep):
        st = 0.0
        for m in plan.members[i]:
            st += self_times.get(m, 0.0)
        self_time[i] = st
    total_program_time = 0.0
    for st in self_time:
        total_program_time += st

    if vector and narc >= _VECTOR_MIN_ARCS:
        return _solve_vector(plan, self_time, total_program_time)

    child_time = [0.0] * nrep
    total_time = [0.0] * nrep
    routine_child = [0.0] * len(plan.routines)
    arc_self = [0.0] * narc
    arc_child = [0.0] * narc
    arc_count = plan.arc_count
    arc_parent = plan.arc_parent
    arc_caller_idx = plan.arc_caller_idx
    arc_start = plan.arc_start
    for i in range(nrep):
        st = self_time[i]
        ct = child_time[i]
        total_time[i] = st + ct
        n = plan.ncalls[i]
        if n <= 0:
            continue
        for k in range(arc_start[i], arc_start[i + 1]):
            frac = arc_count[k] / n
            ss = st * frac
            cc = ct * frac
            arc_self[k] = ss
            arc_child[k] = cc
            tot = ss + cc
            child_time[arc_parent[k]] += tot
            routine_child[arc_caller_idx[k]] += tot
    return SolveResult(
        self_time,
        child_time,
        total_time,
        routine_child,
        arc_self,
        arc_child,
        total_program_time,
    )


def _plan_columns(plan: PropPlan):
    """Numpy views of the plan's arc columns, built once per plan.

    The columns are immutable after :func:`build_plan`, so the f8/intp
    conversions (the dominant cost of a naive vector solve) ride the
    plan instance and are shared by every solve against it.
    """
    cols = getattr(plan, "_np_columns", None)
    if cols is None:
        import numpy as np

        cols = (
            np.asarray(plan.arc_count, dtype=np.float64),
            np.asarray(plan.arc_parent, dtype=np.intp),
            np.asarray(plan.arc_caller_idx, dtype=np.intp),
        )
        plan._np_columns = cols
    return cols


def _vector_work(plan: PropPlan):
    """The vector schedule: which reps batch together, built per plan.

    Arcs always push time to a *later* representative (children precede
    parents in the topological order), so a representative's incoming
    ``child_time`` is final before the solve loop reaches it.  That
    lets consecutive narrow-fan-in reps be fused into one batched
    ``('run', ...)`` item — all their self/child times gathered at
    once, all their pushes scattered with one ``np.add.at`` pair — as
    long as no arc already in the batch targets a rep that would join
    it (the ``min_parent`` check below; a target that never reads
    ``child_time`` mid-loop, i.e. has no arcs of its own, is harmless
    to span).  Reps with ≥ ``_VECTOR_MIN_ARCS`` incoming arcs stay
    individual ``('wide', ...)`` items; batches that stay tiny fall
    back to the scalar loop as ``('small', ...)``.

    Item order equals representative order, and ``np.add.at``
    accumulates in index order, so every ``child_time`` slot sees the
    exact push sequence of the scalar loop — bit-identity is preserved,
    batching only removes interpreter overhead.
    """
    work = getattr(plan, "_np_work", None)
    if work is not None:
        return work
    import numpy as np

    arc_start = plan.arc_start
    ncalls = plan.ncalls
    items: list[tuple] = []
    run: list | None = None  # [first_rep, last_rep, min_parent]

    def close_run() -> None:
        nonlocal run
        if run is None:
            return
        u, v = run[0], run[1]
        a, b = arc_start[u], arc_start[v + 1]
        if b - a < _VECTOR_MIN_ARCS:
            reps = [
                (i, arc_start[i], arc_start[i + 1])
                for i in range(u, v + 1)
                if arc_start[i] < arc_start[i + 1] and ncalls[i] > 0
            ]
            items.append(("small", reps))
        else:
            rep_idx = np.asarray(plan.arc_rep[a:b], dtype=np.intp)
            n_col = np.asarray(
                [float(ncalls[r]) for r in plan.arc_rep[a:b]],
                dtype=np.float64,
            )
            items.append(("run", a, b, rep_idx, n_col))
        run = None

    for i in range(len(plan.order)):
        a, b = arc_start[i], arc_start[i + 1]
        if a == b:
            continue  # pure caller: pushes nothing, reads nothing
        if ncalls[i] <= 0:
            close_run()  # its arcs are skipped; keep spans contiguous
            continue
        if b - a >= _VECTOR_MIN_ARCS:
            close_run()
            items.append(("wide", i, a, b))
            continue
        if run is not None and run[2] <= i:
            close_run()  # a batched arc pushes into rep i: flush first
        mp = min(plan.arc_parent[a:b])
        if run is None:
            run = [i, i, mp]
        else:
            run[1] = i
            if mp < run[2]:
                run[2] = mp
    close_run()
    plan._np_work = items
    return items


def _solve_vector(
    plan: PropPlan, self_time: list[float], total_program_time: float
) -> SolveResult:
    import numpy as np

    nrep = len(plan.order)
    narc = len(plan.arc_count)
    counts, parent, caller = _plan_columns(plan)
    st_arr = np.asarray(self_time, dtype=np.float64)
    child_time = np.zeros(nrep, dtype=np.float64)
    routine_child = np.zeros(len(plan.routines), dtype=np.float64)
    # The per-arc shares are assembled as plain lists: vector items
    # slice-assign their ``tolist()`` once, the scalar fallback writes
    # floats directly — both far cheaper than element stores into an
    # ndarray.
    arc_self = [0.0] * narc
    arc_child = [0.0] * narc
    ct_of = child_time.item
    add_at = np.add.at
    for item in _vector_work(plan):
        kind = item[0]
        if kind == "wide":
            _, i, a, b = item
            frac = counts[a:b] / float(plan.ncalls[i])
            ss = self_time[i] * frac
            cc = ct_of(i) * frac
        elif kind == "run":
            _, a, b, rep_idx, n_col = item
            frac = counts[a:b] / n_col
            ss = st_arr[rep_idx] * frac
            cc = child_time[rep_idx] * frac
        else:  # "small": tiny batch, numpy setup would dominate
            for i, a, b in item[1]:
                st = self_time[i]
                ct = ct_of(i)
                n = plan.ncalls[i]
                for k in range(a, b):
                    fr = plan.arc_count[k] / n
                    s1 = st * fr
                    c1 = ct * fr
                    arc_self[k] = s1
                    arc_child[k] = c1
                    t1 = s1 + c1
                    child_time[plan.arc_parent[k]] += t1
                    routine_child[plan.arc_caller_idx[k]] += t1
            continue
        arc_self[a:b] = ss.tolist()
        arc_child[a:b] = cc.tolist()
        tot = ss + cc
        add_at(child_time, parent[a:b], tot)
        add_at(routine_child, caller[a:b], tot)
    # child_time only ever receives pushes from earlier reps, so every
    # slot is final here; total = self + child in one elementwise add.
    total_time = (st_arr + child_time).tolist()
    return SolveResult(
        self_time,
        child_time.tolist(),
        total_time,
        routine_child.tolist(),
        arc_self,
        arc_child,
        total_program_time,
    )
