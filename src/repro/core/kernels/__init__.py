"""repro.core.kernels: backend-selectable bulk kernels for the data plane.

The paper's data plane is three kinds of arithmetic repeated at fleet
scale: summing histogram buckets, condensing ``(from_pc, self_pc)``
arc records, apportioning bucket ticks to routines (§3.2), and pushing
time up the topological order (§4).  Each of those hot paths is served
by a *kernel* with three interchangeable backends:

``python``
    The readable reference: scalar loops that transcribe the paper's
    arithmetic one bucket / one record / one arc at a time.  Every
    fast backend is defined as "produces exactly what this produces".
``array``
    Stdlib-only vectorization: ``struct`` bulk unpacks, ``array``
    column stores, ``itertools.accumulate`` prefix sums, and a
    big-integer lane trick that adds thousands of u32 buckets in one
    C-level integer addition.
``numpy``
    Optional; used only when numpy is importable.  Column arithmetic
    over ``frombuffer`` views of the wire blobs.

Backends are *bit-compatible by construction*: integer kernels are
exact, and the float kernels (apportion, propagate) are arranged so
every rounding step happens on the same values in the same order as
the reference (see :mod:`repro.core.kernels.spans` and
:mod:`repro.core.kernels.prop` for the argument).  The equivalence is
gated twice — a hypothesis suite (``tests/test_kernels_equivalence``)
and the T-KERN byte-identity benchmark (exit 2 on divergence).

Selection: ``REPRO_KERNELS`` environment variable (``auto`` /
``python`` / ``array`` / ``numpy``), overridden per-process by
:func:`set_default_backend` (the CLIs' ``--kernels`` flag).  ``auto``
prefers numpy when present, else ``array``; the ``python`` backend is
never auto-selected — it is the spec, not the fast path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.errors import KernelBackendError

from repro.core.kernels import arcs as _arcs
from repro.core.kernels import buckets as _buckets
from repro.core.kernels import spans as _spans

from repro.core.kernels.arcs import ArcTable
from repro.core.kernels.buckets import BucketAccumulator
from repro.core.kernels.spans import SymbolSpans, build_spans, spans_for

ENV_VAR = "REPRO_KERNELS"

try:  # pragma: no cover - exercised implicitly by backend selection
    import numpy as _np  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is present in CI images
    HAVE_NUMPY = False


@dataclass(frozen=True)
class Backend:
    """One kernel implementation family, selected as a unit.

    Attributes:
        name: registry name (``python`` / ``array`` / ``numpy``).
        bucket_acc: factory for a histogram-bucket accumulator.
        arc_table: factory for an arc-condensing table.
        apportion: span evaluator for bucket→routine apportionment.
        vector_propagate: whether §4 propagation uses the batched
            column solver (numpy only; the stdlib backends share the
            scalar plan walk).
    """

    name: str
    bucket_acc: Callable[[], BucketAccumulator]
    arc_table: Callable[[], ArcTable]
    apportion: Callable[[SymbolSpans, list, float], dict]
    vector_propagate: bool = False


_REGISTRY: dict[str, Backend] = {
    "python": Backend(
        "python",
        _buckets.BucketAccumulator,
        _arcs.ArcTable,
        _spans.apportion_python,
    ),
    "array": Backend(
        "array",
        _buckets.ArrayBucketAccumulator,
        _arcs.ArrayArcTable,
        _spans.apportion_array,
    ),
}
if HAVE_NUMPY:
    _REGISTRY["numpy"] = Backend(
        "numpy",
        _buckets.NumpyBucketAccumulator,
        _arcs.NumpyArcTable,
        _spans.apportion_numpy,
        vector_propagate=True,
    )

#: Process-wide override installed by ``--kernels`` (None = follow env).
_forced: str | None = None


def available_backends() -> tuple[str, ...]:
    """Backend names usable in this interpreter, reference first."""
    return tuple(_REGISTRY)


def _resolve(name: str) -> Backend:
    if name in ("", "auto"):
        return _REGISTRY["numpy" if HAVE_NUMPY else "array"]
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelBackendError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())} (or 'auto')"
        ) from None


def get_backend(name: str | None = None) -> Backend:
    """The kernel backend to use.

    Explicit ``name`` wins; then the :func:`set_default_backend`
    override; then the ``REPRO_KERNELS`` environment variable; then
    auto-detection (numpy if importable, else ``array``).
    """
    if name is not None:
        return _resolve(name.strip().lower())
    if _forced is not None:
        return _resolve(_forced)
    return _resolve(os.environ.get(ENV_VAR, "auto").strip().lower())


def default_backend_name() -> str:
    """Name of the backend :func:`get_backend` would pick right now."""
    return get_backend().name


def set_default_backend(name: str | None) -> None:
    """Install (or with None, clear) a process-wide backend override.

    The CLIs' ``--kernels`` flag lands here; it outranks the
    environment variable.  Raises :class:`KernelBackendError` immediately for
    an unknown or unavailable name.
    """
    global _forced
    if name is not None:
        _resolve(name.strip().lower())  # validate eagerly
        name = name.strip().lower()
    _forced = name


__all__ = [
    "ENV_VAR",
    "HAVE_NUMPY",
    "ArcTable",
    "Backend",
    "BucketAccumulator",
    "KernelBackendError",
    "SymbolSpans",
    "available_backends",
    "build_spans",
    "default_backend_name",
    "get_backend",
    "set_default_backend",
    "spans_for",
]
