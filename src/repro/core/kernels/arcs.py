"""Bulk arc accumulation: condensing ``(from_pc, self_pc)`` records.

Every profiled run appends one 20-byte ``<QQI`` record per distinct
call site (§5: the monitoring routine hashes caller/callee pairs); a
fleet merge sums the counts of equal pairs across thousands of runs.
The canonical state is a ``(from_pc, self_pc) -> count`` dict — every
consumer (``result()`` materialization, digests, stats) reads that —
so the backends differ only in how wire blobs reach the dict:

* :class:`ArcTable` — the reference: ``struct.iter_unpack`` and one
  dict update per record.
* :class:`ArrayArcTable` — one flat ``struct.unpack`` for the whole
  blob, then the same dict updates over step-sliced columns; saves the
  per-record tuple construction.
* :class:`NumpyArcTable` — *deferred* condensing: blobs are stacked as
  structured-array views and condensed only when the table is read —
  one sort + ``add.reduceat`` per flush groups every record of every
  pending blob at C speed (a single u64-key sort when both PCs fit 32
  bits, a two-key lexsort otherwise).  Counts are summed in u64 (exact:
  reaching 2**64 would need 2**32 pending records ≈ 80 GiB of blob)
  and enter the dict as python ints, so cross-flush totals are
  unbounded and identical to the reference.

Addition of non-negative integers is commutative and exact, so all
three orders of summation produce the same table.
"""

from __future__ import annotations

import struct

#: Wire shape of one arc record (kept in sync with repro.gmon.format;
#: duplicated here so the kernels stay importable below the gmon layer).
_ARC = struct.Struct("<QQI")


class ArcTable:
    """Reference arc table: per-record dict updates."""

    backend = "python"

    def __init__(self) -> None:
        self._d: dict[tuple[int, int], int] = {}

    # -- feeding ----------------------------------------------------------

    def fold_blob(self, blob: bytes) -> "ArcTable":
        """Add every ``<QQI`` record of a packed arc blob."""
        d = self._d
        get = d.get
        for from_pc, self_pc, count in _ARC.iter_unpack(blob):
            k = (from_pc, self_pc)
            d[k] = get(k, 0) + count
        return self

    def fold_items(self, items) -> "ArcTable":
        """Add ``(from_pc, self_pc, count)`` triples."""
        d = self._d
        get = d.get
        for from_pc, self_pc, count in items:
            k = (from_pc, self_pc)
            d[k] = get(k, 0) + count
        return self

    def fold(self, other: "ArcTable") -> "ArcTable":
        """Fold another table (any backend) into this one."""
        d = self._d
        get = d.get
        for k, c in other.as_dict().items():
            d[k] = get(k, 0) + c
        return self

    # -- results ----------------------------------------------------------

    def as_dict(self) -> dict[tuple[int, int], int]:
        """The condensed table itself; treat as read-only."""
        return self._d

    def sorted_items(self):
        """``((from_pc, self_pc), count)`` pairs in ascending key order."""
        return sorted(self.as_dict().items())

    def __len__(self) -> int:
        return len(self.as_dict())

    def total_count(self) -> int:
        """Sum of all traversal counts."""
        return sum(self.as_dict().values())


class ArrayArcTable(ArcTable):
    """Stdlib fast path: one bulk unpack per blob."""

    backend = "array"

    def fold_blob(self, blob: bytes) -> "ArrayArcTable":
        n = len(blob) // _ARC.size
        if not n:
            return self
        flat = struct.unpack("<" + "QQI" * n, blob)
        d = self._d
        get = d.get
        for k, count in zip(zip(flat[0::3], flat[1::3]), flat[2::3]):
            d[k] = get(k, 0) + count
        return self


class NumpyArcTable(ArcTable):
    """Numpy fast path: stack blobs, condense on read."""

    backend = "numpy"

    def __init__(self) -> None:
        super().__init__()
        self._pending: list = []  # structured-array views, not yet condensed

    def fold_blob(self, blob: bytes) -> "NumpyArcTable":
        if blob:
            import numpy as np

            self._pending.append(
                np.frombuffer(
                    blob, dtype=np.dtype([("f", "<u8"), ("s", "<u8"), ("c", "<u4")])
                )
            )
        return self

    def _flush(self) -> None:
        if not self._pending:
            return
        import numpy as np

        rec = (
            self._pending[0]
            if len(self._pending) == 1
            else np.concatenate(self._pending)
        )
        self._pending = []
        f, s = rec["f"], rec["s"]
        if int(f.max()) < 1 << 32 and int(s.max()) < 1 << 32:
            # PCs fit 32 bits (every VM image here, and most real ones):
            # pack the pair into one u64 so grouping needs a single-key
            # sort instead of a two-key lexsort — ~4x faster, and the
            # sums are unchanged (integer addition is commutative).
            key = (f << np.uint64(32)) | s
            order = np.argsort(key)
            ks = key[order]
            c = rec["c"][order].astype(np.uint64)
            starts = np.flatnonzero(
                np.concatenate(([True], ks[1:] != ks[:-1]))
            )
            sums = np.add.reduceat(c, starts)
            uk = ks[starts]
            froms = (uk >> np.uint64(32)).tolist()
            selfs = (uk & np.uint64(0xFFFFFFFF)).tolist()
        else:
            order = np.lexsort((s, f))
            fo = f[order]
            so = s[order]
            c = rec["c"][order].astype(np.uint64)
            starts = np.flatnonzero(
                np.concatenate(
                    ([True], (fo[1:] != fo[:-1]) | (so[1:] != so[:-1]))
                )
            )
            sums = np.add.reduceat(c, starts)
            froms = fo[starts].tolist()
            selfs = so[starts].tolist()
        d = self._d
        get = d.get
        for k, count in zip(zip(froms, selfs), sums.tolist()):
            d[k] = get(k, 0) + count
        return

    def as_dict(self) -> dict[tuple[int, int], int]:
        self._flush()
        return self._d
