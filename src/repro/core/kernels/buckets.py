"""Bulk histogram-bucket summation.

A fleet merge folds thousands of equal-layout bucket vectors into one.
The wire form (:class:`repro.gmon.format.RawGmon`) keeps each vector
as the packed little-endian u32 blob it arrived in, so the fold can
consume raw bytes without ever materializing per-input lists.

Three accumulators, one contract: after any sequence of
``fold_blob`` / ``fold_seq`` / ``fold`` calls, :meth:`to_list`
returns exactly the per-bucket integer sums — bucket counts are
non-negative integers, so every backend is exact and the results are
identical, not merely close.

* :class:`BucketAccumulator` — the reference: one python loop
  iteration per bucket per input.
* :class:`ArrayBucketAccumulator` — widens each u32 blob into u64
  lanes with four strided ``bytearray`` slice assignments and adds the
  whole vector as **one big Python integer**: thousands of buckets per
  C-level add.  Exactness holds while every lane stays below 2**64,
  which a conservative per-lane bound enforces; if the bound ever
  approaches overflow (≈2**32 maximally-saturated inputs) the
  accumulator demotes itself to exact per-lane python ints.
* :class:`NumpyBucketAccumulator` — ``np.frombuffer`` views summed
  into a u64 vector, same demotion rule.
"""

from __future__ import annotations

import struct

from array import array

from repro.errors import KernelBackendError

#: Lane-overflow guard for the widened representations: demote to exact
#: python ints before any per-lane sum could reach 2**64.
_LANE_LIMIT = 1 << 64


class BucketAccumulator:
    """Reference bucket accumulator: per-bucket scalar addition."""

    backend = "python"

    def __init__(self) -> None:
        self._buf: list[int] | None = None

    # -- feeding ----------------------------------------------------------

    def fold_blob(self, blob: bytes) -> "BucketAccumulator":
        """Add one packed little-endian u32 bucket vector."""
        n = len(blob) >> 2
        return self.fold_seq(struct.unpack(f"<{n}I", blob))

    def fold_seq(self, counts) -> "BucketAccumulator":
        """Add one bucket vector given as a sequence of ints."""
        n = len(counts)
        if self._buf is None:
            buf = [0] * n
            for i in range(n):
                buf[i] = counts[i]
            self._buf = buf
            return self
        buf = self._buf
        self._check(n, len(buf))
        for i in range(n):
            buf[i] += counts[i]
        return self

    def fold(self, other: "BucketAccumulator") -> "BucketAccumulator":
        """Fold another accumulator (any backend) into this one."""
        if not other.empty:
            self.fold_seq(other.to_list())
        return self

    @staticmethod
    def _check(got: int, want: int) -> None:
        if got != want:
            raise KernelBackendError(
                f"bucket vector length {got} does not match the "
                f"accumulated layout ({want} buckets)"
            )

    # -- results ----------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True while nothing has been folded."""
        return self._buf is None

    def to_list(self) -> list[int]:
        """The per-bucket sums as a fresh list ([] while empty)."""
        return list(self._buf) if self._buf is not None else []

    def total(self) -> int:
        """Sum over all buckets."""
        return sum(self._buf) if self._buf is not None else 0


class ArrayBucketAccumulator(BucketAccumulator):
    """Stdlib fast path: the whole vector as one big integer.

    The accumulator is a single Python int whose 64-bit little-endian
    lanes are the bucket sums.  Folding a u32 wire blob widens it to
    u64 lanes via strided slice assignment (all C) and performs one
    arbitrary-precision addition; lanes never carry into each other
    while each stays below 2**64, which ``_bound`` guarantees.
    """

    backend = "array"

    def __init__(self) -> None:
        self._acc = 0
        self._n: int | None = None
        self._bound = 0  # conservative max over per-lane sums
        self._exact: list[int] | None = None  # post-demotion storage

    def fold_blob(self, blob: bytes) -> "ArrayBucketAccumulator":
        n = len(blob) >> 2
        if self._exact is not None:
            self._check(n, len(self._exact))
            vals = struct.unpack(f"<{n}I", blob)
            buf = self._exact
            for i in range(n):
                buf[i] += vals[i]
            return self
        if self._n is None:
            self._n = n
        else:
            self._check(n, self._n)
        if n == 0:
            return self
        if self._bound + 0xFFFFFFFF >= _LANE_LIMIT:
            self._demote()
            return self.fold_blob(blob)
        wide = bytearray(8 * n)
        wide[0::8] = blob[0::4]
        wide[1::8] = blob[1::4]
        wide[2::8] = blob[2::4]
        wide[3::8] = blob[3::4]
        self._acc += int.from_bytes(wide, "little")
        self._bound += 0xFFFFFFFF
        return self

    def fold_seq(self, counts) -> "ArrayBucketAccumulator":
        n = len(counts)
        if self._exact is not None:
            self._check(n, len(self._exact))
            buf = self._exact
            for i in range(n):
                buf[i] += counts[i]
            return self
        if self._n is None:
            self._n = n
        else:
            self._check(n, self._n)
        if n == 0:
            return self
        peak = max(counts)
        if peak >= _LANE_LIMIT or self._bound + peak >= _LANE_LIMIT:
            self._demote()
            return self.fold_seq(counts)
        self._acc += int.from_bytes(struct.pack(f"<{n}Q", *counts), "little")
        self._bound += peak
        return self

    def _demote(self) -> None:
        """Fall back to exact per-lane ints (lanes nearing 2**64)."""
        self._exact = self._lanes()

    def _lanes(self) -> list[int]:
        if self._n is None or self._n == 0:
            return []
        out = array("Q")
        out.frombytes(self._acc.to_bytes(8 * self._n, "little"))
        return out.tolist()

    @property
    def empty(self) -> bool:
        return self._n is None and self._exact is None

    def to_list(self) -> list[int]:
        if self._exact is not None:
            return list(self._exact)
        return self._lanes()

    def total(self) -> int:
        if self._exact is not None:
            return sum(self._exact)
        return sum(self._lanes())


class NumpyBucketAccumulator(BucketAccumulator):
    """Numpy fast path: in-place u64 vector adds over blob views."""

    backend = "numpy"

    def __init__(self) -> None:
        self._vec = None  # np.ndarray[u64] | None
        self._bound = 0
        self._exact: list[int] | None = None

    def fold_blob(self, blob: bytes) -> "NumpyBucketAccumulator":
        import numpy as np

        lanes = np.frombuffer(blob, dtype="<u4")
        if self._exact is not None:
            self._check(len(lanes), len(self._exact))
            vals = lanes.tolist()
            buf = self._exact
            for i in range(len(vals)):
                buf[i] += vals[i]
            return self
        if self._vec is None:
            self._vec = lanes.astype(np.uint64)
            self._bound = 0xFFFFFFFF
            return self
        self._check(len(lanes), len(self._vec))
        if self._bound + 0xFFFFFFFF >= _LANE_LIMIT:
            self._demote()
            return self.fold_blob(blob)
        self._vec += lanes
        self._bound += 0xFFFFFFFF
        return self

    def fold_seq(self, counts) -> "NumpyBucketAccumulator":
        import numpy as np

        n = len(counts)
        if self._exact is None and n:
            peak = max(counts)
            if peak >= _LANE_LIMIT or self._bound + peak >= _LANE_LIMIT:
                self._demote(n)
            else:
                vals = np.asarray(
                    counts if isinstance(counts, (list, tuple))
                    else list(counts),
                    dtype=np.uint64,
                )
                if self._vec is None:
                    self._vec = vals
                else:
                    self._check(n, len(self._vec))
                    self._vec += vals
                self._bound += peak
                return self
        if self._exact is not None:
            self._check(n, len(self._exact))
            buf = self._exact
            for i in range(n):
                buf[i] += counts[i]
            return self
        # n == 0: record the (empty) layout like the reference does.
        if self._vec is None and self._exact is None:
            self._exact = []
        return self

    def _demote(self, n: int = 0) -> None:
        self._exact = self._vec.tolist() if self._vec is not None else [0] * n
        self._vec = None

    @property
    def empty(self) -> bool:
        return self._vec is None and self._exact is None

    def to_list(self) -> list[int]:
        if self._exact is not None:
            return list(self._exact)
        return self._vec.tolist() if self._vec is not None else []

    def total(self) -> int:
        if self._exact is not None:
            return sum(self._exact)
        return int(self._vec.sum(dtype=object)) if self._vec is not None else 0
