"""Vectorized bucket→routine apportionment (§3.2).

``Histogram.assign_samples`` charges each bucket's ticks to the
routines overlapping it, weighted by overlap fraction.  The geometry —
which buckets a routine touches and with what weight — depends only on
the histogram *layout* (``low_pc``/``high_pc``/bucket count) and the
symbol table, never on the counts, so it is precomputed once per
layout as a :class:`SymbolSpans` and reused across every input of a
fleet (and across pipeline runs, via the ``spans`` kind of the
:class:`~repro.pipeline.cache.AnalysisCache`).

Each symbol's span is compressed into segments:

* ``('r', a, b)`` — a maximal run of buckets ``[a, b)`` whose overlap
  weight is *exactly* 1.0 (the common case: every bucket interior to
  the routine).  Its contribution is the plain integer sum of the
  bucket counts.
* ``('e', idx, w)`` — a single bucket with fractional weight ``w``
  (the routine's edges, and every bucket of routines narrower than a
  bucket).

Why every backend is bit-identical to every other, not merely close:
evaluation adds segment contributions in ascending bucket order —
edges as a scalar ``counts[idx] * w`` multiply, runs as
``float(integer_sum)`` — and the three backends differ *only* in how
a run's integer sum is computed: per-bucket python loop (python),
``itertools.accumulate`` prefix sums (array), u64 ``np.cumsum``
(numpy).  Integer arithmetic is exact in all three (sums below 2**53
convert to float losslessly; the guard in :func:`apportion_numpy`
keeps u64 exact), so all backends perform the same sequence of float
operations on the same values.

Relative to the historical per-bucket evaluation (which added every
run bucket to the accumulator one at a time), collapsing a run into
one addition *reassociates* the float sum; when a fractional edge
precedes a run the result can differ in the last ULP.  That is a
deliberate, documented semantics choice: the segment walk is now the
definition, all backends implement it exactly, and the equivalence
suite pins both the cross-backend bit-identity and the ≤1e-9 relative
agreement with the historical formula (listings round to 0.01s, so
the goldens are insensitive to it).
"""

from __future__ import annotations

from itertools import accumulate


class SymbolSpans:
    """Precomputed overlap segments for one (layout, symbol table).

    Attributes:
        low_pc, high_pc, nbuckets: the histogram layout this was built
            for (evaluating against any other layout is a caller bug).
        entries: ``(symbol_name, segments)`` in symbol-table order.
    """

    __slots__ = ("low_pc", "high_pc", "nbuckets", "entries")

    def __init__(self, low_pc, high_pc, nbuckets, entries):
        self.low_pc = low_pc
        self.high_pc = high_pc
        self.nbuckets = nbuckets
        self.entries = entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SymbolSpans([{self.low_pc:#x},{self.high_pc:#x})"
            f"x{self.nbuckets}, {len(self.entries)} symbols)"
        )


def build_spans(low_pc, high_pc, nbuckets, symbols) -> SymbolSpans:
    """Compute every symbol's overlap segments for one layout.

    The per-bucket formulas are lifted verbatim from the reference
    ``assign_samples`` loop, so the weights here are the exact floats
    the reference would have multiplied by.
    """
    entries = []
    if nbuckets:
        width = (high_pc - low_pc) / nbuckets
        for sym in symbols:
            if sym.end <= low_pc or sym.address >= high_pc:
                continue
            first = max(int((sym.address - low_pc) / width) - 1, 0)
            last = min(int((sym.end - low_pc) / width) + 1, nbuckets - 1)
            segs: list[tuple] = []
            run_start = -1
            for idx in range(first, last + 1):
                b_lo = low_pc + idx * width
                overlap = min(b_lo + width, sym.end) - max(b_lo, sym.address)
                w = (overlap / width) if overlap > 0 else 0.0
                if w == 1.0:
                    if run_start < 0:
                        run_start = idx
                    continue
                if run_start >= 0:
                    segs.append(("r", run_start, idx))
                    run_start = -1
                if w > 0.0:
                    segs.append(("e", idx, w))
            if run_start >= 0:
                segs.append(("r", run_start, last + 1))
            if segs:
                entries.append((sym.name, segs))
    return SymbolSpans(low_pc, high_pc, nbuckets, entries)


def spans_for(symbols, low_pc, high_pc, nbuckets) -> SymbolSpans:
    """:func:`build_spans`, memoized on the symbol-table instance.

    A symbol table is immutable once built (the pipeline digests rely
    on this already), so spans can live with it keyed by layout —
    repeated analyses of same-layout profiles (the PGO loop, the
    consistency checker) pay the geometry walk once.
    """
    memo = getattr(symbols, "_kernel_spans", None)
    if memo is None:
        memo = {}
        try:
            symbols._kernel_spans = memo
        except AttributeError:  # slotted/foreign table: skip memoization
            return build_spans(low_pc, high_pc, nbuckets, symbols)
    key = (low_pc, high_pc, nbuckets)
    spans = memo.get(key)
    if spans is None:
        spans = memo[key] = build_spans(low_pc, high_pc, nbuckets, symbols)
    return spans


def _evaluate(spans: SymbolSpans, counts, sec_per_tick, run_sum) -> dict:
    """Shared segment walk; ``run_sum(a, b)`` supplies run integers."""
    times: dict[str, float] = {}
    for name, segs in spans.entries:
        acc = 0.0
        for seg in segs:
            if seg[0] == "r":
                acc += float(run_sum(seg[1], seg[2]))
            else:
                acc += counts[seg[1]] * seg[2]
        if acc:
            times[name] = acc * sec_per_tick
    return times


def apportion_python(spans: SymbolSpans, counts, sec_per_tick) -> dict:
    """Reference evaluator: per-bucket python loop inside each run."""

    def run_sum(a: int, b: int) -> int:
        total = 0
        for idx in range(a, b):
            total += counts[idx]
        return total

    return _evaluate(spans, counts, sec_per_tick, run_sum)


def apportion_array(spans: SymbolSpans, counts, sec_per_tick) -> dict:
    """Stdlib evaluator: one prefix-sum pass, O(1) per run."""
    if not spans.entries:
        return {}
    prefix = list(accumulate(counts, initial=0))
    return _evaluate(
        spans, counts, sec_per_tick, lambda a, b: prefix[b] - prefix[a]
    )


def apportion_numpy(spans: SymbolSpans, counts, sec_per_tick) -> dict:
    """Numpy evaluator: u64 cumulative sum, O(1) per run."""
    if not spans.entries:
        return {}
    n = len(counts)
    peak = max(counts) if n else 0
    if peak and peak * n >= 1 << 64:
        # Conservative u64-overflow guard; big ints stay exact in the
        # stdlib path.  Unreachable for wire-format inputs (u32 counts).
        return apportion_array(spans, counts, sec_per_tick)
    import numpy as np

    cs = np.zeros(n + 1, dtype=np.uint64)
    np.cumsum(np.asarray(counts, dtype=np.uint64), out=cs[1:])
    # Only the segment endpoints are ever read — index the u64 vector
    # directly instead of boxing every lane.  u64 -> int is exact, so
    # run sums equal the reference's python-int sums bit for bit.
    item = cs.item
    return _evaluate(
        spans, counts, sec_per_tick, lambda a, b: item(b) - item(a)
    )
