"""The gprof post-processing core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.symbols.Symbol`, :class:`~repro.core.symbols.SymbolTable`
* :class:`~repro.core.arcs.RawArc`, :class:`~repro.core.arcs.Arc`,
  :class:`~repro.core.arcs.ArcSet`
* :class:`~repro.core.histogram.Histogram`
* :class:`~repro.core.callgraph.CallGraph`
* :func:`~repro.core.cycles.number_graph` and friends
* :func:`~repro.core.propagate.propagate`
* :class:`~repro.core.profiledata.ProfileData`,
  :func:`~repro.core.profiledata.merge_profiles`
* :func:`~repro.core.analysis.analyze`, :class:`~repro.core.analysis.Profile`
"""

from repro.core.analysis import (
    AnalysisOptions,
    FlatEntry,
    GraphEntry,
    Profile,
    RelativeLine,
    analyze,
)
from repro.core.arcs import Arc, ArcSet, RawArc, symbolize_arcs
from repro.core.callgraph import CallGraph
from repro.core.compare import ProfileDelta, compare_profiles, format_delta
from repro.core.coverage import CoverageReport, coverage, format_coverage
from repro.core.export import profile_to_dict, save_profile_json
from repro.core.regress import Baseline, Rule, Violation, check as check_baseline
from repro.core.cycles import (
    Cycle,
    NumberedGraph,
    number_graph,
    paper_numbering,
    strongly_connected_components,
    verify_topological,
)
from repro.core.histogram import DEFAULT_PROFRATE, Histogram, sum_histograms
from repro.core.profiledata import ProfileData, merge_profiles
from repro.core.propagate import ArcShare, Propagation, propagate
from repro.core.symbols import SPONTANEOUS, Symbol, SymbolTable

__all__ = [
    "AnalysisOptions",
    "Arc",
    "ArcSet",
    "ArcShare",
    "Baseline",
    "CallGraph",
    "CoverageReport",
    "Cycle",
    "DEFAULT_PROFRATE",
    "FlatEntry",
    "GraphEntry",
    "Histogram",
    "NumberedGraph",
    "Profile",
    "ProfileData",
    "Propagation",
    "ProfileDelta",
    "RawArc",
    "RelativeLine",
    "Rule",
    "SPONTANEOUS",
    "Symbol",
    "SymbolTable",
    "Violation",
    "analyze",
    "check_baseline",
    "compare_profiles",
    "coverage",
    "format_coverage",
    "format_delta",
    "profile_to_dict",
    "save_profile_json",
    "merge_profiles",
    "number_graph",
    "paper_numbering",
    "propagate",
    "strongly_connected_components",
    "sum_histograms",
    "symbolize_arcs",
    "verify_topological",
]
