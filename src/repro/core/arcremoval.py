"""Breaking giant cycles by removing a few low-count arcs.

The retrospective describes the problem: in the Berkeley kernel "there
were several large cycles in the profiles", making it "impossible to get
useful timing results for modules like the networking stack", yet "there
were just a few arcs — with low traversal counts — that closed the
cycles".  gprof grew two remedies:

1. an option to *specify* a set of arcs to remove from the analysis
   (:func:`remove_arcs`), effective but requiring intimate knowledge of
   the program; and
2. a *heuristic* to choose arcs automatically.  The underlying problem —
   find the minimum set of arcs whose removal makes a strongly-connected
   subgraph acyclic (minimum feedback arc set) — is NP-complete, so the
   heuristic is bounded by a maximum number of arcs it will try.

Our heuristic mirrors that spirit: repeatedly delete the
lowest-traversal-count arc that still participates in a non-trivial
strongly-connected component, stopping when the graph is acyclic or the
bound is exhausted.  For tiny components an exact (exhaustive) solver is
provided so benchmarks can measure how close the heuristic gets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.arcs import Arc
from repro.core.callgraph import CallGraph
from repro.core.cycles import strongly_connected_components


@dataclass(frozen=True)
class RemovedArc:
    """An arc deleted from the analysis, with its traversal count."""

    caller: str
    callee: str
    count: int


def remove_arcs(graph: CallGraph, pairs) -> list[RemovedArc]:
    """Delete the user-specified ``(caller, callee)`` pairs from ``graph``.

    Unknown pairs are ignored (the user may list arcs that this
    particular run never traversed).  Returns the arcs actually removed.
    Mutates ``graph``.
    """
    removed: list[RemovedArc] = []
    for caller, callee in pairs:
        arc = graph.arc(caller, callee)
        if arc is not None and graph.remove_arc(caller, callee):
            removed.append(RemovedArc(caller, callee, arc.count))
    return removed


def _cyclic_arcs(graph: CallGraph) -> list[Arc]:
    """Arcs lying inside some non-trivial strongly-connected component."""
    membership: dict[str, int] = {}
    for i, comp in enumerate(strongly_connected_components(graph)):
        if len(comp) > 1:
            for node in comp:
                membership[node] = i
    return [
        arc
        for arc in graph.arcs()
        if arc.caller != arc.callee
        and membership.get(arc.caller) is not None
        and membership.get(arc.caller) == membership.get(arc.callee)
    ]


def break_cycles_heuristic(
    graph: CallGraph,
    max_arcs: int = 10,
) -> list[RemovedArc]:
    """Greedy bounded cycle breaking: drop cheap arcs until acyclic.

    Repeatedly removes the arc with the lowest traversal count among
    those that still sit inside a non-trivial strongly-connected
    component (ties broken by name for determinism).  Stops when no
    non-trivial component remains or ``max_arcs`` arcs have been removed
    — the bound the retrospective added because the exact problem is
    NP-complete.

    Mutates ``graph``; returns the removed arcs in removal order.  The
    information lost is exactly the traversal counts of the returned
    arcs, which callers can (and the report does) surface to the user.
    """
    removed: list[RemovedArc] = []
    for _ in range(max_arcs):
        candidates = _cyclic_arcs(graph)
        if not candidates:
            break
        victim = min(candidates, key=lambda a: (a.count, a.caller, a.callee))
        graph.remove_arc(victim.caller, victim.callee)
        removed.append(RemovedArc(victim.caller, victim.callee, victim.count))
    return removed


def break_cycles_exact(
    graph: CallGraph,
    max_arcs: int = 6,
) -> list[RemovedArc] | None:
    """Exhaustive feedback arc set, for small graphs only.

    Minimizes lexicographically: first the *number* of removed arcs
    (the quantity the retrospective bounds), then the total traversal
    count discarded.  Returns None when no subset within ``max_arcs``
    works.  Exponential — exists so benchmarks can score the greedy
    heuristic, exactly the comparison the retrospective implies.

    Does *not* mutate ``graph``.
    """
    base_candidates = _cyclic_arcs(graph)
    if not base_candidates:
        return []
    best: list[RemovedArc] | None = None
    best_cost = None
    for size in range(1, min(max_arcs, len(base_candidates)) + 1):
        for subset in itertools.combinations(base_candidates, size):
            cost = sum(a.count for a in subset)
            if best_cost is not None and (size, cost) >= best_cost:
                continue
            trial = graph.copy()
            for arc in subset:
                trial.remove_arc(arc.caller, arc.callee)
            if not _cyclic_arcs(trial):
                best = [RemovedArc(a.caller, a.callee, a.count) for a in subset]
                best_cost = (size, cost)
        if best is not None:
            # A solution of this size exists; smaller sizes were already
            # tried, so only cheaper same-size solutions could beat it —
            # and the loop above already minimized cost within the size.
            break
    return best


def information_lost(removed: list[RemovedArc], total_calls: int) -> float:
    """Fraction of dynamic call traversals discarded by arc removal.

    The retrospective's observation — "the information lost by omitting
    these arcs was far less than the information gained" — quantified.
    """
    if total_calls <= 0:
        return 0.0
    return sum(r.count for r in removed) / total_calls
