"""Performance regression gates over profiles (CI for §6's loop).

Once the §6 iterative loop has driven a bottleneck down, teams want it
to *stay* down.  A :class:`Baseline` captures per-routine expectations
from a known-good profile (as tolerant percentages, not absolute
seconds — simulators and machines vary); :func:`check` evaluates a
fresh profile against it and reports violations, ready to fail a CI
job.

Rules supported per routine:

* ``max_total_percent`` — the routine (with descendants) must not grow
  past this share of total time;
* ``max_self_percent`` — likewise for self time only;
* ``max_calls`` — call-count budget (e.g. "the rehash path runs at
  most N times");
* ``must_run`` / ``must_not_run`` — §2's boolean coverage view as a
  gate ("the old implementation must be gone").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.analysis import Profile
from repro.errors import ReproError

FORMAT = "repro-baseline-1"


@dataclass(frozen=True)
class Rule:
    """Expectations for one routine.

    Unset fields (None/False) are not checked.
    """

    name: str
    max_total_percent: float | None = None
    max_self_percent: float | None = None
    max_calls: int | None = None
    must_run: bool = False
    must_not_run: bool = False


@dataclass(frozen=True)
class Violation:
    """One failed expectation, with measured vs allowed values."""

    name: str
    rule: str
    allowed: object
    measured: object

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.rule} violated "
            f"(allowed {self.allowed}, measured {self.measured})"
        )


@dataclass
class Baseline:
    """A set of per-routine rules, serializable for the repository."""

    rules: list[Rule] = field(default_factory=list)
    comment: str = ""

    def rule_for(self, name: str) -> Rule | None:
        """The rule covering ``name``, if any.

        O(1): a name index is built on first use and rebuilt if the
        rule list changes size (first rule wins on duplicates, matching
        the original scan order).
        """
        index = self.__dict__.get("_rule_index")
        if index is None or len(index) != len(self.rules):
            index = {}
            for rule in self.rules:
                index.setdefault(rule.name, rule)
            self.__dict__["_rule_index"] = index
        return index.get(name)

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_profile(
        cls,
        profile: Profile,
        headroom: float = 1.25,
        min_percent: float = 1.0,
        comment: str = "",
    ) -> "Baseline":
        """Capture a known-good profile as a tolerant baseline.

        Every routine at or above ``min_percent`` of total time gets a
        ``max_total_percent`` budget of ``headroom`` times its current
        share (capped at 100).
        """
        if headroom < 1.0:
            raise ReproError(f"headroom must be >= 1.0, got {headroom}")
        rules = [
            Rule(
                name=entry.name,
                max_total_percent=min(entry.percent * headroom, 100.0),
                must_run=True,
            )
            for entry in profile.graph_entries
            if not entry.is_cycle and entry.percent >= min_percent
        ]
        return cls(rules=rules, comment=comment)

    # -- persistence --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "comment": self.comment,
            "rules": [
                {
                    "name": r.name,
                    "max_total_percent": r.max_total_percent,
                    "max_self_percent": r.max_self_percent,
                    "max_calls": r.max_calls,
                    "must_run": r.must_run,
                    "must_not_run": r.must_not_run,
                }
                for r in self.rules
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Baseline":
        if data.get("format") != FORMAT:
            raise ReproError(f"unknown baseline format {data.get('format')!r}")
        return cls(
            rules=[
                Rule(
                    name=r["name"],
                    max_total_percent=r.get("max_total_percent"),
                    max_self_percent=r.get("max_self_percent"),
                    max_calls=r.get("max_calls"),
                    must_run=r.get("must_run", False),
                    must_not_run=r.get("must_not_run", False),
                )
                for r in data["rules"]
            ],
            comment=data.get("comment", ""),
        )

    def save(self, path) -> None:
        """Write the baseline as JSON."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=1)

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline written by :meth:`save`."""
        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))


def check(profile: Profile, baseline: Baseline) -> list[Violation]:
    """Evaluate a fresh profile against a baseline.

    Returns the violations (empty = gate passes), most severe first
    (coverage failures, then budget overruns by relative size).
    """
    violations: list[Violation] = []
    for rule in baseline.rules:
        entry = profile.entry(rule.name)
        ran = entry is not None and (
            entry.ncalls + entry.self_calls > 0 or entry.self_seconds > 0
        )
        if rule.must_run and not ran:
            violations.append(
                Violation(rule.name, "must_run", True, False)
            )
            continue
        if rule.must_not_run and ran:
            violations.append(
                Violation(rule.name, "must_not_run", False, True)
            )
            continue
        if entry is None:
            continue
        if (
            rule.max_total_percent is not None
            and entry.percent > rule.max_total_percent
        ):
            violations.append(
                Violation(
                    rule.name,
                    "max_total_percent",
                    round(rule.max_total_percent, 2),
                    round(entry.percent, 2),
                )
            )
        self_pct = (
            100.0 * entry.self_seconds / profile.total_seconds
            if profile.total_seconds > 0
            else 0.0
        )
        if (
            rule.max_self_percent is not None
            and self_pct > rule.max_self_percent
        ):
            violations.append(
                Violation(
                    rule.name,
                    "max_self_percent",
                    round(rule.max_self_percent, 2),
                    round(self_pct, 2),
                )
            )
        calls = entry.ncalls + entry.self_calls
        if rule.max_calls is not None and calls > rule.max_calls:
            violations.append(
                Violation(rule.name, "max_calls", rule.max_calls, calls)
            )

    def severity(v: Violation):
        if v.rule in ("must_run", "must_not_run"):
            return (0, 0.0)
        try:
            overrun = float(v.measured) / float(v.allowed or 1)
        except (TypeError, ZeroDivisionError):
            overrun = float("inf")
        return (1, -overrun)

    violations.sort(key=lambda v: (*severity(v), v.name))
    return violations


def format_violations(violations: list[Violation]) -> str:
    """A CI-log-friendly rendering of the gate's result."""
    if not violations:
        return "performance gate: PASS\n"
    lines = [f"performance gate: FAIL ({len(violations)} violation(s))"]
    lines.extend(f"  {v}" for v in violations)
    return "\n".join(lines) + "\n"
