"""The program-counter sample histogram and self-time apportionment.

§3.2 of the paper: the operating system maintains a histogram of the
program counter observed at every clock tick.  The histogram covers the
address range ``[low_pc, high_pc)`` with equal-width buckets; each bucket
counts the ticks whose PC fell in its range.  "The ranges themselves are
summarized as a lower and upper bound and a step size."

Post-processing turns bucket counts into per-routine *self time*: each
bucket's ticks are divided among the routines overlapping the bucket, in
proportion to the overlap (identical to BSD/GNU gprof's ``asgnsamples``).
When the histogram granularity maps program counters one-to-one onto
buckets — the paper's "expansive" 32-bit configuration — the
apportionment is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.symbols import SymbolTable
from repro.errors import HistogramError

#: Default profiling clock rate: the paper's environment sampled the PC at
#: the end of each 1/60th-of-a-second clock tick.
DEFAULT_PROFRATE = 60


@dataclass
class Histogram:
    """A PC-sample histogram.

    Attributes:
        low_pc: inclusive lower bound of the sampled address range.
        high_pc: exclusive upper bound.
        counts: one counter per bucket; ``len(counts)`` buckets of equal
            width span ``[low_pc, high_pc)``.
        profrate: clock ticks per second of profiled time; converts tick
            counts into seconds.
    """

    low_pc: int
    high_pc: int
    counts: list[int]
    profrate: int = DEFAULT_PROFRATE

    def __post_init__(self) -> None:
        if self.high_pc < self.low_pc:
            raise HistogramError(
                f"high_pc (0x{self.high_pc:x}) below low_pc (0x{self.low_pc:x})"
            )
        if self.profrate <= 0:
            raise HistogramError(f"profrate must be positive, got {self.profrate}")
        if self.high_pc > self.low_pc and not self.counts:
            raise HistogramError("non-empty address range but zero buckets")
        if any(c < 0 for c in self.counts):
            raise HistogramError("negative bucket count")

    # -- geometry -------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        """Number of buckets."""
        return len(self.counts)

    @property
    def bucket_width(self) -> float:
        """Address units covered by each bucket."""
        if not self.counts:
            return 0.0
        return (self.high_pc - self.low_pc) / len(self.counts)

    @property
    def total_ticks(self) -> int:
        """Total number of PC samples recorded."""
        return sum(self.counts)

    @property
    def total_time(self) -> float:
        """Total sampled time in seconds."""
        return self.total_ticks / self.profrate

    @property
    def seconds_per_tick(self) -> float:
        """Duration represented by one sample."""
        return 1.0 / self.profrate

    def bucket_for(self, pc: int) -> int | None:
        """Index of the bucket covering ``pc``, or None if out of range."""
        if not self.counts or not (self.low_pc <= pc < self.high_pc):
            return None
        width = self.bucket_width
        idx = int((pc - self.low_pc) / width)
        return min(idx, len(self.counts) - 1)

    def record(self, pc: int) -> bool:
        """Record one PC sample; True if it fell inside the range.

        This is the data-gathering side: the simulated kernel clock calls
        it once per tick.
        """
        idx = self.bucket_for(pc)
        if idx is None:
            return False
        self.counts[idx] += 1
        return True

    # -- construction helpers --------------------------------------------------

    @classmethod
    def for_range(
        cls,
        low_pc: int,
        high_pc: int,
        scale: float = 1.0,
        profrate: int = DEFAULT_PROFRATE,
    ) -> "Histogram":
        """Create an empty histogram over ``[low_pc, high_pc)``.

        ``scale`` is buckets per address unit: 1.0 gives the one-to-one
        mapping the paper's authors were so pleased to afford; smaller
        values give a coarser (smaller) histogram, as on 16-bit machines.
        """
        if scale <= 0:
            raise HistogramError(f"scale must be positive, got {scale}")
        span = max(high_pc - low_pc, 0)
        buckets = max(int(span * scale), 1) if span else 0
        return cls(low_pc, high_pc, [0] * buckets, profrate)

    def reset(self) -> None:
        """Zero every bucket (the kgmon 'reset' operation)."""
        for i in range(len(self.counts)):
            self.counts[i] = 0

    def copy(self) -> "Histogram":
        """An independent copy (used by kgmon snapshot extraction)."""
        return Histogram(self.low_pc, self.high_pc, list(self.counts), self.profrate)

    def compatible_with(self, other: "Histogram") -> bool:
        """Whether two histograms can be summed bucket-by-bucket."""
        return (
            self.low_pc == other.low_pc
            and self.high_pc == other.high_pc
            and len(self.counts) == len(other.counts)
            and self.profrate == other.profrate
        )

    def ticks_in_range(self, lo: int, hi: int) -> float:
        """Ticks attributable to addresses ``[lo, hi)``.

        Buckets partially overlapping the range contribute fractionally
        (same apportionment rule as :meth:`assign_samples`); with the
        one-to-one bucket configuration the result is exact.  Used by
        the annotated-disassembly listing to charge samples to single
        instructions.
        """
        if not self.counts or hi <= lo:
            return 0.0
        width = self.bucket_width
        nb = len(self.counts)
        first = max(int((lo - self.low_pc) / width) - 1, 0)
        last = min(int((hi - self.low_pc) / width) + 1, nb - 1)
        acc = 0.0
        for idx in range(first, last + 1):
            ticks = self.counts[idx]
            if not ticks:
                continue
            b_lo = self.low_pc + idx * width
            overlap = min(b_lo + width, hi) - max(b_lo, lo)
            if overlap > 0:
                acc += ticks * (overlap / width)
        return acc

    # -- self-time apportionment ------------------------------------------------

    def time_for_symbols(self, symbols: SymbolTable, spans=None) -> dict[str, float]:
        """Charge each bucket's ticks to the routines overlapping it.

        Returns a map from routine name to *self time in seconds*.  Ticks
        in buckets overlapping no known routine are dropped (they landed
        in unprofiled code); callers can compare ``sum(result.values())``
        with :attr:`total_time` to see how much was attributable.

        The bucket/symbol overlap geometry depends only on the layout,
        so it is precomputed as a
        :class:`~repro.core.kernels.spans.SymbolSpans` (memoized per
        symbol table; pass ``spans`` to supply one from elsewhere, e.g.
        the pipeline's analysis cache) and evaluated by the selected
        kernel backend.  Every backend returns bit-identical times —
        see :mod:`repro.core.kernels.spans` for the argument.
        """
        from repro.core import kernels

        if not self.counts:
            return {}
        if spans is None:
            spans = kernels.spans_for(
                symbols, self.low_pc, self.high_pc, len(self.counts)
            )
        return kernels.get_backend().apportion(
            spans, self.counts, self.seconds_per_tick
        )

    def assign_samples(self, symbols: SymbolTable) -> dict[str, float]:
        """Historical name for :meth:`time_for_symbols`."""
        return self.time_for_symbols(symbols)


def sum_histograms(histograms: Sequence[Histogram]) -> Histogram:
    """Sum several compatible histograms bucket-by-bucket.

    Used when combining the data of several profiled runs (§3: "the
    profile data for several executions of a program can be combined").

    The per-bucket sums accumulate into a single mutable kernel buffer
    (one allocation total, not one list per input) and the result
    Histogram is constructed once at the end.
    """
    if not histograms:
        raise HistogramError("cannot sum zero histograms")
    first = histograms[0]
    for h in histograms[1:]:
        if not first.compatible_with(h):
            raise HistogramError(
                "histograms are incompatible: "
                f"[{first.low_pc:#x},{first.high_pc:#x})x{first.num_buckets}"
                f"@{first.profrate}Hz vs "
                f"[{h.low_pc:#x},{h.high_pc:#x})x{h.num_buckets}@{h.profrate}Hz"
            )
    from repro.core import kernels

    acc = kernels.get_backend().bucket_acc()
    for h in histograms:
        acc.fold_seq(h.counts)
    return Histogram(first.low_pc, first.high_pc, acc.to_list(), first.profrate)
