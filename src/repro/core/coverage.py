"""Coverage reporting from execution counts (§2).

"Another view of such counters is as boolean values.  One may be
interested that a portion of code has executed at all, for exhaustive
testing, or to check that one implementation of an abstraction
completely replaces a previous one."

Given the dynamic profile and the statically-apparent call graph, this
module answers those questions at two granularities:

* **routine coverage** — which routines ever ran (the flat profile's
  never-called list, §5.1, as a queryable object);
* **arc coverage** — which statically-possible calls were never
  traversed; the complement of what the test case exercised, which §6
  notes matters because "the test case you run probably will not
  exercise the entire program".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import Profile


@dataclass(frozen=True)
class CoverageReport:
    """Routine and arc coverage of one (or several summed) executions.

    Attributes:
        called: routines entered at least once.
        never_called: routines in the symbol table that never ran.
        traversed_arcs: (caller, callee) pairs with dynamic count > 0.
        untraversed_arcs: statically-apparent pairs with zero dynamic
            count (present in the graph only via augmentation).
    """

    called: frozenset[str]
    never_called: frozenset[str]
    traversed_arcs: frozenset[tuple[str, str]]
    untraversed_arcs: frozenset[tuple[str, str]]

    @property
    def routine_coverage(self) -> float:
        """Fraction of known routines that executed."""
        total = len(self.called) + len(self.never_called)
        return len(self.called) / total if total else 1.0

    @property
    def arc_coverage(self) -> float:
        """Fraction of known (static ∪ dynamic) arcs traversed."""
        total = len(self.traversed_arcs) + len(self.untraversed_arcs)
        return len(self.traversed_arcs) / total if total else 1.0

    def replaced_completely(self, old: str, new: str) -> bool:
        """§2's replacement check: ``new`` ran, ``old`` never did."""
        return new in self.called and old in self.never_called


def coverage(profile: Profile) -> CoverageReport:
    """Compute coverage from an analyzed profile.

    Run the analysis with ``AnalysisOptions(static_arcs=...)`` so the
    statically-possible arcs are in the graph; otherwise arc coverage
    degenerates to 100% (only traversed arcs are known).
    """
    called: set[str] = set()
    traversed: set[tuple[str, str]] = set()
    untraversed: set[tuple[str, str]] = set()
    for entry in profile.graph_entries:
        if entry.is_cycle:
            continue
        if entry.ncalls + entry.self_calls > 0 or entry.self_seconds > 0:
            called.add(entry.name)
    for arc in profile.graph.arcs():
        pair = (arc.caller, arc.callee)
        if arc.count > 0:
            traversed.add(pair)
            called.add(arc.callee)
        else:
            untraversed.add(pair)
    return CoverageReport(
        called=frozenset(called),
        never_called=frozenset(profile.never_called)
        | frozenset(
            e.name
            for e in profile.graph_entries
            if not e.is_cycle and e.name not in called
        ),
        traversed_arcs=frozenset(traversed),
        untraversed_arcs=frozenset(untraversed),
    )


def format_coverage(report: CoverageReport) -> str:
    """A compact textual coverage summary."""
    lines = [
        "coverage:",
        f"  routines: {len(report.called)} executed, "
        f"{len(report.never_called)} never called "
        f"({100 * report.routine_coverage:.1f}%)",
        f"  arcs:     {len(report.traversed_arcs)} traversed, "
        f"{len(report.untraversed_arcs)} apparent-but-untraversed "
        f"({100 * report.arc_coverage:.1f}%)",
    ]
    if report.never_called:
        lines.append("  never called:")
        for name in sorted(report.never_called):
            lines.append(f"    {name}")
    if report.untraversed_arcs:
        lines.append("  untraversed arcs:")
        for caller, callee in sorted(report.untraversed_arcs):
            lines.append(f"    {caller} -> {callee}")
    return "\n".join(lines) + "\n"
