"""Comparing profiles across program versions (§6's iterative loop).

"This tool is best used in an iterative approach: profiling the
program, eliminating one bottleneck, then finding some other part of
the program that begins to dominate execution time."

A :class:`ProfileDelta` lines up two analyses — before and after a
change — routine by routine: self and total seconds, call counts, and
rank in the listing.  The formatter highlights what the §6 loop needs
to see at each turn: did the bottleneck shrink, what dominates now,
and did anything regress.

Comparisons are by routine *name*; routines only present on one side
are reported as added/removed (inlining a routine, §6's first
optimization, makes it disappear — at a documented cost to the next
profile's usefulness).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.analysis import Profile


@dataclass(frozen=True)
class RoutineDelta:
    """One routine's change between two profiles.

    Seconds fields are ``after - before``; None on either side of the
    raw values marks a routine absent from that profile.
    """

    name: str
    self_before: float | None
    self_after: float | None
    total_before: float | None
    total_after: float | None
    calls_before: int | None
    calls_after: int | None

    @property
    def self_delta(self) -> float:
        """Change in self seconds (absentees count as zero)."""
        return (self.self_after or 0.0) - (self.self_before or 0.0)

    @property
    def total_delta(self) -> float:
        """Change in self+descendants seconds."""
        return (self.total_after or 0.0) - (self.total_before or 0.0)

    @property
    def added(self) -> bool:
        """Present only in the 'after' profile."""
        return self.self_before is None

    @property
    def removed(self) -> bool:
        """Present only in the 'before' profile (e.g. inlined away)."""
        return self.self_after is None


@dataclass
class ProfileDelta:
    """The full before/after comparison.

    Attributes:
        total_before, total_after: program totals in seconds.
        routines: per-routine deltas, sorted by |total change| desc.
    """

    total_before: float
    total_after: float
    routines: list[RoutineDelta]

    @property
    def speedup(self) -> float:
        """before/after total-time ratio (>1 means the change helped)."""
        if self.total_after <= 0:
            return float("inf") if self.total_before > 0 else 1.0
        return self.total_before / self.total_after

    def routine(self, name: str) -> RoutineDelta | None:
        """The delta for one routine, if it appears in either profile.

        O(1): a name index is built on first use and rebuilt if the
        routine list changes size.
        """
        index = self.__dict__.get("_routine_index")
        if index is None or len(index) != len(self.routines):
            index = {r.name: r for r in self.routines}
            self.__dict__["_routine_index"] = index
        return index.get(name)

    def dominating_after(self, top: int = 3) -> list[str]:
        """What the §6 loop attacks next: the biggest remaining totals."""
        present = [r for r in self.routines if r.total_after is not None]
        present.sort(key=lambda r: -(r.total_after or 0.0))
        return [r.name for r in present[:top]]


def compare_profiles(before: Profile, after: Profile) -> ProfileDelta:
    """Line up two analyses routine by routine."""

    def rows(profile: Profile):
        out = {}
        for entry in profile.graph_entries:
            if entry.is_cycle:
                continue
            out[entry.name] = (
                entry.self_seconds,
                entry.total_seconds,
                entry.ncalls + entry.self_calls,
            )
        return out

    b, a = rows(before), rows(after)
    deltas = []
    for name in sorted(set(b) | set(a)):
        sb, tb, cb = b.get(name, (None, None, None))
        sa, ta, ca = a.get(name, (None, None, None))
        deltas.append(RoutineDelta(name, sb, sa, tb, ta, cb, ca))
    deltas.sort(key=lambda d: (-abs(d.total_delta), d.name))
    return ProfileDelta(before.total_seconds, after.total_seconds, deltas)


def format_delta(delta: ProfileDelta, top: int = 15) -> str:
    """A before/after table, biggest movements first."""
    lines = [
        "profile comparison:",
        f"  total: {delta.total_before:.2f}s -> {delta.total_after:.2f}s "
        f"(speedup {delta.speedup:.2f}x)",
        "",
        f"{'routine':<24} {'self':>15} {'self+desc':>17} {'calls':>15}",
    ]

    def col(before, after, fmt):
        left = fmt.format(before) if before is not None else "-"
        right = fmt.format(after) if after is not None else "-"
        return f"{left}->{right}"

    for r in delta.routines[:top]:
        note = " (new)" if r.added else (" (gone)" if r.removed else "")
        lines.append(
            f"{r.name:<24} {col(r.self_before, r.self_after, '{:.2f}'):>15} "
            f"{col(r.total_before, r.total_after, '{:.2f}'):>17} "
            f"{col(r.calls_before, r.calls_after, '{}'):>15}{note}"
        )
    lines.append("")
    lines.append(
        "dominating now: " + ", ".join(delta.dominating_after())
    )
    return "\n".join(lines) + "\n"
