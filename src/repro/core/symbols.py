"""Symbols and symbol tables: mapping program counters to routines.

gprof never sees routine *names* at data-gathering time — the monitoring
routine and the clock-tick sampler record raw addresses.  Names enter the
picture only during post-processing, when addresses are looked up in the
symbol table of the executable image.  This module provides that mapping.

A :class:`Symbol` covers the half-open address range ``[address, end)``.
A :class:`SymbolTable` holds non-overlapping symbols sorted by address and
answers "which routine owns this PC?" queries in O(log n) via bisection.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SymbolError

#: Name used for the synthetic parent of routines whose caller could not be
#: identified (non-standard calling sequences, program entry, interrupts).
#: The paper calls such invocations "spontaneous".
SPONTANEOUS = "<spontaneous>"


@dataclass(frozen=True, order=True)
class Symbol:
    """A routine in the profiled program.

    Attributes:
        address: entry address of the routine (inclusive lower bound).
        name: the routine's name, as found in the executable's symbol table.
        end: one past the last address belonging to the routine.  A PC
            sample at any address in ``[address, end)`` is charged to this
            routine.
        module: optional name of the object file / source module the
            routine came from; used by presentation-side filters.
    """

    address: int
    name: str = field(compare=False)
    end: int = field(default=0, compare=False)
    module: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.end and self.end < self.address:
            raise SymbolError(
                f"symbol {self.name!r} ends (0x{self.end:x}) before it "
                f"starts (0x{self.address:x})"
            )

    @property
    def size(self) -> int:
        """Number of address units covered by the routine."""
        return max(self.end - self.address, 0)

    def covers(self, pc: int) -> bool:
        """Whether ``pc`` falls inside this routine's address range."""
        return self.address <= pc < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}@0x{self.address:x}"


class SymbolTable:
    """Sorted, non-overlapping collection of :class:`Symbol` entries.

    The table is the post-processor's view of the executable image: it
    translates the raw addresses recorded at run time (call sites, callee
    entry points, PC samples) into routines.
    """

    def __init__(self, symbols: Iterable[Symbol] = ()):
        self._symbols: list[Symbol] = sorted(symbols, key=lambda s: s.address)
        self._addresses: list[int] = [s.address for s in self._symbols]
        self._by_name: dict[str, Symbol] = {}
        self._close_ranges()
        for sym in self._symbols:
            if sym.name in self._by_name:
                raise SymbolError(f"duplicate symbol name {sym.name!r}")
            self._by_name[sym.name] = sym

    def _close_ranges(self) -> None:
        """Give each symbol with an unknown end the start of its successor.

        Real symbol tables frequently record only entry addresses; like
        gprof we assume a routine extends to the next routine's entry.
        """
        closed: list[Symbol] = []
        for i, sym in enumerate(self._symbols):
            nxt = (
                self._symbols[i + 1].address
                if i + 1 < len(self._symbols)
                else sym.end or sym.address + 1
            )
            if not sym.end:
                sym = Symbol(sym.address, sym.name, nxt, sym.module)
            elif closed and sym.address < closed[-1].end:
                raise SymbolError(
                    f"symbol {sym.name!r} overlaps {closed[-1].name!r}"
                )
            closed.append(sym)
        self._symbols = closed

    # -- collection protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._symbols)

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymbolTable):
            return NotImplemented
        return self._symbols == other._symbols and [
            s.name for s in self._symbols
        ] == [s.name for s in other._symbols]

    # -- lookups -------------------------------------------------------------

    def find(self, pc: int) -> Symbol | None:
        """Return the symbol whose address range covers ``pc``.

        Returns None when the PC falls outside every known routine (e.g. a
        sample taken in unprofiled library code).
        """
        i = bisect.bisect_right(self._addresses, pc) - 1
        if i < 0:
            return None
        sym = self._symbols[i]
        return sym if sym.covers(pc) else None

    def by_name(self, name: str) -> Symbol:
        """Return the symbol called ``name``; raise SymbolError if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolError(f"no symbol named {name!r}") from None

    def get(self, name: str) -> Symbol | None:
        """Return the symbol called ``name``, or None."""
        return self._by_name.get(name)

    @property
    def low_pc(self) -> int:
        """Lowest address covered by any symbol (0 for an empty table)."""
        return self._symbols[0].address if self._symbols else 0

    @property
    def high_pc(self) -> int:
        """One past the highest address covered by any symbol."""
        return self._symbols[-1].end if self._symbols else 0

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable representation of the table."""
        return {
            "symbols": [
                {
                    "address": s.address,
                    "name": s.name,
                    "end": s.end,
                    "module": s.module,
                }
                for s in self._symbols
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SymbolTable":
        """Inverse of :meth:`to_dict`."""
        try:
            entries = data["symbols"]
            return cls(
                Symbol(e["address"], e["name"], e.get("end", 0), e.get("module", ""))
                for e in entries
            )
        except (KeyError, TypeError) as exc:
            raise SymbolError(f"malformed symbol table data: {exc}") from exc

    def save(self, path) -> None:
        """Write the table as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=1)

    @classmethod
    def load(cls, path) -> "SymbolTable":
        """Read a table previously written by :meth:`save`."""
        with open(path, encoding="utf-8") as f:
            return cls.from_dict(json.load(f))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolTable({len(self._symbols)} symbols)"
