"""Analysis-side filtering of profiles.

"After using the profiles for a while we discovered the need to filter
the data, i.e., to show only hot functions, or only parts of the graph
containing certain methods" (retrospective).  These helpers select the
set of routines an analysis or report should keep; the call graph
machinery itself is untouched — filtering is a view, applied after
propagation, so percentages remain relative to the whole program.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.callgraph import CallGraph


def hot_routines(
    percent_of: Callable[[str], float],
    routines: Iterable[str],
    threshold: float,
) -> set[str]:
    """Routines whose share of total time is at least ``threshold`` percent.

    ``percent_of`` maps a routine name to its percentage of total program
    time (self + descendants); the analysis layer provides it.
    """
    return {r for r in routines if percent_of(r) >= threshold}


def reachable_from(graph: CallGraph, sources: Iterable[str]) -> set[str]:
    """Routines reachable from any of ``sources`` (inclusive).

    The ``-f`` style focus filter: a routine and everything it (transitively)
    calls.  Unknown source names are ignored.
    """
    seen: set[str] = set()
    stack = [s for s in sources if s in graph]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(c for c in graph.children(node) if c not in seen)
    return seen


def reaching(graph: CallGraph, sinks: Iterable[str]) -> set[str]:
    """Routines from which any of ``sinks`` is reachable (inclusive).

    The dual filter: everything that (transitively) calls a routine —
    used, e.g., to show only the part of the graph above ``WRITE`` in the
    §6 navigation example.
    """
    seen: set[str] = set()
    stack = [s for s in sinks if s in graph]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(p for p in graph.parents(node) if p not in seen)
    return seen


def containing(graph: CallGraph, names: Iterable[str]) -> set[str]:
    """The part of the graph "containing certain methods": every routine
    on some path through any of ``names`` — ancestors and descendants."""
    names = list(names)
    return reachable_from(graph, names) | reaching(graph, names)


def exclude(routines: Iterable[str], excluded: Iterable[str]) -> set[str]:
    """All of ``routines`` except ``excluded`` (the ``-E`` style flag)."""
    banned = set(excluded)
    return {r for r in routines if r not in banned}
