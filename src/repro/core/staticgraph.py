"""Static call graph augmentation.

§4 of the paper: gprof can "examine the instructions in the object
program, looking for calls to routines" and add the statically-apparent
arcs to the dynamic call graph with a traversal count of zero.  They are
"never responsible for any time propagation" but "may affect the
structure of the graph": in particular they can complete
strongly-connected components, making cycle membership stable across
executions — which is why augmentation happens *before* topological
ordering.

The actual instruction scanning lives with each executable format
(:mod:`repro.machine.crawl` for VM images,
:mod:`repro.pyprof.staticarcs` for Python bytecode); this module defines
the format-independent protocol and the merge step.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.core.arcs import ArcSet
from repro.core.callgraph import CallGraph


class StaticArcSource(Protocol):
    """Anything that can enumerate statically-apparent calls.

    Implementations yield ``(caller, callee)`` routine-name pairs for
    every call instruction found in the program text.
    """

    def static_arcs(self) -> Iterable[tuple[str, str]]:
        """Yield (caller name, callee name) for each apparent call."""
        ...  # pragma: no cover - protocol


def augment_with_static_arcs(
    graph: CallGraph,
    static_pairs: Iterable[tuple[str, str]],
) -> int:
    """Add zero-count arcs for statically-discovered calls.

    Pairs already present in the dynamic graph are left untouched
    ("If a statically discovered arc already exists in the dynamic call
    graph, no action is required").  Returns the number of arcs added.
    """
    added = 0
    from repro.core.arcs import Arc

    for caller, callee in static_pairs:
        if graph.arc(caller, callee) is None:
            graph.add_arc(Arc(caller, callee, 0, 1, static=True))
            added += 1
    return added


def augment_arcset(arcs: ArcSet, static_pairs: Iterable[tuple[str, str]]) -> int:
    """Same as :func:`augment_with_static_arcs` for a raw :class:`ArcSet`."""
    return sum(arcs.add_static(caller, callee) for caller, callee in static_pairs)
