"""Call graph arcs, raw and symbolized.

During execution the monitoring routine records *raw* arcs: a call-site
address, a callee entry address, and a traversal count (§3.1 of the paper).
Post-processing symbolizes them — the call site resolves to the *caller*
routine, the callee entry to the *callee* routine — and aggregates counts
of arcs that connect the same pair of routines from different call sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.symbols import SPONTANEOUS, SymbolTable


@dataclass(frozen=True)
class RawArc:
    """An arc exactly as gathered at run time.

    Attributes:
        from_pc: the address of the call site (in the caller).  Zero means
            the caller could not be identified (a "spontaneous" invocation).
        self_pc: the entry address of the callee.
        count: number of times this exact (call site, callee) pair was
            traversed.  A count of zero marks a statically-discovered arc
            (§4: added to complete the graph but never propagating time).
    """

    from_pc: int
    self_pc: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"negative arc count {self.count}")


@dataclass(frozen=True)
class Arc:
    """A symbolized call graph arc between two routines.

    Counts from multiple call sites in the same caller are summed; the
    ``sites`` field remembers how many distinct call sites contributed.
    """

    caller: str
    callee: str
    count: int
    sites: int = 1
    static: bool = False

    @property
    def spontaneous(self) -> bool:
        """True when the caller could not be identified at run time."""
        return self.caller == SPONTANEOUS


def symbolize_arcs(
    raw_arcs: Iterable[RawArc],
    symbols: SymbolTable,
    keep_unknown: bool = False,
) -> list[Arc]:
    """Translate raw (address-level) arcs into routine-level arcs.

    Arguments:
        raw_arcs: arcs as recorded by the monitoring routine.
        symbols: the executable's symbol table.
        keep_unknown: when True, arcs whose *callee* address matches no
            symbol are kept under a synthetic ``<unknown>`` name; when
            False (the default, matching gprof) they are dropped.

    A ``from_pc`` that resolves to no symbol (or is zero) marks the arc as
    spontaneous: the callee was observably entered, but the call site was
    not in any profiled routine.  Such arcs keep their counts — the callee
    really was called — but propagate no time to any caller.

    Returns the aggregated routine-level arcs.  Dynamic counts and static
    markers are merged per (caller, callee): a pair seen both statically
    and dynamically is dynamic (static arcs only *add* missing pairs).
    """
    merged: dict[tuple[str, str], list] = {}
    for raw in raw_arcs:
        callee_sym = symbols.find(raw.self_pc)
        if callee_sym is None:
            if not keep_unknown:
                continue
            callee = f"<unknown:0x{raw.self_pc:x}>"
        else:
            callee = callee_sym.name
        caller_sym = symbols.find(raw.from_pc) if raw.from_pc else None
        caller = caller_sym.name if caller_sym is not None else SPONTANEOUS
        key = (caller, callee)
        static = raw.count == 0
        if key in merged:
            entry = merged[key]
            entry[0] += raw.count
            entry[1] += 1
            entry[2] = entry[2] and static
        else:
            merged[key] = [raw.count, 1, static]
    return [
        Arc(caller, callee, count, sites, static)
        for (caller, callee), (count, sites, static) in merged.items()
    ]


class ArcSet:
    """A mutable collection of routine-level arcs with set-like merging.

    Used by analysis passes that need to add static arcs, delete arcs
    named by the user (the retrospective's cycle-breaking option), or sum
    several runs.
    """

    def __init__(self, arcs: Iterable[Arc] = ()):
        self._arcs: dict[tuple[str, str], Arc] = {}
        for arc in arcs:
            self.add(arc)

    def add(self, arc: Arc) -> None:
        """Insert ``arc``, summing counts with any existing same-pair arc."""
        key = (arc.caller, arc.callee)
        old = self._arcs.get(key)
        if old is None:
            self._arcs[key] = arc
        else:
            self._arcs[key] = Arc(
                arc.caller,
                arc.callee,
                old.count + arc.count,
                old.sites + arc.sites,
                old.static and arc.static,
            )
    def add_static(self, caller: str, callee: str) -> bool:
        """Add a statically-discovered arc if the pair is not present.

        Mirrors §4: "If a statically discovered arc already exists in the
        dynamic call graph, no action is required."  Returns True when a
        new zero-count arc was added.
        """
        key = (caller, callee)
        if key in self._arcs:
            return False
        self._arcs[key] = Arc(caller, callee, 0, 1, static=True)
        return True

    def remove(self, caller: str, callee: str) -> bool:
        """Delete the arc ``caller → callee``; True if it existed."""
        return self._arcs.pop((caller, callee), None) is not None

    def get(self, caller: str, callee: str) -> Arc | None:
        """Return the arc ``caller → callee`` if present."""
        return self._arcs.get((caller, callee))

    def __len__(self) -> int:
        return len(self._arcs)

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs.values())

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self._arcs

    def routines(self) -> set[str]:
        """All routine names appearing as caller or callee (not spontaneous)."""
        names: set[str] = set()
        for arc in self._arcs.values():
            if not arc.spontaneous:
                names.add(arc.caller)
            names.add(arc.callee)
        return names

    def incoming_count(self, callee: str) -> int:
        """Total dynamic calls into ``callee`` (sum over incoming arcs)."""
        return sum(a.count for a in self._arcs.values() if a.callee == callee)
