"""The gprof analysis pipeline: profile data in, displayable profile out.

:func:`analyze` runs the post-processing passes in the order the paper
prescribes (§4).  The passes themselves are staged in
:mod:`repro.pipeline` (named ``Stage`` objects with per-stage tracing
and content-addressed caching); this module keeps the stable entry
point plus the presentation-side data model and assembly:

1. symbolize the raw arc table against the executable's symbol table;
2. apply user exclusions and arc deletions;
3. augment the dynamic call graph with statically-discovered arcs
   (before topological ordering, so cycle membership is stable);
4. optionally break giant cycles with the bounded heuristic;
5. discover strongly-connected components and assign topological numbers;
6. apportion histogram samples into per-routine self time;
7. solve the time-propagation recurrence;
8. assemble the presentation-ready :class:`Profile`: indexed call-graph
   entries (with parent/child/cycle-member lines), flat-profile rows,
   and the list of routines never called.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.arcremoval import RemovedArc
from repro.core.callgraph import CallGraph
from repro.core.cycles import NumberedGraph
from repro.core.profiledata import ProfileData
from repro.core.propagate import Propagation
from repro.core.symbols import SymbolTable


@dataclass
class AnalysisOptions:
    """Knobs of the analysis pipeline.

    Attributes:
        static_arcs: ``(caller, callee)`` pairs discovered by crawling
            the executable image; added with zero counts (§4).
        deleted_arcs: ``(caller, callee)`` pairs the user wants removed
            from the analysis (the retrospective's cycle-breaking option).
        auto_break_cycles: run the bounded heuristic that removes
            low-count arcs closing large cycles.
        max_removed_arcs: the heuristic's bound (the problem is
            NP-complete; see :mod:`repro.core.arcremoval`).
        excluded: routine names erased from the analysis entirely —
            their self time and their arcs are dropped before graph
            construction, so totals shrink accordingly.
        keep_unknown: keep arcs whose callee matches no symbol, under
            synthetic ``<unknown:0x…>`` names, instead of dropping them.
    """

    static_arcs: Sequence[tuple[str, str]] = ()
    deleted_arcs: Sequence[tuple[str, str]] = ()
    auto_break_cycles: bool = False
    max_removed_arcs: int = 10
    excluded: Sequence[str] = ()
    keep_unknown: bool = False


@dataclass(frozen=True)
class RelativeLine:
    """One parent or child line of a call-graph profile entry.

    For a parent line: time this routine propagated *to* that parent,
    and ``count``/``total`` = calls from that parent / all external
    calls to this routine.  For a child line: time that child propagated
    to this routine, and ``count``/``total`` = calls from this routine
    to the child / all external calls to the child (or to the child's
    whole cycle).  A None ``name`` denotes a spontaneous parent.
    """

    name: str | None
    self_share: float
    child_share: float
    count: int
    total: int
    cycle: int | None = None
    intra_cycle: bool = False

    @property
    def display_name(self) -> str:
        """Name with cycle annotation, e.g. ``SUB1 <cycle 1>``."""
        if self.name is None:
            return "<spontaneous>"
        if self.cycle is not None:
            return f"{self.name} <cycle {self.cycle}>"
        return self.name


@dataclass
class GraphEntry:
    """One major entry of the call-graph profile (a routine or a cycle).

    Mirrors Figure 4: index, %time, self seconds, descendant seconds,
    call counts (external + internal), parent lines above, child lines
    below, and — for whole-cycle entries — the member list.
    """

    index: int
    name: str
    percent: float
    self_seconds: float
    child_seconds: float
    ncalls: int
    self_calls: int
    parents: list[RelativeLine] = field(default_factory=list)
    children: list[RelativeLine] = field(default_factory=list)
    members: list[RelativeLine] = field(default_factory=list)
    cycle: int | None = None
    is_cycle: bool = False

    @property
    def total_seconds(self) -> float:
        """Self plus inherited descendants' seconds."""
        return self.self_seconds + self.child_seconds

    @property
    def display_name(self) -> str:
        """Name with cycle annotation for member entries."""
        if self.is_cycle:
            return f"<cycle {self.cycle} as a whole>"
        if self.cycle is not None:
            return f"{self.name} <cycle {self.cycle}>"
        return self.name


@dataclass(frozen=True)
class FlatEntry:
    """One row of the flat profile (§5.1).

    ``calls`` counts every dynamic activation, including self-recursive
    ones; it is None for routines that appear only in the histogram
    (sampled, but compiled without the monitoring prologue).
    """

    name: str
    percent: float
    self_seconds: float
    calls: int | None
    self_ms_per_call: float | None
    total_ms_per_call: float | None


@dataclass
class Profile:
    """The complete analysis result, ready for presentation.

    Attributes:
        total_seconds: sampled execution time attributed to profiled
            routines — the denominator of every percentage.
        graph_entries: call-graph profile entries, sorted by
            self+descendants time (descending); index fields are 1-based
            positions in this order.
        flat_entries: flat profile rows sorted by self time (descending),
            then by calls, as §5.1 prescribes.
        never_called: routines present in the symbol table but neither
            called nor sampled ("to verify that nothing important is
            omitted by this execution").
        removed_arcs: arcs deleted by user request or by the heuristic.
        propagation: the underlying solved recurrence (for programmatic
            consumers).
        graph: the analyzed call graph (post deletions/augmentation).
        numbered: cycle and topological-numbering information.
        warnings: degradation notices — inherited from the profile data
            (salvaged input, clamped fields) plus anything the pipeline
            had to skip.  Renderers surface these so a partial profile
            is never presented as pristine.
    """

    total_seconds: float
    graph_entries: list[GraphEntry]
    flat_entries: list[FlatEntry]
    never_called: list[str]
    removed_arcs: list[RemovedArc]
    propagation: Propagation
    graph: CallGraph
    numbered: NumberedGraph
    _index_by_name: dict[str, int] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when this profile was computed from degraded input."""
        return bool(self.warnings)

    def index_of(self, name: str) -> int | None:
        """The [n] cross-reference index of a routine or cycle name."""
        return self._index_by_name.get(name)

    def entry(self, name: str) -> GraphEntry | None:
        """The graph entry for a routine or ``<cycle N>`` name."""
        idx = self._index_by_name.get(name)
        return self.graph_entries[idx - 1] if idx else None

    def percent_of(self, name: str) -> float:
        """%time (self + descendants) of a routine or cycle."""
        e = self.entry(name)
        return e.percent if e else 0.0


def analyze(
    data: ProfileData,
    symbols: SymbolTable,
    options: AnalysisOptions | None = None,
    *,
    trace=None,
    cache=None,
) -> Profile:
    """Run the full gprof post-processing pipeline.

    Arguments:
        data: the condensed output of one or more profiled runs.
        symbols: the executable's symbol table.
        options: pipeline knobs; defaults to a plain analysis.
        trace: optional :class:`repro.pipeline.PipelineTrace`; each
            stage appends its wall time and work counters to it.
        cache: optional :class:`repro.pipeline.AnalysisCache`; repeated
            analyses of unchanged inputs skip recomputed stages.  Cached
            values (including the returned Profile on a full hit) are
            shared and must be treated as immutable.

    Returns the presentation-ready :class:`Profile`.  The pipeline
    itself lives in :mod:`repro.pipeline` — this is the stable core
    entry point the frontends and tests call.
    """
    from repro.pipeline.runner import run_analysis

    return run_analysis(
        data, symbols, options or AnalysisOptions(), trace=trace, cache=cache
    )


def assemble_profile(
    data: ProfileData,
    symbols: SymbolTable,
    graph: CallGraph,
    numbered: NumberedGraph,
    prop: Propagation,
    removed: list[RemovedArc],
    warnings: list[str] | None = None,
) -> Profile:
    """Build Profile entries from a solved propagation."""
    total = prop.total_program_time
    cycle_of = {m: c for c in numbered.cycles for m in c.members}
    cycle_num = {m: c.number for c in numbered.cycles for m in c.members}
    member_sets = {c.number: set(c.members) for c in numbered.cycles}

    def pct(seconds: float) -> float:
        return 100.0 * seconds / total if total > 0 else 0.0

    entries: list[GraphEntry] = []

    # Whole-cycle entries.
    for cyc in numbered.cycles:
        rep = cyc.name
        members = [
            RelativeLine(
                m,
                prop.routine_self[m],
                prop.routine_child[m],
                graph.total_calls(m),
                prop.ncalls[rep],
                cycle=cyc.number,
            )
            for m in cyc.members
        ]
        entries.append(
            GraphEntry(
                index=0,
                name=rep,
                percent=pct(prop.total_time[rep]),
                self_seconds=prop.self_time[rep],
                child_seconds=prop.child_time[rep],
                ncalls=prop.ncalls[rep],
                self_calls=prop.self_calls[rep],
                parents=_parent_lines(
                    graph, numbered, prop, cyc.members, rep, cycle_num,
                    include_intra=False,
                ),
                children=_child_lines(
                    graph, numbered, prop, cyc.members, rep, cycle_num,
                    include_intra=False,
                ),
                members=members,
                cycle=cyc.number,
                is_cycle=True,
            )
        )

    # Per-routine entries (cycle members included, marked with their cycle).
    for routine in graph.nodes():
        rep = numbered.representative[routine]
        cyc = cycle_of.get(routine)
        in_cycle = cyc is not None
        self_s = prop.routine_self[routine]
        child_s = prop.routine_child[routine]
        if in_cycle:
            ncalls = _external_calls(graph, routine, member_sets[cyc.number])
            self_calls = graph.total_calls(routine) - ncalls
        else:
            ncalls = prop.ncalls[rep]
            self_calls = prop.self_calls[rep]
        entries.append(
            GraphEntry(
                index=0,
                name=routine,
                percent=pct(prop.total_time[rep]) if not in_cycle else pct(self_s + child_s),
                self_seconds=self_s,
                child_seconds=child_s,
                ncalls=ncalls,
                self_calls=self_calls,
                parents=_parent_lines(
                    graph, numbered, prop, (routine,), rep, cycle_num
                ),
                children=_child_lines(
                    graph, numbered, prop, (routine,), rep, cycle_num
                ),
                cycle=cyc.number if cyc else None,
            )
        )

    # Sort by total time (cycle entries use the whole cycle's total),
    # breaking ties by name for reproducible listings.
    entries.sort(key=lambda e: (-(e.self_seconds + e.child_seconds), e.name))
    index_by_name: dict[str, int] = {}
    for i, e in enumerate(entries, start=1):
        e.index = i
        index_by_name[e.name] = i

    # Flat profile (§5.1): self time descending, then call count.
    flat: list[FlatEntry] = []
    for routine in graph.nodes():
        self_s = prop.routine_self[routine]
        calls = graph.total_calls(routine)
        had_counts = calls > 0 or any(True for _ in graph.parents(routine))
        rep = numbered.representative[routine]
        total_s = (
            prop.routine_self[routine] + prop.routine_child[routine]
        )
        flat.append(
            FlatEntry(
                name=routine,
                percent=pct(self_s),
                self_seconds=self_s,
                calls=calls if had_counts else None,
                self_ms_per_call=1000.0 * self_s / calls if calls else None,
                total_ms_per_call=1000.0 * total_s / calls if calls else None,
            )
        )
    flat.sort(key=lambda f: (-f.self_seconds, -(f.calls or 0), f.name))

    # Routines never called nor sampled.
    never = sorted(
        sym.name
        for sym in symbols
        if sym.name not in index_by_name
    )

    return Profile(
        total_seconds=total,
        graph_entries=entries,
        flat_entries=flat,
        never_called=never,
        removed_arcs=removed,
        propagation=prop,
        graph=graph,
        numbered=numbered,
        _index_by_name=index_by_name,
        warnings=list(warnings or []),
    )


def _external_calls(graph: CallGraph, routine: str, member_set: set[str]) -> int:
    """Calls into ``routine`` from outside ``member_set`` (plus spontaneous)."""
    calls = graph.spontaneous_calls(routine)
    for caller, arc in graph.parents(routine).items():
        if caller not in member_set:
            calls += arc.count
    return calls


def _parent_lines(
    graph: CallGraph,
    numbered: NumberedGraph,
    prop: Propagation,
    members: Iterable[str],
    rep: str,
    cycle_of: Mapping[str, int],
    include_intra: bool = True,
) -> list[RelativeLine]:
    """Parent lines for an entry covering ``members`` (a routine, or a cycle).

    External parents carry propagated shares; intra-cycle parents are
    listed with counts but no time ("Calls among the members of the
    cycle do not propagate any time, though they are listed") — except
    on whole-cycle entries (``include_intra=False``), where members are
    presented separately.  Self-arcs are omitted — they appear in the
    ``+n`` call notation.
    """
    member_set = set(members)
    total_calls = prop.ncalls[rep]
    lines: list[RelativeLine] = []
    spontaneous = sum(graph.spontaneous_calls(m) for m in member_set)
    if spontaneous or (total_calls == 0 and not any(
        c not in member_set for m in member_set for c in graph.parents(m)
    )):
        lines.append(
            RelativeLine(None, 0.0, 0.0, spontaneous, total_calls)
        )
    rep_of = numbered.representative
    for m in sorted(member_set):
        for caller, arc in graph.parents(m).items():
            if caller == m:
                continue  # self-recursion: shown as "+n", not a line
            intra = rep_of[caller] == rep_of[m]
            if intra and not include_intra:
                continue
            share = prop.arc_shares.get((caller, m))
            lines.append(
                RelativeLine(
                    caller,
                    share.self_share if share else 0.0,
                    share.child_share if share else 0.0,
                    arc.count,
                    total_calls,
                    cycle=cycle_of.get(caller),
                    intra_cycle=intra,
                )
            )
    # Paper: parents sorted by the amount of time propagated to them.
    lines.sort(key=lambda l: (-(l.self_share + l.child_share), -l.count))
    return lines


def _child_lines(
    graph: CallGraph,
    numbered: NumberedGraph,
    prop: Propagation,
    members: Iterable[str],
    rep: str,
    cycle_of: Mapping[str, int],
    include_intra: bool = True,
) -> list[RelativeLine]:
    """Child lines: each child of ``members`` with the time it passed up.

    For a child inside a cycle, the displayed time and the call-count
    denominator are "those for the cycle as a whole" (§5.2).  On
    whole-cycle entries intra-cycle arcs are skipped (members are shown
    in the dedicated member list instead).
    """
    member_set = set(members)
    lines: list[RelativeLine] = []
    rep_of = numbered.representative
    for m in sorted(member_set):
        for callee, arc in graph.children(m).items():
            if callee == m:
                continue  # self-recursion handled by the "+n" notation
            intra = rep_of[callee] == rep_of[m]
            if intra and not include_intra:
                continue
            share = prop.arc_shares.get((m, callee))
            child_rep = numbered.representative[callee]
            lines.append(
                RelativeLine(
                    callee,
                    share.self_share if share else 0.0,
                    share.child_share if share else 0.0,
                    arc.count,
                    prop.ncalls[child_rep],
                    cycle=cycle_of.get(callee),
                    intra_cycle=intra,
                )
            )
    lines.sort(key=lambda l: (-(l.self_share + l.child_share), -l.count))
    return lines
