"""Cycle discovery and topological numbering.

§4 of the paper: time is propagated from descendants to ancestors in
topological order, but recursive programs put cycles in the call graph
and "cycles cannot be topologically sorted".  gprof therefore runs "a
variation of Tarjan's strongly-connected components algorithm that
discovers strongly-connected components as it is assigning topological
order numbers".

This module implements exactly that: a single iterative DFS that both
identifies strongly-connected components (Tarjan 1972) and numbers them.
Tarjan's algorithm emits components in *reverse* topological order of the
condensation — every component is completed only after all components it
can reach — so numbering components ``1, 2, 3, …`` in emission order
yields the property Figure 1 illustrates: **every arc goes from a
higher-numbered node to a lower-numbered node** (callees are numbered
before their callers), and visiting nodes in increasing number order
walks the graph from the leaves toward the roots.

Trivial components (a single node without a self-arc) are ordinary
routines; non-trivial components (and self-loops are *not* cycles for
this purpose — a self-recursive routine is handled by call-count
bookkeeping, not collapsing) become :class:`Cycle` objects that the
propagation phase treats as single nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.callgraph import CallGraph
from repro.errors import CallGraphError


@dataclass
class Cycle:
    """A non-trivial strongly-connected component of the call graph.

    Attributes:
        number: 1-based cycle index, as displayed (``<cycle 1>``).
        members: the routines in the cycle, in discovery order.
    """

    number: int
    members: tuple[str, ...]

    @property
    def name(self) -> str:
        """The display name gprof gives the collapsed node."""
        return f"<cycle {self.number}>"

    def __contains__(self, routine: str) -> bool:
        return routine in self.members

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class NumberedGraph:
    """The result of cycle discovery over a call graph.

    Attributes:
        graph: the original (uncollapsed) call graph.
        cycles: the non-trivial strongly-connected components found.
        representative: maps every routine to the node that stands for it
            during propagation — itself for acyclic routines, the cycle
            name for cycle members.
        topo_order: representative node names, leaves first.  Visiting in
            this order guarantees every (inter-representative) arc's
            target has been visited before its source.
        topo_number: 1-based number of each representative, matching the
            paper's figures: arcs go from higher to lower numbers.
    """

    graph: CallGraph
    cycles: list[Cycle]
    representative: dict[str, str]
    topo_order: list[str]
    topo_number: dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        self.topo_number = {name: i + 1 for i, name in enumerate(self.topo_order)}
        self._cycle_by_name = {c.name: c for c in self.cycles}

    def cycle_of(self, routine: str) -> Cycle | None:
        """The cycle containing ``routine``, or None."""
        rep = self.representative.get(routine)
        return self._cycle_by_name.get(rep) if rep != routine else None

    def members_of(self, rep: str) -> tuple[str, ...]:
        """Routines represented by ``rep`` (itself, or cycle members)."""
        cycle = self._cycle_by_name.get(rep)
        return cycle.members if cycle else (rep,)

    def is_cycle(self, rep: str) -> bool:
        """Whether ``rep`` names a collapsed cycle."""
        return rep in self._cycle_by_name

    def cycle_named(self, rep: str) -> Cycle:
        """The :class:`Cycle` with display name ``rep``."""
        try:
            return self._cycle_by_name[rep]
        except KeyError:
            raise CallGraphError(f"{rep!r} is not a cycle") from None


def strongly_connected_components(graph: CallGraph) -> list[list[str]]:
    """Tarjan's algorithm, iterative, emitting components leaves-first.

    Components are returned in reverse topological order of the
    condensation: every component appears before any component with an
    arc *into* it.  (Equivalently: callees before callers.)
    """
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    # Iterative DFS to survive the deep recursion of large call graphs.
    for root in graph.nodes():
        if root in index_of:
            continue
        work: list[tuple[str, Iterable[str]]] = [(root, iter(graph.children(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph.children(child))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                component.reverse()
                components.append(component)
    return components


def number_graph(graph: CallGraph) -> NumberedGraph:
    """Discover cycles and assign topological numbers in one pass.

    Non-trivial strongly-connected components are collapsed into
    :class:`Cycle` nodes; a lone node with a self-arc is *not* collapsed
    (self-recursion is handled by excluding self-calls from the call
    count, per §5.2's ``10+4`` notation).

    The returned :class:`NumberedGraph` orders representatives so that
    arcs point from higher numbers to lower numbers; propagating time in
    increasing-number order charges descendants before ancestors after a
    single traversal of each arc (§4).
    """
    components = strongly_connected_components(graph)
    cycles: list[Cycle] = []
    representative: dict[str, str] = {}
    topo_order: list[str] = []
    for component in components:
        if len(component) > 1:
            cycle = Cycle(len(cycles) + 1, tuple(component))
            cycles.append(cycle)
            for member in component:
                representative[member] = cycle.name
            topo_order.append(cycle.name)
        else:
            node = component[0]
            representative[node] = node
            topo_order.append(node)
    return NumberedGraph(graph, cycles, representative, topo_order)


def condensation_arcs(numbered: NumberedGraph) -> dict[tuple[str, str], int]:
    """Arcs of the collapsed graph, with summed dynamic counts.

    Intra-cycle arcs and self-arcs disappear (they do not participate in
    time propagation, §4); arcs between distinct representatives keep
    their counts, summed across member pairs.
    """
    arcs: dict[tuple[str, str], int] = {}
    for arc in numbered.graph.arcs():
        src = numbered.representative[arc.caller]
        dst = numbered.representative[arc.callee]
        if src == dst:
            continue
        key = (src, dst)
        arcs[key] = arcs.get(key, 0) + arc.count
    return arcs


def verify_topological(numbered: NumberedGraph) -> None:
    """Check the Figure 1 invariant: arcs go from higher to lower numbers.

    Raises :class:`CallGraphError` if violated; used by tests and as a
    cheap internal sanity check.
    """
    number = numbered.topo_number
    for (src, dst) in condensation_arcs(numbered):
        if number[src] <= number[dst]:
            raise CallGraphError(
                f"arc {src} ({number[src]}) → {dst} ({number[dst]}) does "
                "not descend in topological number"
            )


def paper_numbering(numbered: NumberedGraph) -> dict[str, int]:
    """The numbering exactly as the paper's figures present it.

    Identical to :attr:`NumberedGraph.topo_number`: leaves are numbered
    first, so "all edges in the graph go from higher numbered nodes to
    lower numbered nodes" and propagating in increasing-number order
    walks from the leaves toward the roots (§4, Figure 1).
    """
    return dict(numbered.topo_number)
