"""ProfileData: everything one profiled execution leaves behind.

§3 of the paper: "Our solution is to gather profiling data in memory
during program execution and to condense it to a file as the profiled
program exits."  The condensed data is (a) the arc table — source
address, destination address, traversal count — and (b) the PC-sample
histogram with its bounds and step size.  This container holds exactly
that, decoupled from both the gathering side (VM monitor, Python
profiler, simulated kernel) and the analysis side.
"""

from __future__ import annotations

import operator

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.errors import MergeError


@dataclass
class ProfileData:
    """The condensed output of one (or several summed) profiled runs.

    Attributes:
        histogram: the PC-sample histogram.
        arcs: raw call graph arcs with traversal counts.
        runs: how many executions were summed into this data (1 for a
            fresh profile; merging adds them up).
        comment: free-form provenance (program name, workload, ...).
        warnings: degradation notices attached by whoever produced the
            data (the salvaging reader, a clamped ``runs`` field, ...).
            Analysis carries them into the rendered reports so partial
            data is never presented as pristine.
    """

    histogram: Histogram
    arcs: list[RawArc] = field(default_factory=list)
    runs: int = 1
    comment: str = ""
    warnings: list[str] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when this data carries degradation warnings."""
        return bool(self.warnings)

    @property
    def total_ticks(self) -> int:
        """Total PC samples across the histogram."""
        return self.histogram.total_ticks

    @property
    def total_calls(self) -> int:
        """Total dynamic arc traversals recorded."""
        return sum(a.count for a in self.arcs)

    def condensed_arcs(self) -> list[RawArc]:
        """Arcs with duplicate (from_pc, self_pc) pairs summed.

        The in-memory arc table already keeps one entry per pair, but
        merged data sets may contain duplicates; condensing restores the
        on-file invariant.
        """
        merged: dict[tuple[int, int], int] = {}
        for arc in self.arcs:
            key = (arc.from_pc, arc.self_pc)
            merged[key] = merged.get(key, 0) + arc.count
        return [RawArc(f, s, c) for (f, s), c in sorted(merged.items())]

    def copy(self) -> "ProfileData":
        """A deep, independent copy."""
        return ProfileData(
            self.histogram.copy(),
            list(self.arcs),
            self.runs,
            self.comment,
            list(self.warnings),
        )


def merge_profiles(profiles: Sequence[ProfileData]) -> ProfileData:
    """Sum several profiles of the same executable into one.

    Implements the paper's multi-run accumulation ("the profile data for
    several executions of a program can be combined by the
    post-processing") and the retrospective's "ability to sum the data
    over several profiled runs, to accumulate enough time in
    short-running methods".

    All histograms must share bounds, bucket count and clock rate —
    i.e. come from the same executable image.  Raises
    :class:`~repro.errors.MergeError` otherwise.

    The merge is a single pass: one bucket array and one arc table are
    accumulated across all inputs (O(total arcs), no intermediate
    copies), so summing N profiles costs the same as reading them.  The
    inputs are never mutated or aliased — in particular
    ``merge_profiles([p])`` returns an independent (condensed) copy of
    ``p``.  The merged comment joins the non-empty input comments with
    ``"; "`` in input order, which makes the merge associative (any
    regrouping of an ordered sequence yields byte-identical output)
    though not comment-commutative.
    """
    if not profiles:
        raise MergeError("cannot merge zero profiles")
    first = profiles[0].histogram
    counts = list(first.counts)
    for p in profiles[1:]:
        h = p.histogram
        if not first.compatible_with(h):
            raise MergeError(
                "histograms are incompatible: "
                f"[{first.low_pc:#x},{first.high_pc:#x})x{first.num_buckets}"
                f"@{first.profrate}Hz vs "
                f"[{h.low_pc:#x},{h.high_pc:#x})x{h.num_buckets}@{h.profrate}Hz",
                expected=(first.low_pc, first.high_pc, first.num_buckets,
                          first.profrate),
                actual=(h.low_pc, h.high_pc, h.num_buckets, h.profrate),
            )
        counts = list(map(operator.add, counts, h.counts))
    arc_totals: dict[tuple[int, int], int] = {}
    get = arc_totals.get
    for p in profiles:
        for a in p.arcs:
            key = (a.from_pc, a.self_pc)
            arc_totals[key] = get(key, 0) + a.count
    return ProfileData(
        Histogram(first.low_pc, first.high_pc, counts, first.profrate),
        [RawArc(f, s, c) for (f, s), c in sorted(arc_totals.items())],
        runs=sum(p.runs for p in profiles),
        comment="; ".join(filter(None, (p.comment for p in profiles))),
        warnings=[w for p in profiles for w in p.warnings],
    )
