"""The dynamic call graph: routines as nodes, calls as weighted arcs.

§2 of the paper distinguishes the *complete*, *static*, and *dynamic*
call graphs.  This class represents whichever mixture the analysis is
working with: dynamically-observed arcs carry positive traversal counts,
statically-added arcs carry a count of zero (they shape the graph and can
complete strongly-connected components, but never propagate time).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.core.arcs import Arc, ArcSet
from repro.core.symbols import SPONTANEOUS
from repro.errors import CallGraphError


class CallGraph:
    """A directed multigraph-collapsed-to-simple-graph of routine calls.

    Nodes are routine names.  At most one arc exists per (caller, callee)
    pair; parallel call sites have already been merged by
    :func:`repro.core.arcs.symbolize_arcs`.  Spontaneous arcs (caller
    unknown) contribute to a callee's incoming call count but create no
    graph edge — there is nothing to propagate time *to*.
    """

    def __init__(
        self,
        arcs: Iterable[Arc] = (),
        extra_nodes: Iterable[str] = (),
    ):
        self._children: dict[str, dict[str, Arc]] = {}
        self._parents: dict[str, dict[str, Arc]] = {}
        self._spontaneous: dict[str, int] = {}
        for node in extra_nodes:
            self.add_node(node)
        for arc in arcs:
            self.add_arc(arc)

    # -- construction ----------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Ensure ``name`` exists as a node (possibly isolated)."""
        if name == SPONTANEOUS:
            raise CallGraphError("the spontaneous pseudo-caller is not a node")
        self._children.setdefault(name, {})
        self._parents.setdefault(name, {})

    def add_arc(self, arc: Arc) -> None:
        """Insert an arc, merging counts with an existing same-pair arc."""
        self.add_node(arc.callee)
        if arc.spontaneous:
            self._spontaneous[arc.callee] = (
                self._spontaneous.get(arc.callee, 0) + arc.count
            )
            return
        self.add_node(arc.caller)
        old = self._children[arc.caller].get(arc.callee)
        if old is not None:
            arc = Arc(
                arc.caller,
                arc.callee,
                old.count + arc.count,
                old.sites + arc.sites,
                old.static and arc.static,
            )
        self._children[arc.caller][arc.callee] = arc
        self._parents[arc.callee][arc.caller] = arc

    def remove_arc(self, caller: str, callee: str) -> bool:
        """Delete the arc ``caller → callee``; True if it existed.

        This implements the retrospective's "option to specify a set of
        arcs to be removed from the analysis" for breaking giant cycles.
        """
        arc = self._children.get(caller, {}).pop(callee, None)
        if arc is None:
            return False
        del self._parents[callee][caller]
        return True

    @classmethod
    def from_arcset(cls, arcs: ArcSet, extra_nodes: Iterable[str] = ()) -> "CallGraph":
        """Build a graph from an :class:`ArcSet`."""
        return cls(arcs, extra_nodes)

    # -- queries ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._children

    def __len__(self) -> int:
        return len(self._children)

    def nodes(self) -> Iterator[str]:
        """All routine names in the graph."""
        return iter(self._children)

    def arcs(self) -> Iterator[Arc]:
        """All arcs in the graph (spontaneous pseudo-arcs excluded)."""
        for children in self._children.values():
            yield from children.values()

    def num_arcs(self) -> int:
        """Number of arcs (spontaneous pseudo-arcs excluded)."""
        return sum(len(c) for c in self._children.values())

    def children(self, name: str) -> Mapping[str, Arc]:
        """Arcs out of ``name``, keyed by callee."""
        try:
            return self._children[name]
        except KeyError:
            raise CallGraphError(f"no node named {name!r}") from None

    def parents(self, name: str) -> Mapping[str, Arc]:
        """Arcs into ``name``, keyed by caller."""
        try:
            return self._parents[name]
        except KeyError:
            raise CallGraphError(f"no node named {name!r}") from None

    def arc(self, caller: str, callee: str) -> Arc | None:
        """The arc ``caller → callee``, or None."""
        return self._children.get(caller, {}).get(callee)

    def spontaneous_calls(self, name: str) -> int:
        """Calls into ``name`` whose caller could not be identified."""
        return self._spontaneous.get(name, 0)

    def total_calls(self, name: str) -> int:
        """All dynamic calls into ``name``, including self-recursive and
        spontaneous ones."""
        return self.incoming_calls(name) + self.self_calls(name)

    def incoming_calls(self, name: str) -> int:
        """Dynamic calls into ``name`` from *other* routines (plus
        spontaneous calls); self-recursive calls are excluded, as they
        are in the paper's ``called+self`` notation."""
        total = self._spontaneous.get(name, 0)
        for caller, arc in self._parents[name].items():
            if caller != name:
                total += arc.count
        return total

    def self_calls(self, name: str) -> int:
        """Self-recursive calls ``name → name``."""
        arc = self._children.get(name, {}).get(name)
        return arc.count if arc else 0

    def roots(self) -> list[str]:
        """Nodes with no parents other than themselves.

        These are the program entry points (and routines only ever invoked
        spontaneously)."""
        return [
            n
            for n, parents in self._parents.items()
            if all(p == n for p in parents)
        ]

    def copy(self) -> "CallGraph":
        """An independent copy of the graph."""
        clone = CallGraph()
        for node in self._children:
            clone.add_node(node)
        for arc in self.arcs():
            clone.add_arc(arc)
        clone._spontaneous = dict(self._spontaneous)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CallGraph({len(self)} nodes, {self.num_arcs()} arcs)"
