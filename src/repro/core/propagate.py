"""Time propagation: charging descendants' time to their ancestors.

§4 of the paper.  With ``C_e`` the number of calls to routine ``e`` and
``C_e^r`` the number of calls from caller ``r`` to ``e``, the total time
accounted to ``r`` obeys the recurrence::

    T_r  =  S_r  +  sum over e called by r of  T_e * C_e^r / C_e

Solving it requires visiting routines leaves-first, which the topological
numbering of :mod:`repro.core.cycles` provides; cycles have already been
collapsed into single nodes, because time must not be propagated from a
routine to itself, directly (self-recursion) or around a cycle.

Concretely, for every *representative* node (a routine, or a collapsed
cycle) we compute:

* ``self_time`` — from the PC histogram, summed over members for cycles;
* ``child_time`` — time inherited from descendants outside the node;
* ``total_time`` — the ``T`` of the recurrence: self + child;
* ``ncalls`` — external calls into the node: calls among cycle members
  and self-recursive calls are *excluded* ("Since cycle 1 is called a
  total of forty times (not counting calls among members of the cycle)").

and for every inter-node arc with a positive traversal count, the share
of the callee's self and descendant time that flows up the arc.  Static
(zero-count) arcs and arcs whose caller is unknown ("spontaneous")
propagate nothing; their callee's time simply stays put.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.cycles import NumberedGraph
from repro.core.kernels import prop as _kernels_prop


@dataclass(frozen=True)
class ArcShare:
    """Time flowing up one call graph arc.

    ``self_share`` is the portion of the callee's (or callee's cycle's)
    own time charged to the caller through this arc; ``child_share`` is
    the portion of the callee's descendants' time.  Both are in seconds.
    """

    self_share: float
    child_share: float

    @property
    def total(self) -> float:
        """Total seconds flowing up this arc."""
        return self.self_share + self.child_share


@dataclass
class Propagation:
    """The solved recurrence, for representatives, routines, and arcs.

    Attributes:
        numbered: the cycle-collapsed, numbered graph that was solved.
        self_time: seconds of own execution per representative node.
        child_time: seconds inherited from external descendants.
        total_time: ``self_time + child_time`` per representative.
        ncalls: external dynamic calls into each representative.
        self_calls: intra-node calls (self-recursive calls for plain
            routines; calls among members for cycles) — displayed after
            the ``+`` in the paper's ``10+4`` notation.
        routine_self: per-routine self seconds (cycle members keep their
            individual figure even though propagation used the sum).
        routine_child: per-routine inherited seconds from descendants
            *outside* the routine's cycle.
        arc_shares: time flowing up each (caller, callee) arc.
        total_program_time: seconds of sampled execution attributed to
            any profiled routine; the denominator of every percentage.
    """

    numbered: NumberedGraph
    self_time: dict[str, float] = field(default_factory=dict)
    child_time: dict[str, float] = field(default_factory=dict)
    total_time: dict[str, float] = field(default_factory=dict)
    ncalls: dict[str, int] = field(default_factory=dict)
    self_calls: dict[str, int] = field(default_factory=dict)
    routine_self: dict[str, float] = field(default_factory=dict)
    routine_child: dict[str, float] = field(default_factory=dict)
    arc_shares: dict[tuple[str, str], ArcShare] = field(default_factory=dict)
    total_program_time: float = 0.0

    def representative_of(self, routine: str) -> str:
        """The node that stood for ``routine`` during propagation."""
        return self.numbered.representative[routine]

    def percent(self, rep: str) -> float:
        """Percent of total program time accounted to ``rep``."""
        if self.total_program_time <= 0:
            return 0.0
        return 100.0 * self.total_time[rep] / self.total_program_time


def propagate(
    numbered: NumberedGraph,
    self_times: Mapping[str, float],
) -> Propagation:
    """Solve the time-propagation recurrence over a numbered graph.

    Arguments:
        numbered: output of :func:`repro.core.cycles.number_graph`.
        self_times: per-routine self seconds from the histogram (missing
            routines are treated as zero — they were called but never
            sampled).

    Returns the fully-populated :class:`Propagation`.

    The visit order is ``numbered.topo_order`` (leaves first).  When node
    ``e`` is visited, every external child of ``e`` has already pushed
    its share into ``child_time[e]``, so ``total_time[e]`` is final and
    ``e`` can in turn push shares to its parents — a single traversal of
    each arc, as §4 promises.

    The graph walk is flattened into a
    :class:`~repro.core.kernels.prop.PropPlan` (memoized on
    ``numbered``, so repeated solves against the same graph — PGO
    iterations, same-layout fleets — skip it) and the recurrence is
    solved by the selected kernel backend: a flat scalar pass for the
    stdlib backends, batched column arithmetic for numpy.  Backends
    produce bit-identical results (see :mod:`repro.core.kernels.prop`).
    """
    from repro.core import kernels

    plan = _kernels_prop.plan_for(numbered)
    sol = _kernels_prop.solve(
        plan, self_times, kernels.get_backend().vector_propagate
    )

    result = Propagation(numbered)
    for i, rep in enumerate(plan.order):
        result.self_time[rep] = sol.self_time[i]
        result.child_time[rep] = sol.child_time[i]
        result.ncalls[rep] = plan.ncalls[i]
        result.self_calls[rep] = plan.self_calls[i]
    for j, routine in enumerate(plan.routines):
        result.routine_self[routine] = self_times.get(routine, 0.0)
        result.routine_child[routine] = sol.routine_child[j]
    result.total_program_time = sol.total_program_time
    for i, rep in enumerate(plan.order):
        result.total_time[rep] = sol.total_time[i]
    for k in range(len(plan.arc_count)):
        if plan.ncalls[plan.arc_rep[k]] <= 0:
            continue
        result.arc_shares[(plan.arc_caller[k], plan.arc_member[k])] = ArcShare(
            sol.arc_self[k], sol.arc_child[k]
        )
    return result
