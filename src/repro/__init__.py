"""repro — a faithful reproduction of gprof, the call graph execution
profiler (Graham, Kessler & McKusick, SIGPLAN 1982).

The package is organised exactly like the system the paper describes:

* :mod:`repro.machine` — a small virtual machine standing in for the
  VAX executables of the original: programs with real program counters,
  a clock-tick PC sampler, and an ``mcount`` monitoring routine.
* :mod:`repro.pyprof` — a native Python frontend gathering the same
  data (arcs + samples) for ordinary Python programs.
* :mod:`repro.gmon` — the condensed on-disk profile format.
* :mod:`repro.core` — the post-processor: call graph assembly, cycle
  discovery (Tarjan), topological time propagation, static-arc
  augmentation, filtering, multi-run merging.
* :mod:`repro.report` — the flat profile and the Figure 4 call-graph
  listing.
* :mod:`repro.baseline` — the ``prof(1)`` flat-only baseline gprof was
  built to improve on.
* :mod:`repro.kernel` — a simulated time-sharing kernel workload with a
  ``kgmon``-style live control interface.
* :mod:`repro.resilience` — crash-safe persistence: atomic writes,
  periodic checkpoint flushing, the salvaging reader's
  :class:`SalvageReport`, and a fault-injection harness.

Quickstart::

    from repro import pyprof, analyze, format_graph_profile

    with pyprof.Profiler() as p:
        my_program()
    profile = analyze(p.profile_data(), p.symbol_table())
    print(format_graph_profile(profile))
"""

from repro.core import (
    AnalysisOptions,
    Arc,
    CallGraph,
    Histogram,
    Profile,
    ProfileData,
    RawArc,
    Symbol,
    SymbolTable,
    analyze,
    merge_profiles,
)
from repro.gmon import read_gmon, salvage_gmon, write_gmon
from repro.report import format_flat_profile, format_graph_profile
from repro.resilience import FaultInjector, InjectedFault, SalvageReport

__version__ = "1.0.0"

__all__ = [
    "AnalysisOptions",
    "Arc",
    "CallGraph",
    "FaultInjector",
    "Histogram",
    "InjectedFault",
    "Profile",
    "ProfileData",
    "RawArc",
    "SalvageReport",
    "Symbol",
    "SymbolTable",
    "analyze",
    "format_flat_profile",
    "format_graph_profile",
    "merge_profiles",
    "read_gmon",
    "salvage_gmon",
    "write_gmon",
    "__version__",
]
