"""The repro-vm command: assemble, run, and profile VM programs.

Subcommands::

    repro-vm list
        Show the canned program library.

    repro-vm asm SOURCE.s -o prog.vmexe [--profile] [--name NAME]
        Assemble (or, for .rl files, compile) a source file into an
        executable image.

    repro-vm run IMAGE_OR_SOURCE [--profile] [--gmon FILE]
                 [--ticks N] [--annotate] [--checkpoint N]
                 [--opt N] [--pgo GMON]
                 [--engine fast|reference]
                 [--cpus N [--procs M] [--sched SEED]
                  [--sched-policy rr|random|affinity|skew] [--quantum Q]]
        Execute a program (a .vmexe image, an assembly file, or a
        canned program name).  With --profile, attach the monitor and
        write the gmon file; with --annotate, print the per-instruction
        annotated disassembly afterwards; with --checkpoint N, flush a
        crash-safe snapshot to the gmon path every N clock ticks.
        With --cpus N, run M process instances of the program on an
        N-CPU machine with per-CPU profile shards and a seeded slice
        scheduler; the gmon file is the canonical shard merge, whose
        bytes are identical for every CPU count, seed, and policy.

This is the "compiler driver" of the reproduction's tool chain; its
output files feed repro-gprof / repro-prof.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.errors import ReproError
from repro.gmon import write_gmon
from repro.machine import (
    ENGINES,
    Executable,
    Monitor,
    MonitorConfig,
    assemble,
    make_cpu,
)
from repro.machine.programs import PROGRAMS
from repro.report.annotate import format_annotated_disassembly


def _load_program(
    spec: str,
    profile: bool,
    count_blocks: bool = False,
    optimize_level: int = 0,
    pgo: str | None = None,
    cycles_per_tick: int = 100,
) -> Executable:
    """Resolve IMAGE_OR_SOURCE: .vmexe image, canned name, or asm file.

    ``optimize_level`` and ``pgo`` (a gmon path enabling the
    profile-guided passes) apply to Rel sources only — images and
    assembly have no optimizer to feed.
    """
    is_rel = spec.endswith(".rl")
    if pgo is not None and not is_rel:
        raise ReproError(
            "--pgo needs Rel source (a .rl file): images and assembly "
            "have no optimizer to feed the profile to"
        )
    if optimize_level and not is_rel:
        raise ReproError("--opt needs Rel source (a .rl file)")
    if spec in PROGRAMS:
        return assemble(
            PROGRAMS[spec](), name=spec, profile=profile, count_blocks=count_blocks
        )
    if not os.path.exists(spec):
        raise ReproError(
            f"{spec!r} is neither a canned program ({', '.join(sorted(PROGRAMS))}) "
            "nor a file"
        )
    if spec.endswith(".vmexe"):
        return Executable.load(spec)
    with open(spec, encoding="utf-8") as f:
        text = f.read()
    if is_rel:
        from repro.lang import compile_source, feedback_from_data

        feedback = None
        if pgo is not None:
            from repro.gmon import read_gmon

            feedback = feedback_from_data(
                text,
                read_gmon(pgo),
                name=os.path.basename(spec),
                cycles_per_tick=cycles_per_tick,
            )
            print(f"pgo: {feedback.describe()}")
        return compile_source(
            text,
            name=os.path.basename(spec),
            profile=profile,
            count_blocks=count_blocks,
            optimize_level=optimize_level,
            feedback=feedback,
        )
    return assemble(
        text,
        name=os.path.basename(spec),
        profile=profile,
        count_blocks=count_blocks,
    )


def cmd_list(_opts) -> int:
    print("canned programs:")
    for name, builder in sorted(PROGRAMS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:15s} {doc}")
    return 0


def cmd_asm(opts) -> int:
    with open(opts.source, encoding="utf-8") as f:
        source = f.read()
    if opts.source.endswith(".rl"):
        from repro.lang import compile_source

        exe = compile_source(
            source,
            name=opts.name or os.path.basename(opts.source),
            profile=opts.profile,
        )
    else:
        exe = assemble(
            source,
            name=opts.name or os.path.basename(opts.source),
            profile=opts.profile,
        )
    exe.save(opts.output)
    kind = "profiled" if opts.profile else "plain"
    print(
        f"assembled {len(exe.instructions)} instructions, "
        f"{len(exe.functions)} routines ({kind}) -> {opts.output}"
    )
    return 0


def cmd_run_smp(opts, exe: Executable) -> int:
    """The --cpus path: a sharded multi-CPU run of ``--procs`` instances."""
    from repro.machine.smp import SMPMachine

    if opts.count:
        raise ReproError("--count is a uniprocessor feature; drop --cpus")
    if opts.checkpoint:
        raise ReproError("--checkpoint is a uniprocessor feature; drop --cpus")
    machine = SMPMachine(
        exe,
        ncpus=opts.cpus,
        nprocs=opts.procs,
        policy=opts.sched_policy,
        seed=opts.sched,
        quantum=opts.quantum,
        engine=opts.engine,
        profile=opts.profile,
        cycles_per_tick=opts.ticks,
    )
    machine.run()
    instructions = sum(p.cpu.instructions_executed for p in machine.procs)
    print(
        f"{exe.name}: {opts.procs} process(es) on {opts.cpus} cpu(s), "
        f"{instructions} instructions, {machine.wall_cycles} wall cycles, "
        f"{machine.rounds} rounds, {machine.migrations} migrations "
        f"({opts.sched_policy}, seed {opts.sched})"
    )
    if opts.profile:
        for shard in machine.shards:
            print(
                f"  cpu{shard.index}: {shard.histogram.total_ticks} samples, "
                f"{shard.arcs.total_calls} calls"
            )
        data = machine.merged_profile(comment=exe.name)
        write_gmon(data, opts.gmon)
        print(
            f"{data.total_ticks} samples, {data.total_calls} calls "
            f"merged from {len(machine.shards)} shard(s) -> {opts.gmon}"
        )
        if opts.annotate:
            print()
            print(format_annotated_disassembly(exe, data.histogram))
    return 0


def cmd_run(opts) -> int:
    exe = _load_program(
        opts.program,
        profile=opts.profile,
        count_blocks=opts.count,
        optimize_level=opts.opt,
        pgo=opts.pgo,
        cycles_per_tick=opts.ticks,
    )
    if opts.cpus:
        return cmd_run_smp(opts, exe)
    monitor = None
    if opts.count and not exe.counter_names:
        raise ReproError(
            "image carries no block counters; re-assemble from source "
            "or use a canned program name with --count"
        )
    if opts.profile:
        if not exe.profiled:
            raise ReproError(
                "image was assembled without profiling prologues; "
                "re-assemble with --profile"
            )
        monitor = Monitor(
            MonitorConfig(
                exe.low_pc,
                exe.high_pc,
                cycles_per_tick=opts.ticks,
                checkpoint_path=opts.gmon if opts.checkpoint else None,
                checkpoint_interval=opts.checkpoint or 0,
            )
        )
    elif opts.checkpoint:
        raise ReproError("--checkpoint requires --profile")
    cpu = make_cpu(exe, monitor, engine=opts.engine)
    cpu.run()
    print(
        f"{exe.name}: {cpu.instructions_executed} instructions, "
        f"{cpu.cycles} cycles"
        + (f", output {cpu.output}" if cpu.output else "")
    )
    if monitor is not None:
        data = monitor.mcleanup(comment=exe.name)
        write_gmon(data, opts.gmon)
        checkpoints = (
            f" ({monitor.checkpoints_written} checkpoint flushes)"
            if opts.checkpoint
            else ""
        )
        print(
            f"{data.total_ticks} samples, {data.total_calls} calls "
            f"-> {opts.gmon}{checkpoints}"
        )
        if opts.annotate:
            print()
            print(format_annotated_disassembly(exe, data.histogram))
    if opts.count:
        from repro.machine.blockcounts import format_block_counts

        print()
        print(format_block_counts(cpu))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-vm", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the canned program library")

    asm = sub.add_parser("asm", help="assemble a source file")
    asm.add_argument("source")
    asm.add_argument("-o", "--output", required=True)
    asm.add_argument("--profile", action="store_true")
    asm.add_argument("--name")

    run = sub.add_parser("run", help="run an image / source / canned program")
    run.add_argument("program")
    run.add_argument("--profile", action="store_true")
    run.add_argument("--gmon", default="gmon.out")
    run.add_argument("--ticks", type=int, default=100,
                     help="cycles per profiling clock tick")
    run.add_argument("--annotate", action="store_true",
                     help="print per-instruction sample annotation")
    run.add_argument("--checkpoint", type=int, default=0, metavar="N",
                     help="with --profile: crash-safely flush the profile "
                          "to the --gmon path every N clock ticks, so a "
                          "killed run still leaves a recent snapshot")
    run.add_argument("--count", action="store_true",
                     help="instrument basic blocks with inline counters "
                          "and print their exact execution counts")
    run.add_argument("--opt", type=int, default=0, choices=[0, 1, 2],
                     metavar="N",
                     help="Rel sources: static optimization level "
                          "(0 = none, 1 = fold/prune, 2 = +inline)")
    run.add_argument("--pgo", metavar="GMON", default=None,
                     help="Rel sources: recompile with profile-guided "
                          "optimization fed by this gmon file (from a "
                          "prior run with --profile); stale or empty "
                          "profiles degrade to a no-op with a warning")
    run.add_argument("--cpus", type=int, default=0, metavar="N",
                     help="run on an N-CPU machine with per-CPU profile "
                          "shards merged into one canonical gmon (0 = the "
                          "uniprocessor path)")
    run.add_argument("--procs", type=int, default=4, metavar="M",
                     help="with --cpus: process instances to run (the "
                          "workload; default 4).  The merged profile "
                          "depends only on this, never on the CPU count "
                          "or schedule")
    run.add_argument("--sched", type=int, default=0, metavar="SEED",
                     help="with --cpus: scheduler seed (any seed yields "
                          "byte-identical merged profiles)")
    run.add_argument("--sched-policy", default="rr",
                     choices=["rr", "random", "affinity", "skew"],
                     help="with --cpus: slice scheduling policy")
    run.add_argument("--quantum", type=int, default=500, metavar="Q",
                     help="with --cpus: nominal cycles per scheduling slice")
    run.add_argument("--engine", choices=sorted(ENGINES), default="fast",
                     help="interpreter engine: the predecoded fast engine "
                          "(default) or the reference engine, the readable "
                          "baseline kept as a debugging escape hatch — both "
                          "produce identical profiles")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    try:
        return {"list": cmd_list, "asm": cmd_asm, "run": cmd_run}[opts.command](opts)
    except (ReproError, OSError) as exc:
        print(f"repro-vm: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
