"""The repro-stacks command: modern call-stack sampling, from the shell.

Usage::

    repro-stacks vm PROGRAM [--ticks N] [--stride K] [--folded FILE]
        Stack-sample a VM program (canned name, .s source, or .vmexe
        image path is re-assembled from a canned name only — images
        carry no stride knob).

    repro-stacks py SCRIPT [args...] [--interval SEC] [--mode signal|thread]
                 [--folded FILE]
        Stack-sample a Python script via SIGPROF (or a sampler thread).

Both print the call tree and hot paths, and optionally write the
samples in folded format for flame-graph tooling.
"""

from __future__ import annotations

import argparse
import os
import runpy
import sys

from repro.errors import ReproError
from repro.machine.programs import PROGRAMS
from repro.stacks import (
    PyStackSampler,
    format_call_tree,
    format_hot_paths,
    write_folded,
)
from repro.stacks.report import format_stack_flat
from repro.stacks.vm import run_stack_profiled


def _vm_source(spec: str) -> tuple[str, str]:
    if spec in PROGRAMS:
        return PROGRAMS[spec](), spec
    if os.path.exists(spec):
        with open(spec, encoding="utf-8") as f:
            return f.read(), os.path.basename(spec)
    raise ReproError(
        f"{spec!r} is neither a canned program nor an assembly file"
    )


def cmd_vm(opts) -> int:
    source, name = _vm_source(opts.program)
    cpu, profile = run_stack_profiled(
        source, name, cycles_per_tick=opts.ticks, stride=opts.stride
    )
    print(f"{name}: {cpu.cycles} cycles, {profile.total_ticks} stack samples\n")
    print(format_call_tree(profile, min_percent=opts.min_percent))
    print(format_hot_paths(profile, top=opts.paths))
    print(format_stack_flat(profile, min_percent=opts.min_percent))
    if opts.folded:
        write_folded(profile, opts.folded)
        print(f"folded samples -> {opts.folded}")
    return 0


def cmd_py(opts) -> int:
    sampler = PyStackSampler(interval=opts.interval, mode=opts.mode)
    saved_argv = sys.argv
    sys.argv = [opts.script] + list(opts.args)
    try:
        with sampler:
            runpy.run_path(opts.script, run_name="__main__")
    finally:
        sys.argv = saved_argv
        sampler.stop()
    profile = sampler.profile
    print(f"\n{opts.script}: {profile.total_ticks} stack samples\n")
    print(format_call_tree(profile, min_percent=opts.min_percent))
    print(format_hot_paths(profile, top=opts.paths))
    if opts.folded:
        write_folded(profile, opts.folded)
        print(f"folded samples -> {opts.folded}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stacks", description="complete-call-stack sampling profiler"
    )
    parser.add_argument("--min-percent", type=float, default=1.0)
    parser.add_argument("--paths", type=int, default=5,
                        help="hot paths to show")
    parser.add_argument("--folded", metavar="FILE",
                        help="write folded samples for flame-graph tools")
    sub = parser.add_subparsers(dest="command", required=True)

    vm = sub.add_parser("vm", help="sample a VM program")
    vm.add_argument("program")
    vm.add_argument("--ticks", type=int, default=50,
                    help="cycles per sampling tick")
    vm.add_argument("--stride", type=int, default=1,
                    help="capture a stack every K-th tick")

    py = sub.add_parser("py", help="sample a Python script")
    py.add_argument("script")
    py.add_argument("--interval", type=float, default=0.001)
    py.add_argument("--mode", choices=("signal", "thread"), default="signal")
    py.add_argument("args", nargs=argparse.REMAINDER)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    try:
        return {"vm": cmd_vm, "py": cmd_py}[opts.command](opts)
    except (ReproError, OSError) as exc:
        print(f"repro-stacks: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
