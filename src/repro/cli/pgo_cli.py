"""The repro-pgo command: run the §6 loop hands-free.

::

    repro-pgo SOURCE [--rounds N] [--level L] [--ticks N]
              [--engine fast|reference] [--out PROG.vmexe]
              [--instrumented] [--asm FILE.s] [--json]

``SOURCE`` is a Rel source file (``.rl``) or a canned Rel program name
(see ``repro-pgo --list``).  Each round compiles the current program
with monitoring prologues, runs it, maps the gmon data back onto the
AST, applies the profile-guided passes (branch ordering, benefit-model
inlining, hot/cold layout), verifies the rewrite is observably
identical, and reports the honest unprofiled cycle counts.  The paper
runs this loop with a programmer in the middle ("profiling the
program, eliminating one bottleneck, then finding some other part of
the program that begins to dominate"); this command is the same loop
with the programmer replaced by the feedback layer.

Exit status: 0 on success, 1 on usage/compile errors, 2 if any round
failed behaviour verification (which would be an optimizer bug — the
benchmark suite gates on it staying impossible).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ReproError
from repro.lang import run_pgo
from repro.lang.programs import REL_PROGRAMS


def _load_source(spec: str) -> tuple[str, str]:
    """Resolve SOURCE to (program name, Rel text)."""
    if spec in REL_PROGRAMS:
        return spec, REL_PROGRAMS[spec]()
    if not os.path.exists(spec):
        raise ReproError(
            f"{spec!r} is neither a canned Rel program "
            f"({', '.join(sorted(REL_PROGRAMS))}) nor a file"
        )
    if not spec.endswith(".rl"):
        raise ReproError(
            "repro-pgo optimizes Rel source; expected a .rl file or a "
            "canned Rel program name"
        )
    with open(spec, encoding="utf-8") as f:
        return os.path.basename(spec), f.read()


def _transform_summary(counters: dict[str, int]) -> str:
    """The interesting counters, compressed for the round table."""
    names = [
        ("branch-order.reordered_ifs", "ifs"),
        ("branch-order.rotated_loops", "loops"),
        ("inline.sites_expanded", "inlined"),
        ("hot-cold-layout.functions_moved", "moved"),
    ]
    parts = [
        f"{label} {counters[key]}"
        for key, label in names
        if counters.get(key)
    ]
    return ", ".join(parts) if parts else "none"


def _report_text(result) -> None:
    print(f"== repro-pgo: {result.name} (level {result.level}) ==")
    for r in result.rounds:
        hot = ", ".join(name for name, _ in r.hot) or "-"
        print(
            f"round {r.index}: {r.samples} samples, {r.calls} calls; "
            f"hot: {hot}"
        )
        print(
            f"  {r.cycles_before} -> {r.cycles_after} cycles "
            f"({r.saved:+d} saved); transforms: "
            f"{_transform_summary(r.counters)}; "
            f"behaviour {'identical' if r.identical else 'DIVERGED'}"
        )
        for warning in r.warnings:
            print(f"  warning: {warning}")
    pct = (
        100.0 * result.saved / result.cycles_baseline
        if result.cycles_baseline
        else 0.0
    )
    print(
        f"total: {result.cycles_baseline} -> {result.cycles_final} cycles "
        f"({result.saved:+d}, {pct:.1f}% saved) over "
        f"{len(result.rounds)} round(s)"
    )


def _report_json(result) -> None:
    blob = {
        "name": result.name,
        "level": result.level,
        "cycles_baseline": result.cycles_baseline,
        "cycles_final": result.cycles_final,
        "saved": result.saved,
        "identical": result.identical,
        "bottleneck": result.bottleneck,
        "output": result.output,
        "rounds": [
            {
                "index": r.index,
                "samples": r.samples,
                "calls": r.calls,
                "cycles_before": r.cycles_before,
                "cycles_after": r.cycles_after,
                "saved": r.saved,
                "hints": r.hints,
                "counters": r.counters,
                "hot": [[name, seconds] for name, seconds in r.hot],
                "warnings": r.warnings,
                "identical": r.identical,
            }
            for r in result.rounds
        ],
    }
    print(json.dumps(blob, indent=2))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-pgo", description=__doc__)
    parser.add_argument("source", nargs="?",
                        help="Rel source file (.rl) or canned Rel "
                             "program name")
    parser.add_argument("--list", action="store_true",
                        help="show the canned Rel program library")
    parser.add_argument("--rounds", type=int, default=1, metavar="N",
                        help="measure→optimize trips to make (default 1)")
    parser.add_argument("--level", type=int, default=0, choices=[0, 1, 2],
                        help="static optimization level applied before "
                             "the first measurement (default 0)")
    parser.add_argument("--ticks", type=int, default=100,
                        help="cycles per profiling clock tick")
    parser.add_argument("--engine", default="fast",
                        help="VM interpreter engine for every run")
    parser.add_argument("--out", metavar="FILE",
                        help="write the final optimized executable here")
    parser.add_argument("--instrumented", action="store_true",
                        help="with --out: plant monitoring prologues in "
                             "the written image, so the optimized "
                             "program can be re-measured")
    parser.add_argument("--asm", metavar="FILE",
                        help="write the final optimized assembly here")
    parser.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    if opts.list:
        print("canned Rel programs:")
        for name, builder in sorted(REL_PROGRAMS.items()):
            doc = (builder.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:15s} {doc}")
        return 0
    if not opts.source:
        print("repro-pgo: a SOURCE (or --list) is required", file=sys.stderr)
        return 1
    try:
        name, text = _load_source(opts.source)
        result = run_pgo(
            text,
            name=name,
            level=opts.level,
            rounds=opts.rounds,
            cycles_per_tick=opts.ticks,
            engine=opts.engine,
        )
        if opts.json:
            _report_json(result)
        else:
            _report_text(result)
        if opts.asm:
            with open(opts.asm, "w", encoding="utf-8") as f:
                f.write(result.asm)
            if not opts.json:
                print(f"optimized assembly -> {opts.asm}")
        if opts.out:
            from repro.machine import assemble

            exe = assemble(
                result.asm, name=name, profile=opts.instrumented
            )
            exe.save(opts.out)
            if not opts.json:
                kind = "instrumented" if opts.instrumented else "plain"
                print(f"optimized executable ({kind}) -> {opts.out}")
        return 0 if result.identical else 2
    except (ReproError, OSError) as exc:
        print(f"repro-pgo: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
