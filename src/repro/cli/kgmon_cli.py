"""The kgmon command: drive the simulated kernel's live profiling.

Usage::

    repro-kgmon [--iterations N] [--windows K] [--warmup-slices W]
                [--out-prefix PREFIX] [--cpus N] [--sched SEED]
                [--sched-policy POLICY]

Boots the simulated kernel, optionally lets it warm up unprofiled,
then records ``K`` profiling windows (on → run → extract → reset),
writing each window to ``PREFIX.window<i>.gmon`` plus the kernel's
symbol table to ``PREFIX.syms`` — the workflow the retrospective
describes for profiling "events of interest in the kernel without
taking the kernel down".  With ``--checkpoint``, every window slice
also crash-safely flushes the in-flight data to ``PREFIX.ckpt.gmon``
(atomic write), so a machine going down mid-window still leaves a
recent consistent snapshot.

With ``--cpus N``, the kernel runs on an N-CPU machine: every core
executes the kernel workload, profiling events land in per-CPU shards
with no cross-CPU locking, and each extracted window is the canonical
merge of the shards (via the fleet accumulator algebra) — live
extraction and reset never stop the machine.  Analyze a window with::

    repro-gprof PREFIX.syms PREFIX.window0.gmon -k if_output/netisr -k tcp_input/tcp_output
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ReproError
from repro.gmon import write_gmon
from repro.kernel import Kgmon, KernelSession, SMPKernelSession, SMPKgmon


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-kgmon", description="live kernel profiling control"
    )
    parser.add_argument("--iterations", type=int, default=800,
                        help="kernel workload size (scheduling quanta)")
    parser.add_argument("--windows", type=int, default=2,
                        help="number of profiling windows to record")
    parser.add_argument("--warmup-slices", type=int, default=2,
                        help="unprofiled time slices before the first window")
    parser.add_argument("--slice-instructions", type=int, default=5000,
                        help="instructions per kernel time slice "
                             "(uniprocessor only)")
    parser.add_argument("--out-prefix", default="kernel",
                        help="output file prefix")
    parser.add_argument("--checkpoint", action="store_true",
                        help="crash-safely flush in-flight window data to "
                             "PREFIX.ckpt.gmon after every slice")
    parser.add_argument("--cpus", type=int, default=0, metavar="N",
                        help="run the kernel on an N-CPU machine with "
                             "per-CPU profile shards (0 = uniprocessor)")
    parser.add_argument("--sched", type=int, default=0, metavar="SEED",
                        help="with --cpus: scheduler seed")
    parser.add_argument("--sched-policy", default="rr",
                        choices=["rr", "random", "affinity", "skew"],
                        help="with --cpus: slice scheduling policy")
    parser.add_argument("--slice-rounds", type=int, default=8,
                        help="with --cpus: scheduling rounds per window slice")
    opts = parser.parse_args(argv)
    try:
        if opts.cpus:
            return _run_smp(opts)
        session = KernelSession(iterations=opts.iterations)
        kgmon = Kgmon(session)
        kgmon.off()
        for _ in range(opts.warmup_slices):
            session.run_slice(opts.slice_instructions)
        session.symbol_table().save(f"{opts.out_prefix}.syms")
        recorded = 0
        while recorded < opts.windows and not session.halted:
            kgmon.reset()
            kgmon.on()
            session.run_slice(opts.slice_instructions)
            kgmon.off()
            if opts.checkpoint:
                kgmon.checkpoint(
                    f"{opts.out_prefix}.ckpt.gmon",
                    comment=f"checkpoint during window {recorded}",
                )
            window = kgmon.extract(f"window {recorded}")
            path = f"{opts.out_prefix}.window{recorded}.gmon"
            write_gmon(window, path)
            status = kgmon.status()
            print(
                f"window {recorded}: {window.total_ticks} ticks, "
                f"{window.total_calls} calls -> {path} "
                f"(kernel at {status.kernel_cycles} cycles, "
                f"{'halted' if status.halted else 'running'})"
            )
            recorded += 1
        print(f"symbols -> {opts.out_prefix}.syms")
        return 0
    except (ReproError, OSError) as exc:
        print(f"repro-kgmon: {exc}", file=sys.stderr)
        return 1


def _run_smp(opts) -> int:
    """The --cpus path: windows extracted live from per-CPU shards."""
    session = SMPKernelSession(
        ncpus=opts.cpus,
        iterations=opts.iterations,
        policy=opts.sched_policy,
        seed=opts.sched,
    )
    kgmon = SMPKgmon(session)
    kgmon.off()
    for _ in range(opts.warmup_slices):
        session.run_slice(opts.slice_rounds)
    session.symbol_table().save(f"{opts.out_prefix}.syms")
    recorded = 0
    while recorded < opts.windows and not session.halted:
        kgmon.reset()
        kgmon.on()
        session.run_slice(opts.slice_rounds)
        kgmon.off()
        if opts.checkpoint:
            kgmon.checkpoint(
                f"{opts.out_prefix}.ckpt.gmon",
                comment=f"checkpoint during window {recorded}",
            )
        window = kgmon.extract(f"window {recorded}")
        path = f"{opts.out_prefix}.window{recorded}.gmon"
        write_gmon(window, path)
        status = kgmon.status()
        print(
            f"window {recorded}: {window.total_ticks} ticks, "
            f"{window.total_calls} calls merged from {opts.cpus} shard(s) "
            f"-> {path} (wall {status.kernel_cycles} cycles, "
            f"{'halted' if status.halted else 'running'})"
        )
        recorded += 1
    print(f"symbols -> {opts.out_prefix}.syms")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
