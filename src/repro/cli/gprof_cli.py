"""The gprof command: analyze profile data against an executable image.

Usage::

    repro-gprof IMAGE GMON [GMON ...] [options]

``IMAGE`` is either a VM executable (saved with
:meth:`repro.machine.Executable.save`) or a bare symbol table (saved
with :meth:`repro.core.SymbolTable.save` — what the Python profiler
emits).  Multiple GMON files are summed, reproducing the multi-run
accumulation feature.

Options mirror the features the paper and retrospective describe:

* ``-E NAME`` — exclude a routine from the analysis;
* ``-k FROM/TO`` — delete a call graph arc (cycle breaking by hand);
* ``-C [N]`` — break remaining cycles heuristically, removing at most
  N arcs (the bounded NP-complete workaround);
* ``--static`` — crawl the executable for static arcs (VM images only);
* ``-s FILE`` / ``--sum FILE`` — write the summed data to FILE and
  exit (gmon.sum); summing runs on the :mod:`repro.fleet`
  tree-reduction driver, and GMON arguments may be glob patterns or
  directories (``--jobs N`` sets the worker count);
* ``--min-percent`` — show only hot entries;
* ``-f NAME`` — restrict the graph profile to NAME and everything it
  reaches (repeatable);
* ``-z`` — list routines that were never called;
* ``--flat-only`` / ``--graph-only`` — pick one listing;
* ``--dot FILE`` — also write a Graphviz rendering;
* ``--lint`` — run the :mod:`repro.check` battery (instrumentation,
  CFG, and gmon-consistency checks) before reporting; findings go to
  stderr so the listings stay pipeable (VM images only);
* ``--expect`` — confront the measured profile with the *static
  prediction* (``--lint`` plus the dataflow battery and the
  GP610–GP612 expectation checks, VM images only), and annotate every
  flat-profile line with its §6 sampling confidence (expected error
  ∝ √samples) so statistically-meaningless numbers are visible;
* ``--salvage`` — read GMON files with the salvaging reader: corrupt
  or truncated files are recovered (maximal structurally-valid prefix)
  instead of aborting, each file's salvage report goes to stderr, and
  the listings carry a degraded-input banner;
* ``--timings`` — print the pipeline's per-stage wall time and work
  counters to stderr (the profiler profiling itself);
* ``--trace FILE`` — write the structured pipeline trace as JSON
  (deterministic modulo the timing fields).

The heavy lifting — image loading, gmon reading/salvaging/merging,
linting, and the staged analysis itself — rides
:class:`repro.pipeline.ProfileSession`, shared by every frontend.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import AnalysisOptions, SymbolTable, kernels
from repro.core.filters import reachable_from
from repro.errors import ReproError
from repro.gmon import write_gmon
from repro.machine import Executable, static_call_graph
from repro.pipeline import PipelineTrace, ProfileSession
from repro.report import format_flat_profile, format_graph_profile
from repro.report.dot import to_dot


def load_image(path: str) -> tuple[SymbolTable, Executable | None]:
    """Load either a VM executable or a bare symbol table from ``path``."""
    session = ProfileSession.from_image(path)
    return session.symbols, session.exe


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gprof", description="call graph execution profiler"
    )
    parser.add_argument("image", help="executable image or symbol table (JSON)")
    parser.add_argument(
        "gmon", nargs="+",
        help="profile data file(s), glob pattern(s), or director(ies); summed",
    )
    parser.add_argument(
        "-E", dest="exclude", action="append", default=[], metavar="NAME",
        help="exclude routine NAME from the analysis",
    )
    parser.add_argument(
        "-k", dest="delete_arcs", action="append", default=[], metavar="FROM/TO",
        help="delete the arc FROM/TO from the analysis",
    )
    parser.add_argument(
        "-C", dest="break_cycles", nargs="?", const=10, default=None,
        type=int, metavar="N",
        help="heuristically break cycles, removing at most N arcs",
    )
    parser.add_argument(
        "--static", action="store_true",
        help="augment with statically-discovered arcs (VM images only)",
    )
    parser.add_argument(
        "-s", "--sum", dest="sum_file", metavar="FILE",
        help="write summed profile data to FILE and exit",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for summing many gmon files "
             "(default: one per CPU)",
    )
    parser.add_argument(
        "--min-percent", type=float, default=0.0,
        help="hide entries below this percentage of total time",
    )
    parser.add_argument(
        "-f", dest="focus", action="append", default=[], metavar="NAME",
        help="show only NAME and its descendants (repeatable)",
    )
    parser.add_argument(
        "-z", dest="zero", action="store_true",
        help="list routines never called",
    )
    parser.add_argument("--flat-only", action="store_true")
    parser.add_argument("--graph-only", action="store_true")
    parser.add_argument("--dot", metavar="FILE", help="write Graphviz output")
    parser.add_argument("--html", metavar="FILE",
                        help="write a navigable HTML report")
    parser.add_argument(
        "--coverage", action="store_true",
        help="print routine/arc coverage (meaningful with --static)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="append the field-by-field explanation of each listing",
    )
    parser.add_argument(
        "--json", metavar="FILE",
        help="also write the full analysis as structured JSON",
    )
    parser.add_argument(
        "--lint", action="store_true",
        help="validate the profile data against the executable before "
             "reporting (VM images only); findings are printed to stderr",
    )
    parser.add_argument(
        "--expect", action="store_true",
        help="confront measurement with the static prediction: --lint "
             "plus the dataflow battery and GP610-GP612, and annotate "
             "flat-profile lines with their sampling confidence "
             "(VM images only)",
    )
    parser.add_argument(
        "--salvage", action="store_true",
        help="recover corrupt/truncated gmon files instead of aborting; "
             "salvage reports go to stderr and the listings are marked "
             "as degraded",
    )
    parser.add_argument(
        "--timings", action="store_true",
        help="print per-stage pipeline wall time, counters, and the "
             "kernel backend serving each bulk stage to stderr",
    )
    parser.add_argument(
        "--kernels", metavar="BACKEND", default=None,
        help="kernel backend for the bulk arithmetic (auto, python, "
             "array, numpy); overrides $REPRO_KERNELS",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write the structured pipeline trace as JSON to FILE",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    try:
        if opts.kernels is not None:
            kernels.set_default_backend(opts.kernels)
        session = ProfileSession.from_image(opts.image)
        exe = session.exe
        data = session.load(opts.gmon, salvage=opts.salvage, jobs=opts.jobs)
        for _path, salvage_report in session.salvage_reports:
            if not salvage_report.clean:
                print(salvage_report.render_text(), end="", file=sys.stderr)
        if opts.lint or opts.expect:
            if exe is None:
                flag = "--expect" if opts.expect else "--lint"
                raise ReproError(f"{flag} needs a VM executable image")
            report = session.lint(
                [data], ["<summed gmon>"], flow=opts.expect
            )
            if len(report):
                print(report.render_text(), end="", file=sys.stderr)
        if opts.sum_file:
            write_gmon(data, opts.sum_file)
            print(
                f"summed {len(session.paths)} profile(s) into {opts.sum_file}"
            )
            return 0
        deleted = []
        for spec in opts.delete_arcs:
            if "/" not in spec:
                raise ReproError(f"-k wants FROM/TO, got {spec!r}")
            frm, to = spec.split("/", 1)
            deleted.append((frm, to))
        static_pairs: list[tuple[str, str]] = []
        if opts.static:
            if exe is None:
                raise ReproError("--static needs a VM executable image")
            static_pairs = sorted(static_call_graph(exe))
        trace = PipelineTrace() if (opts.timings or opts.trace) else None
        profile = session.analyze(
            data,
            AnalysisOptions(
                static_arcs=static_pairs,
                deleted_arcs=deleted,
                auto_break_cycles=opts.break_cycles is not None,
                max_removed_arcs=opts.break_cycles or 10,
                excluded=opts.exclude,
            ),
            trace=trace,
        )
        if trace is not None:
            if opts.timings:
                print(trace.render_text(), end="", file=sys.stderr)
            if opts.trace:
                with open(opts.trace, "w", encoding="utf-8") as f:
                    f.write(trace.render_json())
        only = None
        if opts.focus:
            only = reachable_from(profile.graph, opts.focus)
            only |= {
                c.name
                for c in profile.numbered.cycles
                if set(c.members) & only
            }
        out = []
        if not opts.flat_only:
            out.append(
                format_graph_profile(
                    profile, min_percent=opts.min_percent, only=only
                )
            )
            if opts.explain:
                from repro.report.explain import GRAPH_BLURB

                out.append(GRAPH_BLURB)
        confidence = None
        if opts.expect:
            from repro.check import sampling_confidence

            confidence = sampling_confidence(exe, data)
        if not opts.graph_only:
            out.append(
                format_flat_profile(
                    profile,
                    show_never_called=opts.zero,
                    min_percent=opts.min_percent,
                    confidence=confidence,
                )
            )
            if opts.explain:
                from repro.report.explain import FLAT_BLURB

                out.append(FLAT_BLURB)
        if opts.coverage:
            from repro.core.coverage import coverage, format_coverage

            out.append(format_coverage(coverage(profile)))
        print("\n".join(out), end="")
        if opts.dot:
            with open(opts.dot, "w", encoding="utf-8") as f:
                f.write(to_dot(profile, min_percent=opts.min_percent))
            print(f"\ngraph written to {opts.dot}")
        if opts.html:
            from repro.report.html import to_html

            with open(opts.html, "w", encoding="utf-8") as f:
                f.write(to_html(profile, title=opts.image,
                                min_percent=opts.min_percent))
            print(f"\nhtml report written to {opts.html}")
        if opts.json:
            from repro.core.export import save_profile_json

            save_profile_json(profile, opts.json)
            print(f"\njson profile written to {opts.json}")
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-gprof: {exc}", file=sys.stderr)
        return 1
    finally:
        kernels.set_default_backend(None)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
