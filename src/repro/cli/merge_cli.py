"""The merge command: sum a fleet of profile data files into one.

Usage::

    repro-merge [options] INPUT [INPUT ...]

Each ``INPUT`` is a gmon file, a glob pattern (quoted, so the shell
does not expand it first — though pre-expanded arguments work too), or
a directory (every non-hidden file directly inside it, sorted).  The
inputs are summed with the :mod:`repro.fleet` tree-reduction driver
and written as ``gmon.sum`` (or ``-o FILE``) — the multi-run
accumulation of §3 of the paper, at fleet scale.

Options:

* ``-o FILE`` — output path (default ``gmon.sum``);
* ``--jobs N`` — worker processes (default: one per CPU);
* ``--salvage`` — read inputs with the salvaging parser; corrupt
  files contribute their recovered prefix and the merged data carries
  their degradation warnings;
* ``--skip-incompatible`` — drop inputs whose histogram layout does
  not match the fleet's (default: abort naming the first mismatch);
* ``--stats`` — print a merge summary table to stderr, including the
  kernel backend and the fleet-wide parse vs fold wall-time split;
* ``--kernels BACKEND`` — select the bulk-arithmetic backend
  (``auto``/``python``/``array``/``numpy``), overriding the
  ``REPRO_KERNELS`` environment variable;
* ``-q`` — print nothing but errors.

The output is deterministic: for the same inputs in the same order,
any ``--jobs`` value produces a byte-identical file.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import kernels
from repro.errors import ReproError
from repro.gmon import write_gmon
from repro.pipeline import ProfileSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-merge",
        description="sum many profile data files into one gmon.sum",
    )
    parser.add_argument(
        "inputs", nargs="+", metavar="INPUT",
        help="gmon file, glob pattern, or directory of gmon files",
    )
    parser.add_argument(
        "-o", "--output", default="gmon.sum", metavar="FILE",
        help="where to write the summed profile (default: gmon.sum)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the tree reduction (default: CPUs)",
    )
    parser.add_argument(
        "--salvage", action="store_true",
        help="recover corrupt/truncated inputs instead of aborting; "
             "their warnings are carried into the merged data",
    )
    parser.add_argument(
        "--skip-incompatible", action="store_true",
        help="skip inputs with a mismatched histogram layout instead "
             "of aborting on the first one",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a merge summary (with the parse vs fold wall-time "
             "split and the kernel backend) to stderr",
    )
    parser.add_argument(
        "--kernels", metavar="BACKEND", default=None,
        help="kernel backend for the bulk arithmetic (auto, python, "
             "array, numpy); overrides $REPRO_KERNELS",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="print nothing but errors",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    if opts.jobs is not None and opts.jobs < 1:
        print("repro-merge: --jobs must be at least 1", file=sys.stderr)
        return 2
    merge_stats: dict | None = {} if opts.stats else None
    try:
        if opts.kernels is not None:
            kernels.set_default_backend(opts.kernels)
        session = ProfileSession(None)
        data = session.load(
            opts.inputs,
            jobs=opts.jobs,
            salvage=opts.salvage,
            on_incompatible="skip" if opts.skip_incompatible else "error",
            per_file_reports=False,
            stats_out=merge_stats,
        )
        write_gmon(data, opts.output)
    except (ReproError, OSError) as exc:
        print(f"repro-merge: {exc}", file=sys.stderr)
        return 1
    finally:
        kernels.set_default_backend(None)
    if data.warnings and not opts.quiet:
        for w in data.warnings:
            print(f"repro-merge: warning: {w}", file=sys.stderr)
    skipped = sum(1 for w in data.warnings if ": skipped (layout" in w)
    merged = len(session.paths) - skipped
    if opts.stats:
        print(
            f"repro-merge: {merged} input(s) merged, {skipped} skipped, "
            f"{data.runs} run(s), {data.total_ticks} tick(s), "
            f"{len(data.arcs)} distinct arc(s)",
            file=sys.stderr,
        )
        if merge_stats:
            parse_s = merge_stats.get("parse_seconds", 0.0)
            fold_s = merge_stats.get("fold_seconds", 0.0)
            nbytes = merge_stats.get("bytes", 0)
            mib_s = (
                f"{nbytes / parse_s / (1 << 20):.1f} MiB/s"
                if parse_s > 0 else "n/a"
            )
            print(
                f"repro-merge: kernel backend "
                f"{merge_stats.get('kernel_backend', '?')}: "
                f"parse {parse_s * 1000:.1f} ms ({mib_s}), "
                f"fold {fold_s * 1000:.1f} ms over "
                f"{merge_stats.get('inputs', 0)} wire input(s)",
                file=sys.stderr,
            )
    if not opts.quiet:
        print(f"summed {merged} profile(s) into {opts.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
