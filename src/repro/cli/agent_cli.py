"""The repro-agent command: upload profiles to a repro-serve endpoint.

Usage::

    repro-agent --server HOST:PORT --tenant NAME GMON [GMON ...]

Each ``GMON`` file is uploaded with the full retry discipline of
:class:`repro.serve.AgentClient`: per-request timeouts, capped
exponential backoff with deterministic seeded jitter, and a
content-digest idempotency key — so re-running the same command after
a network blip or a server crash re-uploads nothing the server already
folded.

Options:

* ``--server HOST:PORT`` — the ingest endpoint (required);
* ``--tenant NAME`` — the tenant to file uploads under (required);
* ``--timeout SECONDS`` — per-request timeout (default 10);
* ``--retries N`` — retry attempts after the first try (default 5);
* ``--backoff SECONDS`` — base backoff delay, doubled per attempt and
  capped at ``--backoff-cap`` (defaults 0.1 / 5.0);
* ``--seed N`` — jitter seed (default 0; same seed, same schedule);
* ``--no-dedup`` — omit the idempotency key (each retry may fold again);
* ``-q`` — print nothing but errors.

Exit status: 0 when every file is acknowledged, 1 when any upload
fails for good, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.serve.agent import AgentClient, AgentError, RetryPolicy


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-agent",
        description="retrying profile uploader for repro-serve",
    )
    parser.add_argument("inputs", nargs="+", metavar="GMON",
                        help="profile data file(s) to upload")
    parser.add_argument("--server", required=True, metavar="HOST:PORT",
                        help="ingest endpoint")
    parser.add_argument("--tenant", required=True,
                        help="tenant name to file uploads under")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-request timeout in seconds")
    parser.add_argument("--retries", type=int, default=5,
                        help="retry attempts after the first try")
    parser.add_argument("--backoff", type=float, default=0.1,
                        help="base backoff delay in seconds")
    parser.add_argument("--backoff-cap", type=float, default=5.0,
                        help="largest backoff delay in seconds")
    parser.add_argument("--seed", type=int, default=0,
                        help="jitter seed (deterministic schedule)")
    parser.add_argument("--no-dedup", action="store_true",
                        help="omit the idempotency key")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print nothing but errors")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    host, sep, port_text = opts.server.rpartition(":")
    if not sep or not port_text.isdigit():
        print(f"repro-agent: --server must be HOST:PORT, got {opts.server!r}",
              file=sys.stderr)
        return 2
    if opts.retries < 0:
        print("repro-agent: --retries must not be negative", file=sys.stderr)
        return 2
    client = AgentClient(
        host, int(port_text),
        timeout=opts.timeout,
        policy=RetryPolicy(
            retries=opts.retries,
            base_delay=opts.backoff,
            max_delay=opts.backoff_cap,
            seed=opts.seed,
        ),
    )
    failures = 0
    for path in opts.inputs:
        try:
            with open(path, "rb") as f:
                blob = f.read()
            result = client.upload(
                opts.tenant, blob, key="" if opts.no_dedup else None
            )
        except AgentError as exc:
            print(f"repro-agent: {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        except OSError as exc:
            print(f"repro-agent: {path}: {exc}", file=sys.stderr)
            failures += 1
            continue
        if not opts.quiet:
            extra = " (salvaged)" if result.salvaged else ""
            retried = (f" after {result.attempts} attempts"
                       if result.attempts > 1 else "")
            print(f"{path}: {result.status} as seq {result.seq}"
                  f"{extra}{retried}")
            for w in result.warnings:
                print(f"repro-agent: warning: {w}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
