"""Command-line tools: repro-gprof, repro-prof, repro-kgmon, repro-merge."""
