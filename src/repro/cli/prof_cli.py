"""The prof command: the flat-only baseline profiler's CLI.

Usage::

    repro-prof IMAGE GMON [GMON ...]

Prints the classic prof table (self time, call counts, ms/call) from
the same image and profile data files repro-gprof consumes — handy for
reproducing the paper's motivation side by side.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baseline import format_prof, prof_analyze
from repro.errors import ReproError
from repro.pipeline import ProfileSession


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro-prof", description="flat execution profiler (baseline)"
    )
    parser.add_argument("image", help="executable image or symbol table (JSON)")
    parser.add_argument("gmon", nargs="+", help="profile data file(s); summed")
    opts = parser.parse_args(argv)
    try:
        session = ProfileSession.from_image(opts.image)
        data = session.load(opts.gmon)
        print(format_prof(prof_analyze(data, session.symbols)), end="")
        return 0
    except (ReproError, OSError, json.JSONDecodeError) as exc:
        print(f"repro-prof: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
