"""The repro-serve command: the continuous-profiling ingest daemon.

Usage::

    repro-serve --root DIR [options]

Boots the :mod:`repro.serve` service: recovers every tenant found under
``DIR`` from its checkpoint and journal, then listens for profile
uploads (``POST /v1/profiles/{tenant}``) and merged-view queries
(``GET /v1/profiles/{tenant}/{sum,flat,graph}``).  ``kill -9`` is a
supported shutdown method — restart with the same ``--root`` and the
service resumes from the last fsync'd acknowledgement.

Options:

* ``--root DIR`` — state directory: journals, checkpoints, quarantine
  (required; created if missing);
* ``--host H`` / ``--port P`` — bind address (default 127.0.0.1:8947;
  port 0 picks a free port, announced on stdout);
* ``--image VMEXE`` — program image for the ``/flat`` and ``/graph``
  report endpoints (without it only ``/sum`` works);
* ``--shards N`` — ingest worker shards (default 4);
* ``--queue-depth N`` — per-tenant inflight uploads before 429
  (default 64);
* ``--max-body BYTES`` — largest accepted upload (default 8 MiB);
* ``--checkpoint-every N`` — journal records folded between checkpoint
  compactions (default 64);
* ``--retention SECONDS`` — window length kept for ``?window=`` queries
  (default 3600);
* ``--no-fsync`` — trade the durability guarantee for ingest speed
  (benchmarks only; acknowledged uploads may be lost on power failure);
* ``--announce FILE`` — atomically write ``host port`` to FILE once
  listening, for supervisors and test harnesses.

Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.errors import ReproError
from repro.resilience.atomic import atomic_write_bytes
from repro.serve import ReproServer, ServeConfig

DEFAULT_PORT = 8947


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="fault-tolerant continuous-profiling ingest service",
    )
    parser.add_argument(
        "--root", required=True,
        help="state directory (journals, checkpoints, quarantine)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port (default {DEFAULT_PORT}; 0 picks a free port)",
    )
    parser.add_argument(
        "--image", default=None,
        help="program image backing the /flat and /graph endpoints",
    )
    parser.add_argument("--shards", type=int, default=4,
                        help="ingest worker shards")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="per-tenant inflight uploads before 429")
    parser.add_argument("--max-body", type=int, default=8 << 20,
                        help="largest accepted upload body in bytes")
    parser.add_argument("--checkpoint-every", type=int, default=64,
                        help="journal records between checkpoint compactions")
    parser.add_argument("--retention", type=float, default=3600.0,
                        help="seconds of uploads kept for ?window= queries")
    parser.add_argument("--no-fsync", action="store_true",
                        help="skip fsync on journal appends (benchmarks only)")
    parser.add_argument(
        "--announce", default=None, metavar="FILE",
        help="write 'host port' to FILE once listening",
    )
    return parser


async def _serve(opts) -> int:
    config = ServeConfig(
        root=opts.root,
        host=opts.host,
        port=opts.port,
        image=opts.image,
        shards=opts.shards,
        queue_depth=opts.queue_depth,
        max_body=opts.max_body,
        checkpoint_every=opts.checkpoint_every,
        retention_seconds=opts.retention,
        fsync=not opts.no_fsync,
    )
    server = ReproServer(config)
    host, port = await server.start()
    print(f"repro-serve: listening on {host}:{port} (root {opts.root})",
          flush=True)
    if opts.announce:
        atomic_write_bytes(opts.announce, f"{host} {port}\n".encode("ascii"))
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, stop.set)
    try:
        await stop.wait()
    finally:
        print("repro-serve: shutting down (checkpointing tenants)",
              flush=True)
        await server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    if opts.shards < 1 or opts.queue_depth < 1 or opts.checkpoint_every < 1:
        print("repro-serve: --shards, --queue-depth and --checkpoint-every "
              "must be at least 1", file=sys.stderr)
        return 2
    try:
        return asyncio.run(_serve(opts))
    except (ReproError, OSError) as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
