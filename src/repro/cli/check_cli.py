"""The repro-check command: gprof-lint for executables and profiles.

Usage::

    repro-check TARGET [GMON ...] [options]

``TARGET`` is a canned program name (see ``repro-vm list``), a
``.vmexe`` image, an assembly file, or a ``.rl`` source file; canned
programs and sources are built with monitoring prologues unless
``--unprofiled`` is given.  With no GMON files the static battery runs
alone (CFG reachability, dead routines, instrumentation verification,
indirect-call warnings); each GMON file additionally gets the
profile-consistency checks and the static-vs-dynamic cross-checks.

Options:

* ``--flow`` — additionally run the dataflow battery (dominators,
  loops, abstract interpretation: GP601–GP605) and, for each GMON
  file, the static-vs-measured expectation checks (GP610–GP612);
* ``--json`` — emit the report as deterministic JSON instead of text;
* ``--strict`` — exit nonzero on warnings, not just errors (the CI
  self-lint gate runs with this);
* ``--salvage`` — read GMON files with the salvaging reader instead of
  the strict one: corrupt/truncated files are recovered rather than
  aborting the run, and everything dropped or repaired is reported as
  GP4xx diagnostics;
* ``--list-codes`` — print the diagnostic code registry and exit.

Exit status: 0 when clean (or warnings without ``--strict``), 1 when
findings demand attention, 2 on usage or I/O errors.
"""

from __future__ import annotations

import argparse
import sys

from repro.check import CODES
from repro.errors import ReproError
from repro.pipeline import ProfileSession


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="static analysis and profile-consistency linter",
    )
    parser.add_argument(
        "target", nargs="?",
        help="canned program name, .vmexe image, assembly or .rl source",
    )
    parser.add_argument(
        "gmon", nargs="*",
        help="profile data file(s) to validate against the image",
    )
    parser.add_argument(
        "--unprofiled", action="store_true",
        help="build canned programs / sources without MCOUNT prologues",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="also run the dataflow battery (GP601-GP605) and the "
             "static-vs-measured expectation checks (GP610-GP612)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the report as deterministic JSON",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    parser.add_argument(
        "--salvage", action="store_true",
        help="recover corrupt/truncated GMON files instead of aborting; "
             "drops and repairs become GP4xx diagnostics",
    )
    parser.add_argument(
        "--list-codes", action="store_true",
        help="print every diagnostic code with its severity and meaning",
    )
    return parser


def format_codes() -> str:
    """The ``--list-codes`` table."""
    lines = ["diagnostic codes:"]
    for code, (severity, summary) in sorted(CODES.items()):
        lines.append(f"  {code}  {severity.value:7s}  {summary}")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit status."""
    opts = build_parser().parse_args(argv)
    if opts.list_codes:
        print(format_codes(), end="")
        return 0
    if not opts.target:
        print("repro-check: a TARGET is required (or --list-codes)",
              file=sys.stderr)
        return 2
    try:
        from repro.cli.vm_cli import _load_program

        exe = _load_program(opts.target, profile=not opts.unprofiled)
        session = ProfileSession.from_executable(exe)
        profiles = session.read_each(opts.gmon, salvage=opts.salvage)
        report = session.lint(profiles, list(opts.gmon), flow=opts.flow)
    except (ReproError, OSError) as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2
    if opts.json:
        print(report.render_json(), end="")
    else:
        print(report.render_text(), end="")
    if report.errors or (opts.strict and len(report)):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
