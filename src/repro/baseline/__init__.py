"""The prof(1) baseline: the flat-only profiler gprof improved on."""

from repro.baseline.prof import ProfRow, format_prof, prof_analyze

__all__ = ["ProfRow", "format_prof", "prof_analyze"]
