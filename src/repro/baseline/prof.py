"""A reproduction of ``prof(1)``, the profiler gprof was built to beat.

Per the paper's introduction and [Unix]: prof combines the PC-sample
histogram with *per-routine* call counts (it has no arcs — its
monitoring routine keeps one counter per routine) "to produce a table
of each function listing the number of times it was called, the time
spent in it, and the average time per call".

Running it beside gprof on the same :class:`ProfileData` shows the
paper's motivating failure: "as we partitioned operations across
several functions ... the time for an operation spread across the
several functions; and as the functions became more useful, they were
used from many places, so it wasn't always clear why a function was
being called as many times as it was."  prof can answer neither
question; the T-PROFVSGPROF benchmark quantifies the difference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiledata import ProfileData
from repro.core.symbols import SymbolTable


@dataclass(frozen=True)
class ProfRow:
    """One row of the prof listing.

    Attributes:
        name: routine name.
        percent: share of total sampled time spent *in* the routine.
        seconds: self seconds (prof knows no descendant time).
        calls: times the routine was called (all callers summed — prof
            cannot tell them apart).
        ms_per_call: average milliseconds per call, the "average time"
            statistic prof reports.
    """

    name: str
    percent: float
    seconds: float
    calls: int | None
    ms_per_call: float | None


def prof_analyze(data: ProfileData, symbols: SymbolTable) -> list[ProfRow]:
    """Produce the prof table: self time + call counts, nothing more.

    Arc records are collapsed to per-callee totals — exactly the
    information prof's simpler monitoring routine would have gathered —
    and the histogram is apportioned identically to gprof's, so any
    difference between the two tools' outputs is purely the call graph
    treatment, not the time basis.
    """
    self_times = data.histogram.assign_samples(symbols)
    calls: dict[str, int] = {}
    for arc in data.arcs:
        callee = symbols.find(arc.self_pc)
        if callee is not None:
            calls[callee.name] = calls.get(callee.name, 0) + arc.count
    total = sum(self_times.values())
    rows = []
    for name in set(self_times) | set(calls):
        seconds = self_times.get(name, 0.0)
        ncalls = calls.get(name)
        rows.append(
            ProfRow(
                name=name,
                percent=100.0 * seconds / total if total > 0 else 0.0,
                seconds=seconds,
                calls=ncalls,
                ms_per_call=(
                    1000.0 * seconds / ncalls if ncalls else None
                ),
            )
        )
    rows.sort(key=lambda r: (-r.seconds, -(r.calls or 0), r.name))
    return rows


def format_prof(rows: list[ProfRow]) -> str:
    """Render the classic prof table."""
    lines = [
        " %time   seconds    #call  ms/call  name",
    ]
    for r in rows:
        calls = str(r.calls) if r.calls is not None else ""
        ms = f"{r.ms_per_call:8.2f}" if r.ms_per_call is not None else " " * 8
        lines.append(
            f"{r.percent:6.1f} {r.seconds:9.2f} {calls:>8} {ms}  {r.name}"
        )
    return "\n".join(lines) + "\n"
