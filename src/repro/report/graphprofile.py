"""The call graph profile listing (§5.2, Figure 4).

Each major entry is "a window into the call graph": the routine's parent
lines above, its primary line in the middle, its child lines below.  The
primary line shows the index, the percentage of total time, self and
descendant seconds, and the ``called(+self)`` counts; parent and child
lines show propagated shares and ``called/total`` fractions.  Cycles
appear "as though [they] were a single routine", with their members
listed as part of the entry; cycle members are annotated
``<cycle N>`` wherever they appear.  "Finally each name is followed by
an index that shows where on the listing to find the entry for that
routine" — the notation that made the output navigable in the visual
editors of the time.
"""

from __future__ import annotations

from repro.core.analysis import GraphEntry, Profile, RelativeLine
from repro.report import fields

_RULE = "-" * 72

_HEADER = (
    "                                  called/total       parents\n"
    "index  %time    self descendents  called+self    name           index\n"
    "                                  called/total       children"
)


def format_graph_profile(
    profile: Profile,
    min_percent: float = 0.0,
    only: set[str] | None = None,
) -> str:
    """Render the call graph profile as a fixed-width text listing.

    Arguments:
        profile: an analysis result.
        min_percent: hide entries whose total-time share is below this
            percentage (hot-function filtering; percentages remain
            relative to the whole program).
        only: when given, show only entries for these routine/cycle
            names (subgraph filtering — combine with
            :mod:`repro.core.filters` to compute the set).

    Returns the listing text, ending with a newline.
    """
    lines = [
        "call graph profile:",
        "",
        f"total: {fields.seconds(profile.total_seconds)} seconds",
        "",
        *fields.degradation_banner(profile.warnings),
        _HEADER,
        "",
    ]
    shown = 0
    for entry in profile.graph_entries:
        if entry.percent < min_percent:
            continue
        if only is not None and entry.name not in only:
            continue
        shown += 1
        lines.extend(_format_entry(profile, entry))
        lines.append(_RULE)
    if profile.removed_arcs:
        lines.append("")
        lines.append("arcs removed from the analysis (traversal counts were lost):")
        for arc in profile.removed_arcs:
            lines.append(f"    {arc.caller} -> {arc.callee}  ({arc.count} calls)")
    if not shown:
        lines.append("(no entries above threshold)")
    return "\n".join(lines) + "\n"


def format_entry(profile: Profile, name: str) -> str:
    """Render a single routine's (or ``<cycle N>``'s) entry."""
    entry = profile.entry(name)
    if entry is None:
        return f"(no entry for {name})\n"
    return "\n".join(_format_entry(profile, entry)) + "\n"


def _format_entry(profile: Profile, entry: GraphEntry) -> list[str]:
    """The block of lines for one major entry."""
    out: list[str] = []
    for parent in entry.parents:
        out.append(_relative_line(profile, parent))
    out.append(_primary_line(profile, entry))
    for child in entry.children:
        out.append(_relative_line(profile, child, is_child=True))
    if entry.members:
        out.append(" " * 34 + "cycle members:")
        for member in entry.members:
            out.append(_member_line(profile, member))
    return out


def _index_ref(profile: Profile, name: str | None) -> str:
    """The ``[n]`` cross-reference for a name ('' when unknown)."""
    if name is None:
        return ""
    idx = profile.index_of(name)
    return f"[{idx}]" if idx else ""


def _primary_line(profile: Profile, entry: GraphEntry) -> str:
    """``[2]  41.5  0.50  3.00  10+4  EXAMPLE  [2]``"""
    index = f"[{entry.index}]"
    called = fields.calls_with_self(entry.ncalls, entry.self_calls)
    name = entry.display_name
    return (
        f"{index:<6} {entry.percent:5.1f} "
        f"{entry.self_seconds:7.2f} {entry.child_seconds:11.2f} "
        f"{called:>11}     {name} {_index_ref(profile, entry.name)}"
    )


def _relative_line(
    profile: Profile, line: RelativeLine, is_child: bool = False
) -> str:
    """A parent or child line: shares, called/total, annotated name."""
    if line.name is None:
        return " " * 49 + "    <spontaneous>"
    called = fields.calls_fraction(line.count, line.total)
    if line.intra_cycle:
        # Calls among cycle members: listed, but no time propagates and
        # the 'total' denominator does not apply.
        called = str(line.count)
    return (
        f"{'':6} {'':5} "
        f"{line.self_share:7.2f} {line.child_share:11.2f} "
        f"{called:>11}         {line.display_name} "
        f"{_index_ref(profile, line.name)}"
    )


def _member_line(profile: Profile, line: RelativeLine) -> str:
    """One cycle-member line: member self/child time and call count."""
    return (
        f"{'':6} {'':5} "
        f"{line.self_share:7.2f} {line.child_share:11.2f} "
        f"{line.count:>11}         {line.name} "
        f"{_index_ref(profile, line.name)}"
    )
