"""Column formatting helpers shared by the profile listings.

The 1982 output devices were character printers; gprof's listings are
fixed-width columns.  These helpers render seconds, percentages, and the
paper's call-count notations (``called/total``, ``called+self``).
"""

from __future__ import annotations


def seconds(value: float) -> str:
    """Seconds with two decimals, as every figure in the paper shows."""
    return f"{value:.2f}"


def percent(value: float) -> str:
    """A percentage with one decimal (``41.5``)."""
    return f"{value:.1f}"


def calls_fraction(count: int, total: int) -> str:
    """The ``called/total`` notation of parent and child lines."""
    return f"{count}/{total}"


def calls_with_self(count: int, self_calls: int) -> str:
    """The ``called+self`` notation of a primary line (``10+4``).

    The self part is omitted when there is no recursion, as gprof does.
    """
    if self_calls:
        return f"{count}+{self_calls}"
    return str(count)


def degradation_banner(warnings: list[str]) -> list[str]:
    """Listing lines flagging degraded input, or [] when pristine.

    Both listings print these right under the total, so a profile built
    from salvaged or partial data announces itself before any numbers.
    """
    if not warnings:
        return []
    lines = [f"*** degraded input: {len(warnings)} warning(s) ***"]
    lines += [f"***   {w}" for w in warnings]
    lines.append("")
    return lines


def rpad(text: str, width: int) -> str:
    """Left-justify in ``width`` (names column)."""
    return text.ljust(width)


def lpad(text: str, width: int) -> str:
    """Right-justify in ``width`` (numeric columns)."""
    return text.rjust(width)
