"""Field-by-field explanations of the listings (gprof's famous blurb).

The real tool prints a long prose explanation of every column after
each listing (suppressed by ``-b``), because §5.2's dense layout is
"a rather dense display of the information ... after a while we got
used to it".  These texts paraphrase §5 of the paper; ``repro-gprof
--explain`` appends them.
"""

FLAT_BLURB = """\
understanding the flat profile (§5.1):

  %time      the percentage of the program's total running time spent
             in this routine itself (not its descendants).
  cumulative the running sum of self seconds down the listing.
  self       seconds accounted to this routine alone, from the
             program-counter sampling histogram.
  calls      the number of times the routine was invoked (all callers
             and self-recursive calls summed); blank when the routine
             was sampled but carries no monitoring prologue.
  self/total ms/call: average milliseconds per call, for the routine
             itself and with its descendants.

  the self seconds column sums to the total execution time.  routines
  never called during this execution are listed separately, "to verify
  that nothing important is omitted".
"""

GRAPH_BLURB = """\
understanding the call graph profile (§5.2):

  each entry is one routine (its primary line, with the [index]),
  shown with its parents above and its children below.

  primary line:
    %time        the share of total time in this routine AND its
                 descendants.
    self         seconds in the routine itself.
    descendants  seconds propagated to it from routines it calls.
    called       external calls, then '+n' self-recursive calls
                 (e.g. 10+4).

  parent lines (above): the portion of THIS routine's self and
  descendant time propagated to that parent, and 'calls/total' — how
  many of the total external calls that parent made.  '<spontaneous>'
  marks callers the monitor could not identify.

  child lines (below): the self and descendant time that child passed
  up through this arc, and 'calls/total' of the child's external
  calls.  a zero count (0/n) marks an arc found only by crawling the
  executable: possible, never traversed, never charged.

  cycles: mutually recursive routines are collapsed; the cycle as a
  whole gets an entry, members are annotated '<cycle n>', and calls
  among members are listed but propagate no time.

  every name is followed by the [index] locating its own entry.
"""
