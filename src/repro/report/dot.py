"""DOT (Graphviz) export of an analyzed profile.

The 1982 authors were "limited by the output devices of the time to
character-based formatting"; a modern release would of course also emit
the graph itself.  Nodes are routines (cycles drawn as clusters), arcs
carry counts and propagated time, and node labels show self/total
seconds and the percentage of program time.
"""

from __future__ import annotations

from repro.core.analysis import Profile


def _quote(name: str) -> str:
    return '"' + name.replace('"', '\\"') + '"'


def to_dot(
    profile: Profile,
    min_percent: float = 0.0,
    include_counts: bool = True,
) -> str:
    """Render the profile's call graph as DOT text.

    Arguments:
        profile: an analysis result.
        min_percent: drop routines below this share of total time
            (their arcs disappear with them).
        include_counts: annotate arcs with traversal counts.
    """
    keep = {
        e.name
        for e in profile.graph_entries
        if not e.is_cycle and e.percent >= min_percent
    }
    lines = [
        "digraph profile {",
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace"];',
    ]
    # Cycle clusters first.
    for cyc in profile.numbered.cycles:
        members = [m for m in cyc.members if m in keep]
        if not members:
            continue
        lines.append(f"  subgraph cluster_cycle{cyc.number} {{")
        lines.append(f'    label="cycle {cyc.number}"; color=red;')
        for m in members:
            lines.append(f"    {_quote(m)};")
        lines.append("  }")
    for entry in profile.graph_entries:
        if entry.is_cycle or entry.name not in keep:
            continue
        label = (
            f"{entry.name}\\n{entry.percent:.1f}%"
            f"\\nself {entry.self_seconds:.2f}s"
            f"  total {entry.total_seconds:.2f}s"
        )
        lines.append(f'  {_quote(entry.name)} [label="{label}"];')
    for arc in profile.graph.arcs():
        if arc.caller not in keep or arc.callee not in keep:
            continue
        attrs = []
        if include_counts:
            attrs.append(f'label="{arc.count}"')
        if arc.static:
            attrs.append("style=dashed")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(arc.caller)} -> {_quote(arc.callee)}{attr_text};")
    lines.append("}")
    return "\n".join(lines) + "\n"
