"""Presentation of analyzed profiles: flat listing, call-graph listing,
and a DOT export for modern graph viewers."""

from repro.report.flat import format_flat_profile
from repro.report.graphprofile import format_entry, format_graph_profile

__all__ = ["format_flat_profile", "format_graph_profile", "format_entry"]
