"""Annotated disassembly: per-instruction sample counts.

The companion feature to the listings: since the retrospective's
authors could afford "a histogram array ... four times the size of the
text segment, getting a full 32-bit count for each possible program
counter value", the histogram resolves time to *individual
instructions*.  This module renders the executable's disassembly with
each instruction's tick count and a proportional bar — the moral
equivalent of ``gprof -A``'s annotated source, at the only "source"
level an executable image has.
"""

from __future__ import annotations

from repro.core.histogram import Histogram
from repro.machine.executable import Executable
from repro.machine.isa import INSTRUCTION_SIZE

#: Width of the proportional bar column.
BAR_WIDTH = 24


def format_annotated_disassembly(
    exe: Executable,
    histogram: Histogram,
    min_function_ticks: float = 0.0,
) -> str:
    """Render the text segment with per-instruction sample counts.

    Arguments:
        exe: the executable image.
        histogram: the PC-sample histogram of a run of that image.
        min_function_ticks: skip routines that collected fewer ticks
            (their bodies are noise at this resolution).

    Each routine gets a header with its total ticks and share of the
    program; each instruction line shows address, tick count, a bar
    scaled to the hottest instruction in the routine, and the
    disassembled instruction.
    """
    total = histogram.total_ticks or 1
    lines: list[str] = [
        f"annotated disassembly of {exe.name} "
        f"({histogram.total_ticks} samples):",
    ]
    for fn in exe.functions:
        fn_ticks = histogram.ticks_in_range(fn.entry, fn.end)
        if fn_ticks < min_function_ticks:
            continue
        lines.append("")
        lines.append(
            f"{fn.name}:  {fn_ticks:.0f} ticks "
            f"({100.0 * fn_ticks / total:.1f}% of program)"
        )
        per_instruction = []
        for addr in range(fn.entry, fn.end, INSTRUCTION_SIZE):
            ticks = histogram.ticks_in_range(addr, addr + INSTRUCTION_SIZE)
            per_instruction.append((addr, ticks))
        hottest = max((t for _, t in per_instruction), default=0.0) or 1.0
        for addr, ticks in per_instruction:
            bar = "#" * round(BAR_WIDTH * ticks / hottest)
            lines.append(
                f"  {addr:#06x} {ticks:8.0f} |{bar:<{BAR_WIDTH}}| "
                f"{exe.fetch(addr)}"
            )
    return "\n".join(lines) + "\n"


def hottest_instructions(
    exe: Executable,
    histogram: Histogram,
    top: int = 10,
) -> list[tuple[int, str, str, float]]:
    """The ``top`` hottest instructions: (address, routine, text, ticks).

    The programmatic companion to the listing, for tooling that wants
    the instruction-level hot spots directly.
    """
    rows: list[tuple[int, str, str, float]] = []
    for fn in exe.functions:
        for addr in range(fn.entry, fn.end, INSTRUCTION_SIZE):
            ticks = histogram.ticks_in_range(addr, addr + INSTRUCTION_SIZE)
            if ticks > 0:
                rows.append((addr, fn.name, str(exe.fetch(addr)), ticks))
    rows.sort(key=lambda r: (-r[3], r[0]))
    return rows[:top]
