"""Self-contained HTML rendering of the call graph profile.

The retrospective: "We did add notations to help us navigate the
output in the visual editors becoming popular at that time."  The
``[n]`` indices were hyperlinks before hyperlinks existed; this module
renders the profile with real ones — every index reference is an
anchor link, every parent/child name jumps to its entry — in a single
dependency-free HTML file.

The numeric content is exactly the text listing's; only navigation is
added.  (Styling is deliberately austere: it is a profile, not a
dashboard.)
"""

from __future__ import annotations

import html

from repro.core.analysis import GraphEntry, Profile, RelativeLine
from repro.report import fields


def _esc(text: str) -> str:
    return html.escape(text, quote=True)


def _link(profile: Profile, name: str | None, label: str | None = None) -> str:
    """An anchor link to a routine's entry, or plain text if unknown."""
    if name is None:
        return "&lt;spontaneous&gt;"
    idx = profile.index_of(name)
    text = _esc(label if label is not None else name)
    if idx is None:
        return text
    return f'<a href="#entry-{idx}">{text}</a> <span class="idx">[{idx}]</span>'


_STYLE = """
body { font-family: monospace; margin: 2em; }
table.entry { border-collapse: collapse; margin-bottom: 0.4em; }
table.entry td { padding: 0.1em 0.8em; text-align: right; white-space: nowrap; }
table.entry td.name { text-align: left; }
tr.primary { background: #eee; font-weight: bold; }
tr.member { color: #555; }
.idx { color: #888; }
hr { border: none; border-top: 1px solid #ccc; }
h2 { font-size: 1em; }
a { text-decoration: none; }
a:hover { text-decoration: underline; }
"""


def to_html(profile: Profile, title: str = "call graph profile", min_percent: float = 0.0) -> str:
    """Render the call-graph profile as one self-contained HTML page."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p>total: {fields.seconds(profile.total_seconds)} seconds</p>",
        _index_table(profile, min_percent),
    ]
    for entry in profile.graph_entries:
        if entry.percent < min_percent:
            continue
        parts.append(_entry_table(profile, entry))
        parts.append("<hr>")
    if profile.never_called:
        parts.append("<h2>routines never called</h2><ul>")
        parts.extend(f"<li>{_esc(n)}</li>" for n in profile.never_called)
        parts.append("</ul>")
    if profile.removed_arcs:
        parts.append("<h2>arcs removed from the analysis</h2><ul>")
        parts.extend(
            f"<li>{_esc(r.caller)} &rarr; {_esc(r.callee)} ({r.count} calls)</li>"
            for r in profile.removed_arcs
        )
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


def _index_table(profile: Profile, min_percent: float) -> str:
    rows = ["<h2>index</h2><table class='entry'>"]
    rows.append(
        "<tr><td>index</td><td>%time</td><td>self</td>"
        "<td>descendants</td><td class='name'>name</td></tr>"
    )
    for entry in profile.graph_entries:
        if entry.percent < min_percent:
            continue
        rows.append(
            f"<tr><td>[{entry.index}]</td>"
            f"<td>{entry.percent:.1f}</td>"
            f"<td>{entry.self_seconds:.2f}</td>"
            f"<td>{entry.child_seconds:.2f}</td>"
            f"<td class='name'>{_link(profile, entry.name, entry.display_name)}</td></tr>"
        )
    rows.append("</table>")
    return "\n".join(rows)


def _relative_row(profile: Profile, line: RelativeLine, cls: str = "") -> str:
    called = (
        str(line.count)
        if line.intra_cycle
        else fields.calls_fraction(line.count, line.total)
    )
    return (
        f"<tr class='{cls}'><td></td><td></td>"
        f"<td>{line.self_share:.2f}</td><td>{line.child_share:.2f}</td>"
        f"<td>{called}</td>"
        f"<td class='name'>{_link(profile, line.name, line.display_name)}</td></tr>"
    )


def _entry_table(profile: Profile, entry: GraphEntry) -> str:
    rows = [
        f"<table class='entry' id='entry-{entry.index}'>",
        "<tr><td>index</td><td>%time</td><td>self</td>"
        "<td>descendants</td><td>called</td><td class='name'>name</td></tr>",
    ]
    for parent in entry.parents:
        rows.append(_relative_row(profile, parent))
    called = fields.calls_with_self(entry.ncalls, entry.self_calls)
    rows.append(
        f"<tr class='primary'><td>[{entry.index}]</td>"
        f"<td>{entry.percent:.1f}</td>"
        f"<td>{entry.self_seconds:.2f}</td>"
        f"<td>{entry.child_seconds:.2f}</td>"
        f"<td>{called}</td>"
        f"<td class='name'>{_esc(entry.display_name)}</td></tr>"
    )
    for child in entry.children:
        rows.append(_relative_row(profile, child))
    for member in entry.members:
        rows.append(_relative_row(profile, member, cls="member"))
    rows.append("</table>")
    return "\n".join(rows)
