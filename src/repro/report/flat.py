"""The flat profile listing (§5.1).

"The flat profile consists of a list of all the routines that are called
during execution of the program, with the count of the number of times
they are called and the number of seconds of execution time for which
they are themselves accountable", in decreasing order of execution time;
plus, on request, "a list of the routines that are never called during
execution of the program".

The column layout follows the classic gprof output:

    %  cumulative   self              self     total
  time   seconds   seconds    calls  ms/call  ms/call  name
"""

from __future__ import annotations

from repro.core.analysis import Profile
from repro.report import fields

_HEADER = (
    "  %   cumulative   self              self     total\n"
    " time   seconds   seconds    calls  ms/call  ms/call  name"
)


def format_flat_profile(
    profile: Profile,
    show_never_called: bool = True,
    min_percent: float = 0.0,
    confidence: dict[str, float] | None = None,
) -> str:
    """Render the flat profile as a fixed-width text listing.

    Arguments:
        profile: an analysis result.
        show_never_called: append the never-called routine list (the
            paper's completeness check).
        min_percent: hide rows whose self-time share is below this
            percentage (the "show only hot functions" filter).
        confidence: per-routine expected sampling error in seconds (the
            §6 √samples bound, see
            :func:`repro.check.expect.sampling_confidence`); when
            given, each row gains a ``±`` annotation.  None (the
            default) keeps the classic listing byte-identical.

    Notice the §5.1 invariant: the ``self seconds`` column sums to the
    total execution time.
    """
    lines = [
        "flat profile:",
        "",
        f"total: {fields.seconds(profile.total_seconds)} seconds",
        "",
        *fields.degradation_banner(profile.warnings),
        _HEADER,
    ]
    cumulative = 0.0
    for row in profile.flat_entries:
        if row.percent < min_percent:
            continue
        cumulative += row.self_seconds
        calls = str(row.calls) if row.calls is not None else ""
        self_ms = (
            f"{row.self_ms_per_call:8.2f}" if row.self_ms_per_call is not None else " " * 8
        )
        total_ms = (
            f"{row.total_ms_per_call:8.2f}"
            if row.total_ms_per_call is not None
            else " " * 8
        )
        suffix = ""
        if confidence is not None:
            err = confidence.get(row.name, 0.0)
            suffix = f"  (±{err:.2f}s)"
            if err > 0.0 and row.self_seconds <= err:
                suffix += " <- below sampling noise"
        lines.append(
            f"{row.percent:5.1f} {cumulative:10.2f} {row.self_seconds:9.2f} "
            f"{calls:>8} {self_ms} {total_ms}  {row.name}{suffix}"
        )
    if show_never_called and profile.never_called:
        lines.append("")
        lines.append("routines never called:")
        for name in profile.never_called:
            lines.append(f"    {name}")
    return "\n".join(lines) + "\n"
