"""kgmon: the programmer's interface for live kernel profiling.

"Unlike user programs that could be run to completion, dump their
profiling data to a file, and exit, we had to be able to profile events
of interest in the kernel without taking the kernel down. ... The
programmer's interface allowed us to turn the profiler on and off,
extract the profiling data, and reset the data." (retrospective)

:class:`KernelSession` owns a running simulated kernel (the CPU is
executed in instruction slices, standing in for a kernel that keeps
serving users between control operations).  :class:`Kgmon` is the
control tool: ``on`` / ``off`` / ``extract`` / ``reset`` / ``status``,
all usable while the kernel keeps running.

:class:`SMPKernelSession` scales the scenario to N CPUs: each core
runs the kernel workload as its own process on an
:class:`~repro.machine.smp.SMPMachine`, profiling data lands in
per-CPU shards, and :class:`SMPKgmon` extracts/resets those shards
live — merged through the fleet algebra into one canonical profile
whose bytes are independent of CPU count and slice schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiledata import ProfileData
from repro.core.symbols import SymbolTable
from repro.errors import KernelError
from repro.machine.assembler import assemble
from repro.machine.executable import Executable
from repro.machine.fastcpu import FastCPU
from repro.machine.monitor import Monitor, MonitorConfig
from repro.kernel.build import build_kernel_source


class KernelSession:
    """A live simulated kernel with profiling machinery attached.

    Arguments:
        iterations: scheduling quanta the kernel main loop executes.
        cycles_per_tick: profiling clock granularity.
        profrate: nominal ticks/second for converting ticks to seconds.
        **build_kw: forwarded to
            :func:`repro.kernel.build.build_kernel_source`.
    """

    def __init__(
        self,
        iterations: int = 400,
        cycles_per_tick: int = 50,
        profrate: int = 100,
        device_interrupts: bool = True,
        irq_period: int = 900,
        **build_kw,
    ):
        source = build_kernel_source(iterations=iterations, **build_kw)
        self.executable: Executable = assemble(source, name="kernel", profile=True)
        self.monitor = Monitor(
            MonitorConfig(
                self.executable.low_pc,
                self.executable.high_pc,
                cycles_per_tick=cycles_per_tick,
                profrate=profrate,
            )
        )
        # Device interrupts arrive asynchronously: their handler's arcs
        # have no identifiable call site and show up as <spontaneous> —
        # the §3.1 "non-standard calling sequence" case, live.
        from repro.machine.cpu import InterruptSource

        interrupts = (
            [InterruptSource("irq_device", irq_period)]
            if device_interrupts
            else []
        )
        # The fast engine keeps kgmon's on/off/extract/reset semantics:
        # the interpreter consults the live monitor and arc table, so
        # control operations between slices behave exactly as with the
        # reference engine (the equivalence suite pins this).
        self.cpu = FastCPU(self.executable, self.monitor, interrupts=interrupts)

    # -- keeping the kernel running ------------------------------------------------

    def run_slice(self, instructions: int = 2000) -> bool:
        """Execute one time slice; returns True while the kernel lives."""
        if self.cpu.halted:
            return False
        self.cpu.run(max_instructions=instructions)
        return not self.cpu.halted

    def run_to_completion(self) -> None:
        """Let the kernel finish its workload."""
        self.cpu.run()

    @property
    def halted(self) -> bool:
        """Whether the kernel workload has finished."""
        return self.cpu.halted

    def symbol_table(self) -> SymbolTable:
        """The kernel's symbol table (for analyzing extracted data)."""
        return self.executable.symbol_table()


@dataclass
class KgmonStatus:
    """What ``kgmon status`` reports.

    Attributes:
        enabled: whether the profiler is currently gathering.
        ticks: PC samples accumulated since the last reset.
        arcs: distinct (call site, callee) pairs recorded.
        calls: total arc traversals recorded.
        kernel_cycles: the kernel's cycle clock (keeps advancing even
            with profiling off — the system never stops).
        halted: whether the kernel workload has finished.
    """

    enabled: bool
    ticks: int
    arcs: int
    calls: int
    kernel_cycles: int
    halted: bool


class Kgmon:
    """The kgmon control tool, bound to one kernel session."""

    def __init__(self, session: KernelSession):
        self.session = session

    def on(self) -> None:
        """Start (or resume) profiling the running kernel."""
        self.session.monitor.moncontrol(True)

    def off(self) -> None:
        """Stop profiling; the kernel keeps running at full speed."""
        self.session.monitor.moncontrol(False)

    def reset(self) -> None:
        """Zero the histogram and arc table without stopping anything."""
        self.session.monitor.reset()

    def extract(self, comment: str = "kgmon extract") -> ProfileData:
        """Pull out the profiling data gathered so far.

        The kernel is untouched: extraction copies the monitor state,
        which keeps accumulating unless :meth:`reset` is called.
        """
        if self.session.cpu.instructions_executed == 0:
            raise KernelError("kernel has not run yet; nothing to extract")
        return self.session.monitor.snapshot(comment)

    def checkpoint(
        self, path, comment: str = "kgmon checkpoint", injector=None
    ) -> ProfileData:
        """Flush the current data to ``path`` crash-safely, while running.

        A kernel cannot be re-run to recover a lost profile; the
        checkpoint is an atomic write (temp file + rename), so a machine
        going down mid-flush still leaves the previous complete snapshot
        at ``path``.  Returns the flushed data.  ``injector`` threads
        the fault-injection harness through the write (tests only).
        """
        from repro.gmon import write_gmon

        data = self.extract(comment)
        write_gmon(data, path, injector=injector)
        return data

    def status(self) -> KgmonStatus:
        """Report the monitor and kernel state."""
        mon = self.session.monitor
        return KgmonStatus(
            enabled=mon.enabled,
            ticks=mon.histogram.total_ticks,
            arcs=len(mon.arc_table),
            calls=sum(a.count for a in mon.arc_table.arcs()),
            kernel_cycles=self.session.cpu.cycles,
            halted=self.session.halted,
        )


# ------------------------------------------------------------------- SMP


class SMPKernelSession:
    """A live simulated kernel on an N-CPU machine.

    Each CPU executes the kernel workload as its own process (the
    shared-text, per-core-state shape of a real SMP kernel); profiling
    events are gathered into per-CPU shards without cross-CPU locking.

    Arguments:
        ncpus: simulated CPU count.
        iterations: scheduling quanta each core's main loop executes.
        cycles_per_tick, profrate: profiling clock configuration.
        policy, seed, quantum: slice scheduler configuration (the
            merged profile's bytes do not depend on them).
        engine: interpreter engine (``fast`` default).
        device_interrupts, irq_period: as for :class:`KernelSession`,
            delivered independently on each core's own clock.
        **build_kw: forwarded to
            :func:`repro.kernel.build.build_kernel_source`.
    """

    def __init__(
        self,
        ncpus: int = 2,
        iterations: int = 400,
        cycles_per_tick: int = 50,
        profrate: int = 100,
        policy: str = "rr",
        seed: int = 0,
        quantum: int = 2000,
        engine: str = "fast",
        device_interrupts: bool = True,
        irq_period: int = 900,
        **build_kw,
    ):
        from repro.machine.cpu import InterruptSource
        from repro.machine.smp import SMPMachine

        source = build_kernel_source(iterations=iterations, **build_kw)
        self.executable: Executable = assemble(source, name="kernel", profile=True)
        interrupts = (
            [InterruptSource("irq_device", irq_period)]
            if device_interrupts
            else []
        )
        self.machine = SMPMachine(
            self.executable,
            ncpus=ncpus,
            nprocs=ncpus,
            policy=policy,
            seed=seed,
            quantum=quantum,
            engine=engine,
            cycles_per_tick=cycles_per_tick,
            profrate=profrate,
            interrupts=interrupts,
        )

    def run_slice(self, rounds: int = 4) -> bool:
        """Execute scheduling rounds; returns True while any core lives."""
        return self.machine.run_rounds(rounds)

    def run_to_completion(self) -> None:
        """Let every core finish its workload."""
        self.machine.run()

    @property
    def halted(self) -> bool:
        """Whether every core's workload has finished."""
        return self.machine.halted

    def symbol_table(self) -> SymbolTable:
        """The kernel's symbol table (for analyzing extracted data)."""
        return self.executable.symbol_table()


class SMPKgmon:
    """The kgmon control tool for an N-CPU kernel session.

    The same verbs as :class:`Kgmon` — on/off/extract/reset/status —
    but extraction snapshots every CPU's shard and reduces them through
    the fleet merge algebra into one canonical profile.
    """

    def __init__(self, session: SMPKernelSession):
        self.session = session

    def on(self) -> None:
        """Start (or resume) profiling on every CPU."""
        self.session.machine.moncontrol(True)

    def off(self) -> None:
        """Stop profiling; the kernel keeps running at full speed."""
        self.session.machine.moncontrol(False)

    def reset(self) -> None:
        """Zero every CPU's shard without stopping anything."""
        self.session.machine.extract(reset=True)

    def extract_shards(
        self, comment: str = "", reset: bool = False
    ) -> list[ProfileData]:
        """Per-CPU shard snapshots, optionally clearing the shards."""
        return self.session.machine.extract(comment=comment, reset=reset)

    def extract(
        self, comment: str = "kgmon extract", reset: bool = False
    ) -> ProfileData:
        """The merged profile gathered so far (one canonical gmon).

        ``runs`` in the result is the process count, never the shard
        count, so extractions from machines of different widths stay
        byte-comparable.
        """
        machine = self.session.machine
        if all(p.cpu.instructions_executed == 0 for p in machine.procs):
            raise KernelError("kernel has not run yet; nothing to extract")
        from repro.machine.smp import reduce_shards

        parts = self.extract_shards(reset=reset)
        return reduce_shards(parts, comment=comment, runs=len(machine.procs))

    def checkpoint(
        self, path, comment: str = "kgmon checkpoint", injector=None
    ) -> ProfileData:
        """Crash-safely flush the merged profile to ``path`` while running."""
        from repro.gmon import write_gmon

        data = self.extract(comment)
        write_gmon(data, path, injector=injector)
        return data

    def status(self) -> KgmonStatus:
        """Aggregate monitor and machine state across all CPUs."""
        machine = self.session.machine
        enabled = any(
            p.monitor is not None and p.monitor.enabled for p in machine.procs
        )
        return KgmonStatus(
            enabled=enabled,
            ticks=machine.total_ticks(),
            arcs=sum(len(shard.arcs) for shard in machine.shards),
            calls=machine.total_calls(),
            kernel_cycles=machine.wall_cycles,
            halted=machine.halted,
        )
