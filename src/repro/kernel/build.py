"""The simulated Berkeley-style kernel, as a VM program.

The retrospective's next challenge after user programs was "to adapt
the profiler to profile the Berkeley Unix kernel on which we were
working".  This module generates a kernel-shaped VM program with the
subsystems whose interactions made that interesting:

* a **scheduler** (``schedule → pick_proc → context_switch``);
* a **syscall layer** dispatching reads, writes, sends, receives;
* a **filesystem** with a buffer cache and occasional disk I/O;
* a **networking stack** whose layers (``netisr → ip_input →
  tcp_input → tcp_output → ip_output → if_output``) are fused into one
  large cycle by two low-count arcs: the loopback path
  (``if_output → netisr``) and TCP's ACK transmission
  (``tcp_input → tcp_output``).  "Because of the interactions of the
  kernel's major subsystems, there were several large cycles in the
  profiles" — this is that situation, reproduced;
* a **clock interrupt** (``hardclock → timeout``).

The kernel runs a main loop of ``iterations`` scheduling quanta and can
be executed in instruction slices, so profiling can be controlled live
(see :mod:`repro.kernel.kgmon`) "without taking the kernel down".
"""

from __future__ import annotations

#: Routines belonging to the networking stack's big cycle.
NETWORK_CYCLE = (
    "netisr",
    "ip_input",
    "tcp_input",
    "tcp_output",
    "ip_output",
    "if_output",
)

#: The low-traversal-count arcs that close the cycle; removing them is
#: the retrospective's remedy.
CYCLE_CLOSING_ARCS = (
    ("if_output", "netisr"),    # loopback delivery
    ("tcp_input", "tcp_output"),  # ACK transmission
)


def build_kernel_source(
    iterations: int = 400,
    loopback_every: int = 5,
    ack_every: int = 7,
    disk_miss_every: int = 3,
) -> str:
    """Assembly source of the simulated kernel.

    Arguments:
        iterations: scheduling quanta executed by the main loop.
        loopback_every: every n-th packet leaving ``if_output`` is
            looped back into ``netisr`` (the rare cycle-closing arc).
        ack_every: every n-th segment entering ``tcp_input`` triggers an
            ACK through ``tcp_output`` (the other closing arc).
        disk_miss_every: every n-th buffer-cache lookup misses and goes
            to ``disk_read``.

    All ``*_every`` knobs must be at least 2: re-entrant packets carry
    sequence number 1, so a modulus of 1 would recurse forever — just
    like a loopback storm in a real stack.
    """
    if min(loopback_every, ack_every, disk_miss_every) < 2:
        raise ValueError("loopback/ack/disk knobs must be >= 2")
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    return f"""
; ---- simulated time-sharing kernel ----------------------------------
.func kernel_main
    PUSH {iterations}
    STORE 0
loop:
    LOAD 0
    CALL schedule
    LOAD 0
    CALL syscall
    LOAD 0
    PUSH 4
    MOD
    JNZ no_net
    LOAD 0
    CALL netisr
no_net:
    LOAD 0
    PUSH 10
    MOD
    JNZ no_clock
    CALL hardclock
no_clock:
    LOAD 0
    PUSH 1
    SUB
    STORE 0
    LOAD 0
    JNZ loop
    HALT
.end

; ---- scheduler -------------------------------------------------------
.func schedule
    STORE 0
    WORK 6
    LOAD 0
    CALL pick_proc
    CALL context_switch
    RET
.end

.func pick_proc
    STORE 0
    WORK 8
    RET
.end

.func context_switch
    WORK 10
    RET
.end

; ---- syscall dispatch -------------------------------------------------
.func syscall
    STORE 0
    WORK 3
    LOAD 0
    PUSH 4
    MOD
    STORE 1
    LOAD 1
    JZ do_read
    LOAD 1
    PUSH 1
    EQ
    JNZ do_write
    LOAD 1
    PUSH 2
    EQ
    JNZ do_send
    LOAD 0
    CALL sys_recv
    RET
do_read:
    LOAD 0
    CALL sys_read
    RET
do_write:
    LOAD 0
    CALL sys_write
    RET
do_send:
    LOAD 0
    CALL sys_send
    RET
.end

; ---- filesystem --------------------------------------------------------
.func sys_read
    STORE 0
    WORK 4
    LOAD 0
    CALL fs_lookup
    RET
.end

.func sys_write
    STORE 0
    WORK 4
    LOAD 0
    CALL fs_lookup
    LOAD 0
    CALL bufcache_put
    RET
.end

.func fs_lookup
    STORE 0
    WORK 12
    LOAD 0
    CALL bufcache_get
    RET
.end

.func bufcache_get
    STORE 0
    WORK 6
    LOAD 0
    PUSH {disk_miss_every}
    MOD
    JNZ hit
    LOAD 0
    CALL disk_read
hit:
    RET
.end

.func bufcache_put
    STORE 0
    WORK 7
    RET
.end

.func disk_read
    STORE 0
    WORK 40
    RET
.end

; ---- networking stack ----------------------------------------------------
.func sys_send
    STORE 0
    WORK 3
    LOAD 0
    CALL sock_send
    RET
.end

.func sock_send
    STORE 0
    WORK 5
    LOAD 0
    CALL tcp_output
    RET
.end

.func tcp_output
    STORE 0
    WORK 12
    LOAD 0
    CALL ip_output
    RET
.end

.func ip_output
    STORE 0
    WORK 8
    LOAD 0
    CALL if_output
    RET
.end

.func if_output
    STORE 0
    WORK 6
    LOAD 0
    PUSH {loopback_every}
    MOD
    JNZ sent
    PUSH 1
    CALL netisr
sent:
    RET
.end

.func netisr
    STORE 0
    WORK 4
    LOAD 0
    CALL ip_input
    RET
.end

.func ip_input
    STORE 0
    WORK 8
    LOAD 0
    CALL tcp_input
    RET
.end

.func tcp_input
    STORE 0
    WORK 12
    LOAD 0
    PUSH {ack_every}
    MOD
    JNZ no_ack
    PUSH 1
    CALL tcp_output
no_ack:
    LOAD 0
    CALL sock_deliver
    RET
.end

.func sock_deliver
    STORE 0
    WORK 5
    RET
.end

.func sys_recv
    STORE 0
    WORK 3
    LOAD 0
    CALL sock_recv
    RET
.end

.func sock_recv
    STORE 0
    WORK 6
    RET
.end

; ---- clock ------------------------------------------------------------------
.func hardclock
    WORK 3
    CALL timeout
    RET
.end

.func timeout
    WORK 4
    RET
.end

; ---- device interrupt handler (dispatched asynchronously) --------------------
.func irq_device
    WORK 9
    CALL intr_ack
    RET
.end

.func intr_ack
    WORK 2
    RET
.end
"""
