"""The simulated time-sharing kernel and its live profiling interface."""

from repro.kernel.build import (
    CYCLE_CLOSING_ARCS,
    NETWORK_CYCLE,
    build_kernel_source,
)
from repro.kernel.kgmon import (
    Kgmon,
    KgmonStatus,
    KernelSession,
    SMPKernelSession,
    SMPKgmon,
)

__all__ = [
    "CYCLE_CLOSING_ARCS",
    "Kgmon",
    "KgmonStatus",
    "KernelSession",
    "NETWORK_CYCLE",
    "SMPKernelSession",
    "SMPKgmon",
    "build_kernel_source",
]
