"""Static call graph extraction from Python bytecode.

The Python analogue of crawling the executable image (§4): inspect
compiled code objects for apparent calls and report (caller, callee)
name pairs.  Two sources of evidence:

* global/method name loads (``LOAD_GLOBAL f`` ... ``CALL``) — matched
  against the set of routine names the profile knows about;
* nested code objects in ``co_consts`` (comprehensions, lambdas, local
  ``def``) — the enclosing routine manifestly can invoke them.

Like all binary crawling this is heuristic: it over-approximates
(loading a name is not calling it) and under-approximates (attribute
dispatch is invisible) — but that is precisely the nature of the
original feature, whose arcs exist only "so that we could better
understand the shape of the call graph"; they carry zero counts and
never affect time.
"""

from __future__ import annotations

import dis
from types import CodeType, FunctionType, ModuleType
from typing import Iterable, Iterator

from repro.pyprof.addresses import describe_code

#: Opcodes that load a name plausibly about to be called.
_NAME_LOADS = frozenset({"LOAD_GLOBAL", "LOAD_NAME", "LOAD_METHOD", "LOAD_ATTR"})


def code_objects_of(obj) -> Iterator[CodeType]:
    """Code objects reachable from a function, module, or class."""
    if isinstance(obj, FunctionType):
        yield obj.__code__
    elif isinstance(obj, ModuleType):
        for value in vars(obj).values():
            if isinstance(value, FunctionType) and value.__module__ == obj.__name__:
                yield value.__code__
    elif isinstance(obj, type):
        for value in vars(obj).values():
            if isinstance(value, FunctionType):
                yield value.__code__
    elif isinstance(obj, CodeType):
        yield obj


def static_arcs(
    roots: Iterable,
    known_names: set[str] | None = None,
) -> set[tuple[str, str]]:
    """Apparent (caller, callee) pairs among ``roots``' code objects.

    Arguments:
        roots: functions, modules, classes, or raw code objects to scan.
        known_names: restrict reported callees to these names (typically
            the names in the profile's symbol table); None reports every
            name-load match among the scanned routines themselves.
    """
    codes: dict[str, CodeType] = {}
    for root in roots:
        for code in code_objects_of(root):
            codes.setdefault(describe_code(code), code)
    names = known_names if known_names is not None else set(codes)
    pairs: set[tuple[str, str]] = set()
    for caller_name, code in codes.items():
        for callee_name in _apparent_callees(code):
            if callee_name in names and callee_name != caller_name:
                pairs.add((caller_name, callee_name))
        for const in code.co_consts:
            if isinstance(const, CodeType):
                nested = describe_code(const)
                if nested in names:
                    pairs.add((caller_name, nested))
    return pairs


def _apparent_callees(code: CodeType) -> Iterator[str]:
    """Names loaded by instructions that commonly feed calls."""
    for ins in dis.get_instructions(code):
        if ins.opname in _NAME_LOADS and isinstance(ins.argval, str):
            yield ins.argval
