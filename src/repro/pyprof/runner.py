"""Script-level entry point: profile a Python program like gprof would.

``python -m repro.pyprof myscript.py [args...]`` runs the script under
the profiler and, as the script exits, condenses the data to two files
(§3's "condense it to a file as the profiled program exits"):

* ``gmon.out`` — the binary profile data;
* ``gmon.syms`` — the symbol table (Python has no executable image for
  the analyzer to read symbols from, so we save them alongside).

Analyze with::

    repro-gprof gmon.syms gmon.out
"""

from __future__ import annotations

import argparse
import runpy
import sys

from repro.gmon import write_gmon
from repro.pyprof.profiler import Profiler


def run_script(
    path: str,
    script_args: list[str],
    mode: str = "exact",
    interval: float = 0.001,
    gmon_path: str = "gmon.out",
    syms_path: str = "gmon.syms",
) -> None:
    """Run ``path`` under the profiler and write the data files."""
    profiler = Profiler(mode=mode, interval=interval, comment=path)
    saved_argv = sys.argv
    sys.argv = [path] + list(script_args)
    try:
        with profiler:
            runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved_argv
        profiler.disable()
    write_gmon(profiler.profile_data(), gmon_path)
    profiler.symbol_table().save(syms_path)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.pyprof``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.pyprof",
        description="Profile a Python script, gprof-style.",
    )
    parser.add_argument("script", help="path of the script to run")
    parser.add_argument(
        "--mode", choices=("exact", "signal", "thread"), default="exact",
        help="timing method (default: exact)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.001,
        help="sampling period in seconds (sampling modes)",
    )
    parser.add_argument(
        "--gmon", default="gmon.out", help="profile data output path"
    )
    parser.add_argument(
        "--syms", default="gmon.syms", help="symbol table output path"
    )
    parser.add_argument("args", nargs=argparse.REMAINDER, help="script arguments")
    opts = parser.parse_args(argv)
    run_script(
        opts.script,
        opts.args,
        mode=opts.mode,
        interval=opts.interval,
        gmon_path=opts.gmon,
        syms_path=opts.syms,
    )
    print(f"profile data written to {opts.gmon}, symbols to {opts.syms}")
    return 0
