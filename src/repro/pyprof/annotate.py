"""Annotated source listings for sampled Python profiles.

Counts "presented in tabular form, often in parallel with a listing of
the source code" are the §2 presentation style for statement-level
profiles; gprof itself grew a ``-A`` annotated-source mode.  For
Python, the sampled line numbers (gathered by
:class:`~repro.pyprof.sampler.SampleStore` with ``record_lines=True``)
annotate the actual source text.
"""

from __future__ import annotations

from collections import Counter

#: Width of the proportional bar column.
BAR_WIDTH = 16


def format_annotated_source(
    path: str,
    line_ticks: Counter,
    profrate: int = 1000,
    min_file_ticks: int = 1,
) -> str:
    """Render the source file at ``path`` with per-line sample counts.

    Arguments:
        path: source file whose lines were sampled.
        line_ticks: ``(filename, lineno) → ticks`` from a sampling run.
        profrate: ticks per second, for the per-line seconds column.
        min_file_ticks: return a short notice instead of a full listing
            when the file collected fewer samples.

    Lines are shown with ticks, seconds, and a bar scaled to the file's
    hottest line; unsampled lines keep an empty gutter, so the listing
    reads as the familiar "source with counts in the margin".
    """
    per_line = {
        lineno: ticks
        for (filename, lineno), ticks in line_ticks.items()
        if filename == path
    }
    total = sum(per_line.values())
    if total < min_file_ticks:
        return f"(no samples in {path})\n"
    with open(path, encoding="utf-8") as f:
        source_lines = f.read().splitlines()
    hottest = max(per_line.values())
    out = [f"annotated source: {path}  ({total} samples)"]
    for lineno, text in enumerate(source_lines, start=1):
        ticks = per_line.get(lineno, 0)
        if ticks:
            bar = "#" * max(round(BAR_WIDTH * ticks / hottest), 1)
            gutter = f"{ticks:6d} {ticks / profrate:7.3f}s |{bar:<{BAR_WIDTH}}|"
        else:
            gutter = " " * (6 + 1 + 8 + 2 + BAR_WIDTH + 1)
        out.append(f"{gutter} {lineno:4d}  {text}")
    return "\n".join(out) + "\n"


def hottest_lines(
    line_ticks: Counter,
    top: int = 10,
) -> list[tuple[str, int, int]]:
    """The ``top`` hottest (filename, lineno, ticks) across all files."""
    ranked = sorted(line_ticks.items(), key=lambda kv: (-kv[1], kv[0]))
    return [(f, ln, ticks) for (f, ln), ticks in ranked[:top]]
