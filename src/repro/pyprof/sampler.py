"""Statistical PC sampling for Python programs (§3.2).

The paper's preferred method "samples the value of the program counter
at some interval, and infers execution time from the distribution of
the samples".  Two implementations are provided:

* :class:`SignalSampler` — the faithful one: ``setitimer(ITIMER_PROF)``
  delivers SIGPROF as *CPU time* elapses, exactly like the original
  kernel's clock-tick histogram ("alarm clock interrupts that run
  relative to program time").  Main-thread, Unix only.
* :class:`ThreadSampler` — a portable fallback: a daemon thread wakes
  every ``interval`` wall-clock seconds and samples the target thread's
  current frame via ``sys._current_frames()``.

Both charge each sample to the code object executing at the tick, at an
address inside that routine's block, accumulating the histogram the
post-processor expects.  Samples are counted, never traced — keeping
run-time cost per tick tiny, as §3.2 demands.
"""

from __future__ import annotations

import signal
import sys
import threading
from collections import Counter
from types import FrameType

from repro.errors import ProfilerError
from repro.pyprof.addresses import AddressSpace, describe_code
from repro.pyprof.tracer import _module_of, is_internal_code


class SampleStore:
    """Tick counts per synthetic address, shared by the samplers.

    With ``record_lines=True`` each sample is additionally charged to
    its ``(filename, line number)`` — the raw material of annotated
    source listings (:mod:`repro.pyprof.annotate`).
    """

    def __init__(self, space: AddressSpace, record_lines: bool = False):
        self.space = space
        self.ticks: Counter[int] = Counter()
        self.record_lines = record_lines
        self.line_ticks: Counter[tuple[str, int]] = Counter()

    def sample_frame(self, frame: FrameType | None) -> None:
        """Record one tick against the routine executing in ``frame``.

        Ticks landing inside the profiler's own machinery (the arc
        callback, this handler) are charged to the nearest profiled
        caller instead — the kernel never billed its histogram code to
        the program either.
        """
        while frame is not None and is_internal_code(frame.f_code):
            frame = frame.f_back
        if frame is None:
            return
        code = frame.f_code
        pc = self.space.call_site(
            code, describe_code(code), frame.f_lasti, _module_of(code)
        )
        self.ticks[pc] += 1
        if self.record_lines:
            self.line_ticks[(code.co_filename, frame.f_lineno)] += 1


class SignalSampler:
    """SIGPROF-driven sampler: ticks follow consumed CPU time.

    Arguments:
        store: where ticks accumulate.
        interval: profiling clock period in (CPU) seconds.  1/60 s is
            the paper's clock; modern machines afford far finer.
    """

    def __init__(self, store: SampleStore, interval: float = 0.001):
        if interval <= 0:
            raise ProfilerError(f"interval must be positive, got {interval}")
        self.store = store
        self.interval = interval
        self._previous_handler = None
        self.active = False

    def start(self) -> None:
        """Install the SIGPROF handler and arm the profiling itimer."""
        if threading.current_thread() is not threading.main_thread():
            raise ProfilerError("SignalSampler must start on the main thread")
        self._previous_handler = signal.signal(signal.SIGPROF, self._on_tick)
        signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        self.active = True

    def stop(self) -> None:
        """Disarm the itimer and restore the previous handler."""
        if not self.active:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0)
        signal.signal(signal.SIGPROF, self._previous_handler or signal.SIG_DFL)
        self.active = False

    def _on_tick(self, signum, frame: FrameType | None) -> None:
        self.store.sample_frame(frame)

    @property
    def profrate(self) -> int:
        """Nominal ticks per second."""
        return max(round(1.0 / self.interval), 1)


class ThreadSampler:
    """Wall-clock sampler thread: portable, slightly less faithful.

    Samples the *target* thread (by default, whichever thread called
    :meth:`start`) on a fixed wall-clock period.  Unlike SIGPROF ticks,
    wall-clock ticks also land while the target is blocked — closer to
    elapsed-time profiling, which the paper notes "is complicated on
    time-sharing systems"; prefer :class:`SignalSampler` when available.
    """

    def __init__(self, store: SampleStore, interval: float = 0.001):
        if interval <= 0:
            raise ProfilerError(f"interval must be positive, got {interval}")
        self.store = store
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._target_id: int | None = None

    def start(self) -> None:
        """Begin sampling the calling thread."""
        self._target_id = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and wait for it to exit."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join()
        self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target_id)
            self.store.sample_frame(frame)

    @property
    def active(self) -> bool:
        """Whether the sampling thread is running."""
        return self._thread is not None

    @property
    def profrate(self) -> int:
        """Nominal ticks per second."""
        return max(round(1.0 / self.interval), 1)
