"""Profiling real Python programs with the gprof pipeline.

The VM substrate demonstrates the paper's machinery on machine-like
programs; this package makes the library useful on actual Python code.
``sys.setprofile`` plays the monitoring routine, SIGPROF (or a sampler
thread, or exact event timing) plays the clock-tick histogram, and a
synthetic address space makes the data indistinguishable from machine
profiles — so analysis, reporting, merging, and the gmon format all
work unchanged.
"""

from repro.pyprof.addresses import FUNC_SIZE, AddressSpace
from repro.pyprof.annotate import format_annotated_source, hottest_lines
from repro.pyprof.profiler import EXACT_PROFRATE, Profiler, profile_call
from repro.pyprof.sampler import SampleStore, SignalSampler, ThreadSampler
from repro.pyprof.staticarcs import static_arcs
from repro.pyprof.tracer import TOPLEVEL, TraceCollector

__all__ = [
    "AddressSpace",
    "EXACT_PROFRATE",
    "FUNC_SIZE",
    "Profiler",
    "SampleStore",
    "SignalSampler",
    "ThreadSampler",
    "TOPLEVEL",
    "TraceCollector",
    "format_annotated_source",
    "hottest_lines",
    "profile_call",
    "static_arcs",
]
