"""The Python profiler façade: gather arcs + time, emit ProfileData.

Usage::

    from repro.pyprof import Profiler

    with Profiler() as p:          # exact timing (deterministic)
        work()
    data = p.profile_data()        # a gmon-compatible ProfileData
    symbols = p.symbol_table()

    with Profiler(mode="signal", interval=0.002) as p:   # SIGPROF sampling
        work()

Three modes, mirroring §3.2's two methods of gathering execution times:

* ``"exact"`` (default) — measure elapsed time from routine entry to
  exit via the profile events themselves.  Deterministic, but pays a
  clock read per event.
* ``"signal"`` — statistical CPU-time sampling via SIGPROF, the
  faithful analogue of the kernel's clock-tick histogram (Unix only,
  main thread only).
* ``"thread"`` — portable wall-clock sampling from a daemon thread.

All modes record call graph arcs through the same monitoring-routine
hash table as the VM (:class:`repro.machine.mcount.ArcTable`).
"""

from __future__ import annotations

import sys
import time

from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.core.symbols import SymbolTable
from repro.errors import ProfilerError
from repro.pyprof.addresses import FUNC_SIZE, AddressSpace
from repro.pyprof.sampler import SampleStore, SignalSampler, ThreadSampler
from repro.pyprof.tracer import TraceCollector

#: In exact mode, one histogram tick is one microsecond of self time.
EXACT_PROFRATE = 1_000_000

MODES = ("exact", "signal", "thread")


class Profiler:
    """Collects gprof-style profile data from running Python code.

    Arguments:
        mode: ``"exact"``, ``"signal"``, or ``"thread"`` (see module
            docstring).
        interval: sampling period in seconds (sampling modes only).
        clock: time source for exact mode (injectable for tests).
        comment: provenance string stored in the profile data.
    """

    def __init__(
        self,
        mode: str = "exact",
        interval: float = 0.001,
        clock=time.perf_counter,
        comment: str = "",
        record_lines: bool = False,
    ):
        if mode not in MODES:
            raise ProfilerError(f"unknown mode {mode!r}; pick one of {MODES}")
        if record_lines and mode == "exact":
            raise ProfilerError("line recording needs a sampling mode")
        self.mode = mode
        self.interval = interval
        self.comment = comment
        self.space = AddressSpace()
        self.collector = TraceCollector(
            self.space, measure_time=(mode == "exact"), clock=clock
        )
        self._store = SampleStore(self.space, record_lines=record_lines)
        if mode == "signal":
            self._sampler = SignalSampler(self._store, interval)
        elif mode == "thread":
            self._sampler = ThreadSampler(self._store, interval)
        else:
            self._sampler = None
        self._enabled = False
        self._ever_enabled = False

    # -- lifecycle ------------------------------------------------------------------

    def enable(self) -> None:
        """Start gathering; routines already on the stack are primed."""
        if self._enabled:
            raise ProfilerError("profiler is already enabled")
        self._enabled = True
        self._ever_enabled = True
        self.collector.prime(sys._getframe().f_back)
        if self._sampler is not None:
            self._sampler.start()
        sys.setprofile(self.collector.callback)

    def disable(self) -> None:
        """Stop gathering (idempotent)."""
        if not self._enabled:
            return
        sys.setprofile(None)
        if self._sampler is not None:
            self._sampler.stop()
        self.collector.finish()
        self._enabled = False

    def __enter__(self) -> "Profiler":
        self.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        self.disable()

    # -- results ---------------------------------------------------------------------

    def symbol_table(self) -> SymbolTable:
        """Symbols for every routine observed so far."""
        return self.space.symbol_table()

    @property
    def line_ticks(self):
        """Per-(filename, line) sample counts (``record_lines`` modes)."""
        return self._store.line_ticks

    def profile_data(self) -> ProfileData:
        """Condense gathered arcs and time into gmon-compatible data.

        Call after :meth:`disable` (or outside the ``with`` block).
        """
        if self._enabled:
            raise ProfilerError("disable the profiler before extracting data")
        if not self._ever_enabled:
            raise ProfilerError("profiler was never enabled")
        high = self.space.high_pc
        profrate = (
            EXACT_PROFRATE if self._sampler is None else self._sampler.profrate
        )
        hist = Histogram.for_range(0, high, scale=1.0 / FUNC_SIZE, profrate=profrate)
        if self._sampler is None:
            tick_source = {
                addr: round(seconds * EXACT_PROFRATE)
                for addr, seconds in self.collector.self_seconds.items()
            }
        else:
            tick_source = dict(self._store.ticks)
        for addr, ticks in tick_source.items():
            bucket = hist.bucket_for(addr)
            if bucket is not None and ticks > 0:
                hist.counts[bucket] += ticks
        return ProfileData(
            hist, self.collector.arc_table.arcs(), comment=self.comment
        )


def profile_call(func, *args, mode: str = "exact", interval: float = 0.001, **kwargs):
    """Profile one call: returns ``(result, profile_data, symbol_table)``."""
    profiler = Profiler(mode=mode, interval=interval, comment=getattr(func, "__name__", ""))
    with profiler:
        result = func(*args, **kwargs)
    return result, profiler.profile_data(), profiler.symbol_table()
