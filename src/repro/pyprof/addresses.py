"""Mapping Python code objects into a synthetic address space.

gprof's data model is addresses: call sites, callee entry points, PC
samples.  Python has none, so we manufacture them: every routine (a
code object, or a named builtin) is assigned a fixed-size block of
addresses.  The block base is the routine's "entry point"; call sites
inside the routine map to ``base + 1 + (bytecode offset mod block)``,
which keeps every call site inside its caller's block — all the
symbolizer needs to identify the *caller* — while distinct bytecode
call sites usually get distinct addresses (they share one only modulo
the block size, which merely merges their ``sites`` statistics).

The resulting :class:`~repro.core.symbols.SymbolTable` and raw arcs are
indistinguishable from VM-produced ones, so the entire post-processing
pipeline — including the gmon file format — works on Python programs
unchanged.
"""

from __future__ import annotations

from types import CodeType
from typing import Hashable

from repro.core.symbols import Symbol, SymbolTable

#: Address units reserved per routine.
FUNC_SIZE = 1024


def describe_code(code: CodeType) -> str:
    """A stable, human-readable name for a Python code object."""
    name = code.co_qualname if hasattr(code, "co_qualname") else code.co_name
    return name


def describe_builtin(func) -> str:
    """A display name for a builtin reached via a ``c_call`` event."""
    module = getattr(func, "__module__", None)
    name = getattr(func, "__qualname__", getattr(func, "__name__", repr(func)))
    if module and module not in ("builtins", None):
        return f"<{module}.{name}>"
    return f"<{name}>"


class AddressSpace:
    """Allocates address blocks to routines and remembers the mapping.

    Routines are keyed by an arbitrary hashable identity (a code object,
    or a builtin's id); blocks are dealt out in first-seen order, so a
    deterministic program yields a deterministic layout.
    """

    def __init__(self):
        self._base_by_key: dict[Hashable, int] = {}
        self._names: list[str] = []
        self._modules: list[str] = []

    def entry(self, key: Hashable, name: str, module: str = "") -> int:
        """The entry address of routine ``key``, allocating on first use.

        Name collisions between distinct routines are disambiguated with
        a ``#2``-style suffix, since symbol tables require unique names.
        """
        base = self._base_by_key.get(key)
        if base is None:
            base = len(self._names) * FUNC_SIZE
            self._base_by_key[key] = base
            self._names.append(self._unique(name))
            self._modules.append(module)
        return base

    def _unique(self, name: str) -> str:
        if name not in self._names:
            return name
        n = 2
        while f"{name}#{n}" in self._names:
            n += 1
        return f"{name}#{n}"

    def call_site(self, key: Hashable, name: str, offset: int, module: str = "") -> int:
        """The address of the call site at bytecode ``offset`` in routine
        ``key``; always strictly inside the routine's block."""
        base = self.entry(key, name, module)
        return base + 1 + (max(offset, 0) % (FUNC_SIZE - 1))

    def name_of(self, key: Hashable) -> str | None:
        """The assigned name of a previously-seen routine."""
        base = self._base_by_key.get(key)
        if base is None:
            return None
        return self._names[base // FUNC_SIZE]

    @property
    def high_pc(self) -> int:
        """One past the highest allocated address."""
        return len(self._names) * FUNC_SIZE

    def __len__(self) -> int:
        return len(self._names)

    def symbol_table(self) -> SymbolTable:
        """A symbol table covering every allocated routine."""
        return SymbolTable(
            Symbol(i * FUNC_SIZE, name, (i + 1) * FUNC_SIZE, module)
            for i, (name, module) in enumerate(zip(self._names, self._modules))
        )
