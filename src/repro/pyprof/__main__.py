"""``python -m repro.pyprof`` — profile a script, gprof-style."""

import sys

from repro.pyprof.runner import main

if __name__ == "__main__":
    sys.exit(main())
