"""Arc collection (and optional exact timing) for Python programs.

This is the Python incarnation of the monitoring routine: where the VM
plants ``MCOUNT`` in routine prologues, CPython gives us the same hook
for free — ``sys.setprofile`` delivers a ``call`` event at every routine
entry, with the caller's frame (and its current bytecode offset — the
call site) one link up the frame chain.  §3.1's data falls out directly:

* the callee is ``frame.f_code`` → its entry address;
* the call site is ``(frame.f_back.f_code, frame.f_back.f_lasti)``;
* calls whose caller is unknown (no ``f_back``, or a frame that was
  already live when profiling was enabled) are "spontaneous".

The same callback can also do *exact* timing (the paper's other method:
"measures the elapsed time from routine entry to routine exit") by
keeping a shadow stack and charging inter-event time to its top.  The
statistical alternative lives in :mod:`repro.pyprof.sampler`.
"""

from __future__ import annotations

import functools
import os
import time
from types import CodeType, FrameType

from repro.machine.mcount import ArcTable
from repro.pyprof.addresses import (
    AddressSpace,
    describe_builtin,
    describe_code,
)

#: Files whose frames are the profiler's own machinery; events from them
#: are ignored so the profiler does not profile itself.
_INTERNAL_DIR = os.path.dirname(os.path.abspath(__file__))

#: Synthetic routine charged with time spent when the shadow stack is
#: empty (above the frame that enabled profiling).
TOPLEVEL = "<toplevel>"


@functools.lru_cache(maxsize=None)
def _module_of(code: CodeType) -> str:
    return os.path.basename(code.co_filename)


@functools.lru_cache(maxsize=None)
def is_internal_code(code: CodeType) -> bool:
    """Whether a code object belongs to the profiler's own machinery.

    Cached per code object: this test runs on every profile event and
    every PC sample, so it must not touch the filesystem path routines
    each time (their cost would drown small workloads and skew samples).
    """
    return os.path.dirname(os.path.abspath(code.co_filename)) == _INTERNAL_DIR


class TraceCollector:
    """The ``sys.setprofile`` callback: arcs always, exact time optionally.

    Arguments:
        space: the synthetic address space (shared with any sampler).
        measure_time: when True, run the exact timer; when False the
            callback only records arcs (a sampler provides the time).
        clock: the time source for the exact timer (injectable for
            deterministic tests).
    """

    def __init__(
        self,
        space: AddressSpace,
        measure_time: bool = True,
        clock=time.perf_counter,
    ):
        self.space = space
        self.arc_table = ArcTable()
        self.measure_time = measure_time
        self._clock = clock
        self._stack: list[int] = []  # entry addresses of live routines
        self._self_seconds: dict[int, float] = {}
        self._last: float | None = None
        self._toplevel = space.entry(TOPLEVEL, TOPLEVEL)
        # Per-code and per-site caches: the callback runs on every event.
        self._entry_cache: dict[CodeType, int] = {}
        self._site_cache: dict[tuple[CodeType, int], int] = {}

    # -- lifecycle ---------------------------------------------------------------

    def prime(self, frame: FrameType | None) -> None:
        """Seed the shadow stack with frames already live at enable time.

        Their entries get no arcs (their prologues ran before profiling
        started — same as routines compiled without the monitoring hook)
        but their ``return`` events must pop cleanly and their ongoing
        execution must be billed to them.
        """
        chain: list[FrameType] = []
        while frame is not None:
            if not self._is_internal(frame.f_code):
                chain.append(frame)
            frame = frame.f_back
        for f in reversed(chain):
            self._stack.append(self._code_entry(f.f_code))
        self._last = self._clock()

    def finish(self) -> None:
        """Charge any trailing interval; called at disable time."""
        if self.measure_time:
            self._charge()

    # -- event handling -------------------------------------------------------------

    def callback(self, frame: FrameType, event: str, arg) -> None:
        """The function installed via ``sys.setprofile``."""
        if event == "call":
            code = frame.f_code
            if self._is_internal(code):
                return
            if self.measure_time:
                self._charge()
            self._record_arc(frame.f_back, self._code_entry(code))
            self._stack.append(self._code_entry(code))
        elif event == "return":
            if self._is_internal(frame.f_code):
                return
            if self.measure_time:
                self._charge()
            if self._stack:
                self._stack.pop()
        elif event == "c_call":
            if self._is_internal(frame.f_code):
                return
            if self.measure_time:
                self._charge()
            entry = self._builtin_entry(arg)
            self._record_c_arc(frame, entry)
            self._stack.append(entry)
        elif event in ("c_return", "c_exception"):
            if self._is_internal(frame.f_code):
                return
            if self.measure_time:
                self._charge()
            if self._stack:
                self._stack.pop()

    # -- helpers -----------------------------------------------------------------------

    @staticmethod
    def _is_internal(code: CodeType) -> bool:
        return is_internal_code(code)

    def _code_entry(self, code: CodeType) -> int:
        entry = self._entry_cache.get(code)
        if entry is None:
            entry = self.space.entry(code, describe_code(code), _module_of(code))
            self._entry_cache[code] = entry
        return entry

    def _builtin_entry(self, func) -> int:
        # Key builtins by their description, not identity: the bound
        # method objects of two different lists are distinct, but
        # "<list.append>" is one routine as far as a profile is
        # concerned (just as one C function serves every list).
        name = describe_builtin(func)
        return self.space.entry(("builtin", name), name, "<builtin>")

    def _site(self, code: CodeType, lasti: int) -> int:
        key = (code, lasti)
        site = self._site_cache.get(key)
        if site is None:
            site = self.space.call_site(
                code, describe_code(code), lasti, _module_of(code)
            )
            self._site_cache[key] = site
        return site

    def _record_arc(self, caller: FrameType | None, self_pc: int) -> None:
        if caller is None or self._is_internal(caller.f_code):
            self.arc_table.record(None, self_pc)
            return
        self.arc_table.record(self._site(caller.f_code, caller.f_lasti), self_pc)

    def _record_c_arc(self, caller: FrameType, self_pc: int) -> None:
        self.arc_table.record(self._site(caller.f_code, caller.f_lasti), self_pc)

    def _charge(self) -> None:
        now = self._clock()
        if self._last is not None:
            owner = self._stack[-1] if self._stack else self._toplevel
            self._self_seconds[owner] = (
                self._self_seconds.get(owner, 0.0) + (now - self._last)
            )
        self._last = now

    # -- results -----------------------------------------------------------------------

    @property
    def self_seconds(self) -> dict[int, float]:
        """Exact self seconds per routine entry address (exact mode)."""
        return dict(self._self_seconds)
