"""The §4 post-processing passes as explicit, registered stages.

What used to be one opaque ``analyze()`` body is now a sequence of
:class:`Stage` objects over a shared :class:`PipelineState` blackboard.
Each stage declares the state fields it ``requires`` and ``provides``
— the registry test derives the §4 ordering constraints from these
declarations (notably: static augmentation *must* precede topological
numbering, because zero-count static arcs can complete cycles).

The stage sequence, in execution order:

==============  =============================================================
``symbolize``   raw address arcs -> routine-level :class:`ArcSet`
``exclude``     drop user-excluded routines (validating the names)
``apportion``   histogram buckets -> per-routine self seconds
``build-graph`` arcs + sampled routines -> :class:`CallGraph`
``augment``     add statically-discovered zero-count arcs (§4)
``break-cycles`` explicit arc deletions + the bounded NP-complete heuristic
``number``      Tarjan SCCs + topological numbering (Figure 1)
``propagate``   solve the time-propagation recurrence
``assemble``    presentation-ready :class:`~repro.core.analysis.Profile`
==============  =============================================================

Every stage fills an integer ``counters`` dict describing the work it
did; the runner wraps each call with wall-time measurement and appends
a :class:`~repro.pipeline.trace.StageTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.arcs import ArcSet, symbolize_arcs
from repro.core.arcremoval import break_cycles_heuristic, remove_arcs
from repro.core.callgraph import CallGraph
from repro.core.cycles import number_graph
from repro.core.propagate import propagate
from repro.core.staticgraph import augment_with_static_arcs


@dataclass
class PipelineState:
    """The blackboard every stage reads from and writes to.

    The first three fields are the pipeline's immutable inputs; the
    rest are intermediates, each owned by exactly one stage (its
    ``provides`` declaration).  ``warnings`` accumulates degradation
    notices in stage order and ends up on the assembled profile.
    """

    data: Any
    symbols: Any
    options: Any
    warnings: list[str] = field(default_factory=list)
    symbolized: list | None = None
    arcs: ArcSet | None = None
    #: Precomputed bucket/symbol overlap spans (see
    #: repro.core.kernels.spans); seeded by the runner from the
    #: analysis cache when available, else built by ApportionStage.
    spans: Any = None
    self_times: dict[str, float] | None = None
    graph: CallGraph | None = None
    removed: list | None = None
    numbered: Any = None
    prop: Any = None
    profile: Any = None

    @property
    def excluded(self) -> set[str]:
        return set(self.options.excluded)


class Stage:
    """One named pass of the analysis pipeline.

    Subclasses set ``name``/``requires``/``provides`` and implement
    :meth:`run`, which reads its inputs off the state, writes its
    outputs back, and describes the work done in ``counters`` (integer
    values only — they feed the deterministic JSON trace).
    """

    name: str = "?"
    #: State fields this stage reads (beyond the fixed inputs).
    requires: tuple[str, ...] = ()
    #: State fields this stage writes.
    provides: tuple[str, ...] = ()
    #: Whether the stage's arithmetic is served by a repro.core.kernels
    #: backend (surfaced per-stage in the pipeline trace).
    kernel: bool = False

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Stage {self.name}>"


class SymbolizeStage(Stage):
    """§4 step 1: resolve raw address arcs against the symbol table.

    Arcs whose callee address matches no symbol are structurally
    impossible for this image; they are dropped with one collected
    warning (salvaged/partial data must still produce output) unless
    ``keep_unknown`` retains them under synthetic names.
    """

    name = "symbolize"
    provides = ("symbolized",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        data, symbols, options = state.data, state.symbols, state.options
        unknown = 0
        if not options.keep_unknown:
            unknown = sum(
                1 for a in data.arcs if symbols.find(a.self_pc) is None
            )
            if unknown:
                state.warnings.append(
                    f"skipped {unknown} arc(s) whose callee address matches "
                    "no symbol in this image"
                )
        state.symbolized = symbolize_arcs(
            data.arcs, symbols, options.keep_unknown
        )
        counters["raw_arcs"] = len(data.arcs)
        counters["routine_arcs"] = len(state.symbolized)
        counters["unknown_dropped"] = unknown


class ExcludeStage(Stage):
    """§4 step 2: erase user-excluded routines from the arc set.

    Excluded names that match neither a symbol nor any routine
    appearing in the arcs are almost certainly typos; each one gets a
    warning instead of being silently ignored.
    """

    name = "exclude"
    requires = ("symbolized",)
    provides = ("arcs",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        excluded = state.excluded
        arc_names = {a.caller for a in state.symbolized} | {
            a.callee for a in state.symbolized
        }
        unmatched = [
            name
            for name in state.options.excluded
            if name not in state.symbols and name not in arc_names
        ]
        for name in unmatched:
            state.warnings.append(
                f"excluded routine {name!r} matches no routine in this "
                "profile"
            )
        state.arcs = ArcSet(
            a
            for a in state.symbolized
            if a.callee not in excluded and a.caller not in excluded
        )
        counters["excluded_names"] = len(excluded)
        counters["unmatched_names"] = len(unmatched)
        counters["arcs_dropped"] = len(state.symbolized) - len(state.arcs)


class ApportionStage(Stage):
    """§4: charge histogram buckets to routines as self seconds.

    The bucket/symbol overlap spans depend only on the histogram
    layout and symbol table; when the runner found them in the
    analysis cache they ride in on ``state.spans`` and the stage skips
    the geometry walk entirely, evaluating the cached spans against
    this input's counts with the selected kernel backend.
    """

    name = "apportion"
    provides = ("spans", "self_times")
    kernel = True

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        from repro.core import kernels

        hist = state.data.histogram
        if state.spans is None and hist.counts:
            state.spans = kernels.spans_for(
                state.symbols, hist.low_pc, hist.high_pc, hist.num_buckets
            )
        excluded = state.excluded
        state.self_times = {
            name: secs
            for name, secs in hist.time_for_symbols(
                state.symbols, spans=state.spans
            ).items()
            if name not in excluded
        }
        counters["buckets"] = hist.num_buckets
        counters["routines_sampled"] = len(state.self_times)
        counters["span_symbols"] = (
            len(state.spans.entries) if state.spans is not None else 0
        )


class BuildGraphStage(Stage):
    """Build the call graph over every routine called or sampled."""

    name = "build-graph"
    requires = ("arcs", "self_times")
    provides = ("graph",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        state.graph = CallGraph(state.arcs, extra_nodes=state.self_times)
        counters["nodes"] = len(state.graph)
        counters["arcs"] = state.graph.num_arcs()


class AugmentStage(Stage):
    """§4: add statically-discovered zero-count arcs.

    Must run before :class:`NumberStage` — static arcs can complete
    strongly-connected components, so augmenting after numbering would
    change cycle membership between executions.
    """

    name = "augment"
    requires = ("graph",)
    provides = ("graph",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        excluded = state.excluded
        static_pairs = [
            (c, e)
            for c, e in state.options.static_arcs
            if c not in excluded and e not in excluded
        ]
        added = augment_with_static_arcs(state.graph, static_pairs)
        counters["static_pairs"] = len(static_pairs)
        counters["arcs_added"] = added


class BreakCyclesStage(Stage):
    """Arc deletion: explicit user requests, then the bounded heuristic.

    Requested deletions naming arcs absent from this run's graph are
    reported as warnings — the user may legitimately list arcs that a
    particular execution never traversed, but silence would also hide
    typos.
    """

    name = "break-cycles"
    requires = ("graph",)
    provides = ("graph", "removed")

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        options = state.options
        missing = [
            (frm, to)
            for frm, to in options.deleted_arcs
            if state.graph.arc(frm, to) is None
        ]
        for frm, to in missing:
            state.warnings.append(
                f"deleted arc {frm}/{to} does not appear in this "
                "profile's call graph"
            )
        removed = remove_arcs(state.graph, options.deleted_arcs)
        explicit = len(removed)
        if options.auto_break_cycles:
            removed += break_cycles_heuristic(
                state.graph, options.max_removed_arcs
            )
        state.removed = removed
        counters["requested"] = len(options.deleted_arcs)
        counters["unmatched_requests"] = len(missing)
        counters["removed_explicit"] = explicit
        counters["removed_heuristic"] = len(removed) - explicit


class NumberStage(Stage):
    """§4: Tarjan SCC discovery + topological numbering in one pass."""

    name = "number"
    requires = ("graph",)
    provides = ("numbered",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        state.numbered = number_graph(state.graph)
        counters["representatives"] = len(state.numbered.topo_order)
        counters["cycles"] = len(state.numbered.cycles)
        counters["cycle_members"] = sum(
            len(c) for c in state.numbered.cycles
        )


class PropagateStage(Stage):
    """§4: solve the time-propagation recurrence, leaves first."""

    name = "propagate"
    requires = ("numbered", "self_times")
    provides = ("prop",)
    kernel = True

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        state.prop = propagate(state.numbered, state.self_times)
        counters["arc_shares"] = len(state.prop.arc_shares)


class AssembleStage(Stage):
    """§5: build the presentation-ready profile (entries, flat rows)."""

    name = "assemble"
    requires = ("graph", "numbered", "prop", "removed")
    provides = ("profile",)

    def run(self, state: PipelineState, counters: dict[str, int]) -> None:
        from repro.core.analysis import assemble_profile

        state.profile = assemble_profile(
            state.data,
            state.symbols,
            state.graph,
            state.numbered,
            state.prop,
            state.removed,
            state.warnings,
        )
        counters["graph_entries"] = len(state.profile.graph_entries)
        counters["flat_entries"] = len(state.profile.flat_entries)
        counters["never_called"] = len(state.profile.never_called)


#: The §4 pipeline, in execution order.  ``run_analysis`` walks exactly
#: this list; tests assert the declared requires/provides dependencies
#: are satisfied by this order (augment before number, etc.).
STAGES: tuple[Stage, ...] = (
    SymbolizeStage(),
    ExcludeStage(),
    ApportionStage(),
    BuildGraphStage(),
    AugmentStage(),
    BreakCyclesStage(),
    NumberStage(),
    PropagateStage(),
    AssembleStage(),
)

#: Stage lookup by registered name.
STAGE_BY_NAME: dict[str, Stage] = {s.name: s for s in STAGES}
