"""Content-addressed memoization of expensive pipeline intermediates.

The §6 loop and the fleet workflows re-analyze the same executable over
and over: ``compare`` runs two analyses, ``regress`` gates every CI
run, ``repro-gprof --lint`` analyzes once for the linter and once for
the listing.  Most of that work is identical from run to run, so the
pipeline memoizes its expensive intermediates — the symbolized
:class:`~repro.core.arcs.ArcSet`, the per-routine self times, the
cycle-numbered graph, the solved :class:`~repro.core.propagate.Propagation`,
and the assembled :class:`~repro.core.analysis.Profile` — keyed by
blake2b digests of each stage's *inputs* (the same content-addressed
idiom as :class:`repro.fleet.HeaderCache`'s stat-validated peeks, one
level up the stack).

Keys are pure functions of content: two different
:class:`~repro.core.symbols.SymbolTable` objects with equal symbols
produce equal digests, so a cache shared across loads of the same
image still hits.

Cached values are **shared, treat-as-immutable** objects: a warm
``analyze()`` returns the same ``Profile`` the cold run built.  Every
in-tree consumer treats profiles as read-only analysis results; if you
must mutate one, analyze without a cache.
"""

from __future__ import annotations

import hashlib
import struct
from collections import OrderedDict
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.analysis import AnalysisOptions
    from repro.core.histogram import Histogram
    from repro.core.profiledata import ProfileData
    from repro.core.symbols import SymbolTable
    from repro.machine.executable import Executable

_DIGEST_SIZE = 16


def _new_hash() -> "hashlib.blake2b":
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def _digest_strs(h, items) -> None:
    for s in items:
        b = s.encode("utf-8")
        h.update(struct.pack("<I", len(b)))
        h.update(b)


def digest_symbols(symbols: "SymbolTable") -> str:
    """Content digest of a symbol table, memoized on the instance.

    Symbol tables are immutable after construction, so the digest is
    computed once and stashed on the object; equal tables loaded twice
    still collide (the digest covers content, not identity).
    """
    cached = getattr(symbols, "_pipeline_digest", None)
    if cached is not None:
        return cached
    h = _new_hash()
    for sym in symbols:
        h.update(struct.pack("<qq", sym.address, sym.end))
        _digest_strs(h, (sym.name, sym.module))
    digest = h.hexdigest()
    try:
        symbols._pipeline_digest = digest
    except AttributeError:  # pragma: no cover - exotic symbol tables
        pass
    return digest


def digest_histogram(hist: "Histogram") -> str:
    """Content digest of a histogram (bounds, rate, every bucket)."""
    h = _new_hash()
    h.update(struct.pack("<qqqI", hist.low_pc, hist.high_pc,
                         len(hist.counts), hist.profrate))
    h.update(struct.pack(f"<{len(hist.counts)}q", *hist.counts))
    return h.hexdigest()


def digest_layout(hist: "Histogram") -> str:
    """Digest of a histogram's *layout* only (bounds and bucket count).

    The bucket/symbol overlap spans depend on the geometry, never the
    counts, so the ``spans`` cache kind keys on this: every same-layout
    profile of a fleet shares one cached spans object.
    """
    h = _new_hash()
    h.update(struct.pack("<qqq", hist.low_pc, hist.high_pc,
                         len(hist.counts)))
    return h.hexdigest()


def digest_raw_arcs(data: "ProfileData") -> str:
    """Content digest of the raw arc table (addresses and counts)."""
    h = _new_hash()
    h.update(struct.pack("<q", len(data.arcs)))
    for a in data.arcs:
        h.update(struct.pack("<qqq", a.from_pc, a.self_pc, a.count))
    return h.hexdigest()


def digest_warnings(data: "ProfileData") -> str:
    """Digest of the degradation warnings carried by the input data."""
    h = _new_hash()
    _digest_strs(h, data.warnings)
    return h.hexdigest()


def digest_options(options: "AnalysisOptions") -> str:
    """Content digest of the analysis knobs.

    Sequences are digested **in the order given**: arc insertion order
    can break presentation ties, so two option sets that differ only in
    ordering are conservatively treated as different inputs.
    """
    h = _new_hash()
    h.update(struct.pack(
        "<??q", options.auto_break_cycles, options.keep_unknown,
        options.max_removed_arcs,
    ))
    _digest_strs(h, options.excluded)
    for caller, callee in options.static_arcs:
        _digest_strs(h, (caller, callee))
    for caller, callee in options.deleted_arcs:
        _digest_strs(h, (caller, callee))
    return h.hexdigest()


def digest_executable(exe: "Executable") -> str:
    """Content digest of a whole executable image, memoized.

    Covers everything the dataflow battery reads: the text segment,
    the function records (name, bounds, profiled flag), the entry
    point, and the globals count.  Two identical images loaded twice
    collide, so a shared cache replays their flow analysis.
    """
    cached = getattr(exe, "_pipeline_digest", None)
    if cached is not None:
        return cached
    h = _new_hash()
    _digest_strs(h, (exe.name,))
    h.update(struct.pack("<qqq", exe.entry_point, exe.num_globals,
                         len(exe.instructions)))
    for ins in exe.instructions:
        operand = ins.operand if ins.operand is not None else -1
        _digest_strs(h, (ins.op.value,))
        h.update(struct.pack("<q", operand))
    h.update(struct.pack("<q", len(exe.functions)))
    for fn in exe.functions:
        _digest_strs(h, (fn.name,))
        h.update(struct.pack("<qq?", fn.entry, fn.end, fn.profiled))
    digest = h.hexdigest()
    try:
        exe._pipeline_digest = digest
    except AttributeError:  # pragma: no cover - frozen/slots images
        pass
    return digest


def combine(*parts: str) -> str:
    """Fold several digests/tokens into one key."""
    h = _new_hash()
    _digest_strs(h, parts)
    return h.hexdigest()


class AnalysisCache:
    """A bounded, content-addressed memo of pipeline intermediates.

    Entries are keyed by ``(kind, key)`` where ``kind`` names the
    intermediate (``"arcs"``, ``"self_times"``, ``"numbered"``,
    ``"prop"``, ``"profile"``, ``"flow"``) and ``key`` is the blake2b
    digest of the
    stage inputs that produced it.  Eviction is LRU with a fixed entry
    bound so a long-lived session (a fleet cron job, a test driver)
    cannot grow without limit.
    """

    def __init__(self, max_entries: int = 128) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self._store: OrderedDict[tuple[str, str], object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, kind: str, key: str):
        """The cached record for ``(kind, key)``, or None; counts the probe."""
        record = self._store.get((kind, key))
        if record is None:
            self.misses += 1
            return None
        self._store.move_to_end((kind, key))
        self.hits += 1
        return record

    def put(self, kind: str, key: str, record) -> None:
        """Store a record, evicting the least-recently-used on overflow."""
        self._store[(kind, key)] = record
        self._store.move_to_end((kind, key))
        while len(self._store) > self.max_entries:
            self._store.popitem(last=False)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        """Drop every entry (the probe statistics survive)."""
        self._store.clear()

    def stats(self) -> dict:
        """Probe statistics, JSON-ready."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
        }
