"""repro.pipeline — the staged, observable, cache-aware pass manager.

The §4 post-processing that used to live inside one ``analyze()``
function is decomposed here into three pieces:

* :mod:`~repro.pipeline.stages` — the passes themselves, as registered
  :class:`Stage` objects over a :class:`PipelineState` blackboard;
* :mod:`~repro.pipeline.runner` — :func:`run_analysis`, which walks the
  stage list with per-stage wall-time/counter tracing
  (:class:`PipelineTrace`) and content-addressed memoization
  (:class:`AnalysisCache`);
* :mod:`~repro.pipeline.session` — :class:`ProfileSession`, the shared
  read → salvage → merge → lint → analyze plumbing every CLI frontend
  rides.

``repro.core.analyze`` delegates to :func:`run_analysis`; the golden
gate (``tests/golden/``) pins the staged pipeline's output to be
byte-identical to the pre-refactor monolith, cache cold or warm.
"""

from repro.pipeline.cache import AnalysisCache
from repro.pipeline.runner import GROUPS, compute_keys, run_analysis
from repro.pipeline.session import ProfileSession
from repro.pipeline.stages import STAGE_BY_NAME, STAGES, PipelineState, Stage
from repro.pipeline.trace import PipelineTrace, StageTrace

__all__ = [
    "AnalysisCache",
    "GROUPS",
    "PipelineState",
    "PipelineTrace",
    "ProfileSession",
    "STAGES",
    "STAGE_BY_NAME",
    "Stage",
    "StageTrace",
    "compute_keys",
    "run_analysis",
]
