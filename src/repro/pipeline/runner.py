"""The pass-manager: walk the §4 stages, trace them, memoize them.

:func:`run_analysis` is what ``repro.core.analyze`` now delegates to.
With neither ``trace`` nor ``cache`` it is a plain walk over
:data:`~repro.pipeline.stages.STAGES` and produces output byte-identical
to the pre-refactor monolith (the golden gate under ``tests/golden/``
enforces this).

Caching works on *groups* of contiguous stages.  Each
:class:`CacheGroup` covers the run of stages whose combined output is
one expensive intermediate, and its key is a blake2b digest of exactly
the inputs those stages consume — computable *before* any of them run:

=============  ==========================================  =================
kind           covers                                       keyed by
=============  ==========================================  =================
``arcs``       symbolize, exclude                           symbols, raw arcs,
                                                            keep_unknown, excluded
``self_times`` apportion                                    symbols, histogram,
                                                            excluded
``numbered``   build-graph, augment, break-cycles, number   arcs key, self_times
                                                            key, graph-editing
                                                            options
``prop``       propagate                                    numbered key,
                                                            self_times key
``profile``    assemble                                     prop key, input
                                                            warnings
=============  ==========================================  =================

Later keys fold in earlier ones, so the chain covers every input
transitively and a fully-warm run touches nothing but the digests.
Cache records carry the covered stages' warnings and counters so warm
runs replay both: the profile a warm run returns is indistinguishable
from a cold one (module the ``cached`` markers in the trace).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.core import kernels
from repro.pipeline.cache import (
    AnalysisCache,
    combine,
    digest_histogram,
    digest_layout,
    digest_raw_arcs,
    digest_symbols,
    digest_warnings,
)
from repro.pipeline.stages import STAGES, PipelineState, Stage
from repro.pipeline.trace import PipelineTrace, StageTrace


@dataclass(frozen=True)
class CacheGroup:
    """A contiguous run of stages memoized as one unit."""

    kind: str
    stages: tuple[str, ...]
    #: Extract the (treat-as-immutable) value to store after a cold run.
    capture: Callable[[PipelineState], object]
    #: Write a cached value back onto the state, skipping the stages.
    restore: Callable[[PipelineState, object], None]


def _restore_arcs(state: PipelineState, value) -> None:
    state.symbolized, state.arcs = value


def _restore_self_times(state: PipelineState, value) -> None:
    state.self_times = value


def _restore_numbered(state: PipelineState, value) -> None:
    state.graph, state.removed, state.numbered = value


def _restore_prop(state: PipelineState, value) -> None:
    state.prop = value


def _restore_profile(state: PipelineState, value) -> None:
    state.profile = value


#: The cache groups, in stage order; together they partition STAGES.
GROUPS: tuple[CacheGroup, ...] = (
    CacheGroup(
        "arcs",
        ("symbolize", "exclude"),
        lambda s: (s.symbolized, s.arcs),
        _restore_arcs,
    ),
    CacheGroup(
        "self_times",
        ("apportion",),
        lambda s: s.self_times,
        _restore_self_times,
    ),
    CacheGroup(
        "numbered",
        ("build-graph", "augment", "break-cycles", "number"),
        lambda s: (s.graph, s.removed, s.numbered),
        _restore_numbered,
    ),
    CacheGroup(
        "prop",
        ("propagate",),
        lambda s: s.prop,
        _restore_prop,
    ),
    CacheGroup(
        "profile",
        ("assemble",),
        lambda s: s.profile,
        _restore_profile,
    ),
)

_SEP = ";;"


def compute_keys(state: PipelineState) -> dict[str, str]:
    """Content-addressed keys for every cache group, input digests only.

    Every key folds in the keys of the groups it depends on, so each
    covers its stages' inputs transitively.  Sequences keep their given
    order (see :func:`repro.pipeline.cache.digest_options`).
    """
    data, options = state.data, state.options
    sym = digest_symbols(state.symbols)
    hist = digest_histogram(data.histogram)
    arcs_key = combine(
        "arcs",
        sym,
        digest_raw_arcs(data),
        "ku1" if options.keep_unknown else "ku0",
        *options.excluded,
    )
    self_times_key = combine("self_times", sym, hist, *options.excluded)
    # Spans depend only on the geometry (layout x symbols), never the
    # counts, so their key deliberately omits the histogram digest —
    # that is what lets every same-layout profile share one entry.
    spans_key = combine("spans", sym, digest_layout(data.histogram))
    numbered_key = combine(
        "numbered",
        arcs_key,
        self_times_key,
        "ab1" if options.auto_break_cycles else "ab0",
        str(options.max_removed_arcs),
        *(name for pair in options.static_arcs for name in pair),
        _SEP,
        *(name for pair in options.deleted_arcs for name in pair),
    )
    prop_key = combine("prop", numbered_key, self_times_key)
    profile_key = combine("profile", prop_key, digest_warnings(data))
    return {
        "arcs": arcs_key,
        "spans": spans_key,
        "self_times": self_times_key,
        "numbered": numbered_key,
        "prop": prop_key,
        "profile": profile_key,
    }


def _run_stage(
    stage: Stage, state: PipelineState, trace: PipelineTrace | None
) -> tuple[str, dict[str, int]]:
    """Run one stage, timed and counted; return its journal record."""
    counters: dict[str, int] = {}
    if trace is not None:
        start = time.perf_counter()
        stage.run(state, counters)
        trace.add(
            StageTrace(
                stage.name, time.perf_counter() - start, counters,
                backend=(
                    kernels.default_backend_name() if stage.kernel else ""
                ),
            )
        )
    else:
        stage.run(state, counters)
    return stage.name, counters


def run_analysis(
    data,
    symbols,
    options,
    *,
    trace: PipelineTrace | None = None,
    cache: AnalysisCache | None = None,
):
    """Run the full §4 pipeline; return the assembled Profile.

    Arguments:
        data: the merged :class:`~repro.core.profiledata.ProfileData`.
        symbols: the executable's symbol table.
        options: the :class:`~repro.core.analysis.AnalysisOptions`.
        trace: optional :class:`PipelineTrace` to fill with per-stage
            wall time and counters (cached stages appear with their
            recorded counters and ``cached=True``).
        cache: optional :class:`AnalysisCache` memoizing intermediates
            across calls.  Cached values are shared and must be treated
            as immutable by callers.
    """
    state = PipelineState(data, symbols, options, warnings=list(data.warnings))
    keys = compute_keys(state) if cache is not None else None
    stage_by_name = {s.name: s for s in STAGES}
    backend = kernels.default_backend_name()
    if cache is not None:
        # Seed the geometry spans if a same-layout analysis already
        # built them.  This is a sub-stage memo, not a cache group: a
        # hit only skips the geometry walk inside ``apportion``, never
        # a whole stage, so it deliberately stays out of the trace's
        # cache_hits/cache_misses accounting.
        cached_spans = cache.get("spans", keys["spans"])
        if cached_spans is not None:
            state.spans = cached_spans
    for group in GROUPS:
        if cache is not None:
            record = cache.get(group.kind, keys[group.kind])
            if record is not None:
                value, warnings, journal = record
                group.restore(state, value)
                state.warnings.extend(warnings)
                if trace is not None:
                    trace.cache_hits += 1
                    for name, counters in journal:
                        trace.add(
                            StageTrace(
                                name, 0.0, dict(counters), cached=True,
                                backend=(
                                    backend
                                    if stage_by_name[name].kernel
                                    else ""
                                ),
                            )
                        )
                continue
            if trace is not None:
                trace.cache_misses += 1
        mark = len(state.warnings)
        journal = [
            _run_stage(stage_by_name[name], state, trace)
            for name in group.stages
        ]
        if cache is not None:
            cache.put(
                group.kind,
                keys[group.kind],
                (group.capture(state), state.warnings[mark:], journal),
            )
            if group.kind == "self_times" and state.spans is not None:
                cache.put("spans", keys["spans"], state.spans)
    return state.profile
