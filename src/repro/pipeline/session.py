"""ProfileSession: one image, its gmon inputs, one analysis cache.

Every frontend used to re-implement the same plumbing — load the image,
expand gmon arguments, read (strictly or through the salvaging parser),
merge, lint, analyze.  ``ProfileSession`` is that plumbing, once:

* :meth:`from_image` loads a VM executable or a bare symbol table;
* :meth:`load` expands specs and merges them (fleet tree-reduction, or
  the per-file salvaging loop that keeps each file's
  :class:`~repro.gmon.SalvageReport`);
* :meth:`read_each` reads files individually (what ``repro-check``
  wants — each file is validated on its own, not merged);
* :meth:`lint` runs the :mod:`repro.check` battery against everything
  read so far, folding in the GP4xx diagnostics the readers produced;
* :meth:`analyze` runs the staged §4 pipeline with a session-shared
  :class:`~repro.pipeline.cache.AnalysisCache`, so a frontend that
  analyzes twice (``repro-gprof --lint`` lints, then renders) pays for
  one analysis.

The session accumulates degradation evidence as it reads:
``salvage_reports`` (per recovered file) and ``gmon_diagnostics``
(GP4xx findings), both in input order, both deterministic.
"""

from __future__ import annotations

import json

from repro.core import AnalysisOptions, SymbolTable, analyze
from repro.core.profiledata import ProfileData
from repro.fleet import ProfileAccumulator, expand_inputs, tree_reduce
from repro.gmon import read_gmon, salvage_gmon
from repro.pipeline.cache import AnalysisCache
from repro.pipeline.trace import PipelineTrace


class ProfileSession:
    """The shared read → salvage → merge → lint → analyze entry point.

    Attributes:
        symbols: the image's symbol table (None for sessions that only
            merge — ``repro-merge`` needs no image).
        exe: the VM executable, when the image was one (None for bare
            symbol tables — lint and static crawling need an exe).
        cache: the session's :class:`AnalysisCache`; every
            :meth:`analyze` call shares it.
        paths: every gmon path read so far, in input order.
        salvage_reports: ``(path, SalvageReport)`` for each salvaged
            file, in input order (clean reports included).
        gmon_diagnostics: GP4xx diagnostics gathered while reading
            (salvage drops/repairs, degradation warnings).
    """

    def __init__(
        self,
        symbols: SymbolTable | None,
        exe=None,
        cache: AnalysisCache | None = None,
    ) -> None:
        self.symbols = symbols
        self.exe = exe
        self.cache = cache if cache is not None else AnalysisCache()
        self.paths: list[str] = []
        self.salvage_reports: list[tuple[str, object]] = []
        self.gmon_diagnostics: list = []

    @classmethod
    def from_image(
        cls, path: str, cache: AnalysisCache | None = None
    ) -> "ProfileSession":
        """Open an image file: a VM executable or a bare symbol table."""
        with open(path, encoding="utf-8") as f:
            blob = json.load(f)
        if isinstance(blob, dict) and blob.get("format") == "repro-vmexe-1":
            from repro.machine import Executable

            exe = Executable.from_dict(blob)
            return cls(exe.symbol_table(), exe=exe, cache=cache)
        return cls(SymbolTable.from_dict(blob), cache=cache)

    @classmethod
    def from_executable(
        cls, exe, cache: AnalysisCache | None = None
    ) -> "ProfileSession":
        """Wrap an already-built VM executable."""
        return cls(exe.symbol_table(), exe=exe, cache=cache)

    # -- reading ---------------------------------------------------------

    def load(
        self,
        specs,
        *,
        salvage: bool = False,
        jobs: int | None = None,
        on_incompatible: str = "error",
        per_file_reports: bool = True,
        stats_out: dict | None = None,
    ) -> ProfileData:
        """Expand ``specs`` and merge every input into one ProfileData.

        Strict mode rides the :mod:`repro.fleet` tree reduction (the
        deterministic, parallelizable path).  Salvage mode reads file
        by file so each one's :class:`SalvageReport` survives — they
        land in :attr:`salvage_reports`, their GP4xx findings in
        :attr:`gmon_diagnostics`, and the recovered data merges with
        its degradation warnings attached.  Pass
        ``per_file_reports=False`` to trade the reports for the
        parallel tree reduction (fleet-sized salvage merges); the
        recovered data still carries its degradation warnings.
        ``stats_out`` is handed to :func:`tree_reduce` to collect the
        kernel backend and parse/fold wall-time split.
        """
        paths = expand_inputs(specs)
        self.paths += [str(p) for p in paths]
        if not salvage or not per_file_reports:
            return tree_reduce(
                paths, jobs=jobs, salvage=salvage,
                on_incompatible=on_incompatible,
                stats_out=stats_out,
            )
        from repro.check import salvage_passes

        acc = ProfileAccumulator()
        for p in paths:
            data, report = salvage_gmon(p)
            self.salvage_reports.append((str(p), report))
            self.gmon_diagnostics += salvage_passes(report)
            acc.add_profile(data, source=str(p))
        return acc.result()

    def read_each(self, paths, *, salvage: bool = False) -> list[ProfileData]:
        """Read each gmon file on its own (no merging).

        Diagnostics accumulate exactly as in :meth:`load`; strict reads
        additionally contribute GP4xx degradation findings for files
        that carry salvage warnings from an earlier recovery.
        """
        from repro.check import degradation_passes, salvage_passes

        profiles = []
        for path in paths:
            if salvage:
                data, report = salvage_gmon(path)
                self.salvage_reports.append((str(path), report))
                self.gmon_diagnostics += salvage_passes(report)
            else:
                data = read_gmon(path)
                self.gmon_diagnostics += degradation_passes(data)
            self.paths.append(str(path))
            profiles.append(data)
        return profiles

    # -- checking --------------------------------------------------------

    def lint(self, profiles, labels, *, flow: bool = False):
        """Run the full :mod:`repro.check` battery against this image.

        Requires a VM executable.  The report folds in every GP4xx
        diagnostic the session's readers collected.  With ``flow``
        set, the dataflow battery (GP601–GP605) and the per-profile
        expectation checks (GP610–GP612) run too, reusing this
        session's memoized :meth:`flow` analysis.
        """
        from repro.check import CheckReport, check_executable
        from repro.check.diagnostics import merge_reports
        from repro.errors import ReproError

        if self.exe is None:
            raise ReproError("linting needs a VM executable image")
        report = check_executable(
            self.exe, profiles, labels, flow=flow,
            flow_analysis=self.flow() if flow else None,
        )
        if self.gmon_diagnostics:
            report = merge_reports(
                self.exe.name,
                [report, CheckReport(self.exe.name, self.gmon_diagnostics)],
            )
        return report

    def flow(self):
        """The dataflow analysis of this image, memoized in the cache.

        The whole :class:`~repro.check.flow.FlowAnalysis` — CFGs,
        dominator trees, loops, stack summaries, interval results, and
        the static predicted profile — is one cacheable stage group
        keyed by the image's content digest, so linting and rendering
        in the same session analyze once.
        """
        from repro.check.flow import analyze_flow
        from repro.errors import ReproError
        from repro.pipeline.cache import digest_executable

        if self.exe is None:
            raise ReproError("flow analysis needs a VM executable image")
        key = digest_executable(self.exe)
        cached = self.cache.get("flow", key)
        if cached is not None:
            return cached
        flow = analyze_flow(self.exe)
        self.cache.put("flow", key, flow)
        return flow

    # -- analyzing -------------------------------------------------------

    def analyze(
        self,
        data: ProfileData,
        options: AnalysisOptions | None = None,
        *,
        trace: PipelineTrace | None = None,
    ):
        """Run the staged pipeline with the session-shared cache."""
        return analyze(
            data, self.symbols, options, trace=trace, cache=self.cache
        )
