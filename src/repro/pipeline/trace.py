"""The pipeline trace: the profiler profiling itself.

Every run of the analysis pipeline can carry a :class:`PipelineTrace`.
Each stage appends one :class:`StageTrace` — wall time, integer
counters describing the work done (arcs symbolized, cycles found,
entries assembled, ...), and whether the stage was answered from the
analysis cache instead of recomputed.

Two renderings exist:

* :meth:`PipelineTrace.render_text` — the ``repro-gprof --timings``
  table, a human-facing per-stage breakdown;
* :meth:`PipelineTrace.render_json` — a structured dump for tooling.
  It is deterministic *modulo the timing fields*: strip every
  ``seconds`` value (:meth:`PipelineTrace.stable_dict`) and two runs
  over the same inputs compare equal, which is exactly what the trace
  tests assert.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

FORMAT = "repro-pipeline-trace-1"


@dataclass
class StageTrace:
    """One stage's footprint in a pipeline run.

    Attributes:
        name: the stage's registered name (``symbolize``, ``number``, ...).
        seconds: wall-clock time spent inside the stage; 0.0 when the
            stage was served from the cache.
        counters: integer facts about the work done, keyed by a stable
            counter name.  Cached stages replay the counters recorded
            when the value was first computed.
        cached: True when the stage's output came from the analysis
            cache rather than being recomputed.
        backend: the :mod:`repro.core.kernels` backend that served the
            stage's arithmetic (``"numpy"``, ``"array"``, ``"python"``),
            or ``""`` for stages with no kernel involvement.
    """

    name: str
    seconds: float = 0.0
    counters: dict[str, int] = field(default_factory=dict)
    cached: bool = False
    backend: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form with deterministically-ordered counters."""
        d = {
            "name": self.name,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }
        if self.backend:
            d["backend"] = self.backend
        return d


@dataclass
class PipelineTrace:
    """The complete instrumentation record of one pipeline run."""

    stages: list[StageTrace] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    def add(self, stage: StageTrace) -> None:
        """Append one stage record (called by the runner)."""
        self.stages.append(stage)

    def stage(self, name: str) -> StageTrace | None:
        """The record for stage ``name``, or None if it never ran."""
        for s in self.stages:
            if s.name == name:
                return s
        return None

    def stage_names(self) -> list[str]:
        """Stage names in execution order."""
        return [s.name for s in self.stages]

    @property
    def total_seconds(self) -> float:
        """Wall time summed over all (non-cached) stages."""
        return sum(s.seconds for s in self.stages)

    def to_dict(self) -> dict:
        """JSON-serializable trace, timing fields included."""
        return {
            "format": FORMAT,
            "total_seconds": round(self.total_seconds, 6),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "stages": [s.to_dict() for s in self.stages],
        }

    def stable_dict(self) -> dict:
        """:meth:`to_dict` with every timing field stripped.

        Two runs of the pipeline over the same inputs produce equal
        stable dicts — the determinism contract the trace tests gate.
        """
        d = self.to_dict()
        d.pop("total_seconds")
        for s in d["stages"]:
            s.pop("seconds")
        return d

    def render_json(self) -> str:
        """Deterministic JSON (sorted keys; timing fields still present)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def render_text(self) -> str:
        """The ``--timings`` table: one line per stage, widest first column."""
        lines = [
            f"pipeline timings ({self.total_seconds * 1000:.1f} ms total, "
            f"cache {self.cache_hits} hit(s) / {self.cache_misses} miss(es)):"
        ]
        width = max((len(s.name) for s in self.stages), default=0)
        for s in self.stages:
            counters = " ".join(
                f"{k}={s.counters[k]}" for k in sorted(s.counters)
            )
            mark = "  [cached]" if s.cached else ""
            if s.backend:
                mark += f"  [{s.backend}]"
            lines.append(
                f"  {s.name:<{width}}  {s.seconds * 1000:8.2f} ms"
                f"{mark}  {counters}".rstrip()
            )
        return "\n".join(lines) + "\n"
