"""ProfileAccumulator: the streaming heart of fleet-scale merging.

The paper's multi-run accumulation ("the profile data for several
executions of a program can be combined by the post-processing") was a
handful of ``gmon.out`` files on one disk.  At fleet scale it is
thousands of files per program, and the shape of the old code — parse
every file into ``Histogram``/``RawArc`` objects, then fold pairs of
:class:`~repro.core.profiledata.ProfileData` — pays for object
construction and re-condensing over and over.

The accumulator keeps exactly one bucket accumulator and one
``(from_pc, self_pc) -> count`` table for the whole merge — both are
:mod:`repro.core.kernels` objects, so the per-input arithmetic runs on
the selected backend (python reference / stdlib array / numpy) — and
adds each input into them:

* ``add(path)`` parses the file in wire form
  (:func:`repro.gmon.parse_gmon_raw`) and sums straight out of the
  packed bytes — no ``RawArc``/``Histogram``/``ProfileData`` objects,
  and with the fast backends not even per-bucket ints, are ever built
  for the input;
* ``add(profile)`` accepts an already-materialized
  :class:`~repro.core.profiledata.ProfileData` (e.g. a salvaged one);
* ``merge_from(other)`` combines two partial accumulators, which is
  what the tree-reduction driver (:mod:`repro.fleet.reduce`) does with
  the partial sums coming back from worker processes.  Partials from
  different backends combine through the canonical representations.

``result()`` materializes a ProfileData that is *equal to* — and after
:func:`~repro.gmon.write_gmon`, *byte-identical to* — what
``merge_profiles([read_gmon(p) for p in paths])`` would have produced
for the same inputs in the same order, **for every kernel backend**.
That equivalence is the merge-algebra contract the property suites
(``test_merge_properties``, ``test_kernels_equivalence``) pin down.

Incompatible inputs raise a structured
:class:`~repro.errors.MergeError` carrying the offending path and both
header layouts.  An accumulator that was never fed anything raises the
same ``"cannot merge zero profiles"`` error the legacy API raised for
an empty sequence — the empty accumulator is the merge identity, not a
profile.

``ProfileAccumulator(timed=True)`` additionally splits wall time into
parse vs fold (``repro-merge --stats`` surfaces the split); the
timings ride along through ``merge_from`` so the tree reduction can
report fleet-wide throughput per phase.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Union

from repro.core import kernels
from repro.core.arcs import RawArc
from repro.core.histogram import Histogram
from repro.core.profiledata import ProfileData
from repro.errors import MergeError
from repro.gmon.format import RawGmon, RUNS_ZERO_WARNING, parse_gmon_raw

from repro.fleet.headers import HeaderKey

Addable = Union[ProfileData, RawGmon, str, os.PathLike, bytes]


def _new_timings() -> dict:
    return {"parse_seconds": 0.0, "fold_seconds": 0.0, "inputs": 0,
            "bytes": 0}


class ProfileAccumulator:
    """An incremental, single-table sum of many profiles.

    Attributes:
        key: the :class:`~repro.fleet.headers.HeaderKey` every input
            must match (established by the first input; None while
            empty).
        runs: total executions summed so far.
        profiles_added: number of inputs accumulated (merging another
            accumulator adds its count).
        timings: parse/fold wall-time split when constructed with
            ``timed=True``, else None.
    """

    def __init__(self, backend: str | None = None, *,
                 timed: bool = False) -> None:
        self._kernel = kernels.get_backend(backend)
        self.key: HeaderKey | None = None
        self.runs = 0
        self.profiles_added = 0
        self._buckets = self._kernel.bucket_acc()
        self._arcs = self._kernel.arc_table()
        self._comments: list[str] = []
        self._warnings: list[str] = []
        self.timings: dict | None = _new_timings() if timed else None

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend serving this accumulator."""
        return self._kernel.name

    # -- feeding ---------------------------------------------------------------

    def add(self, item: Addable, source: str | None = None) -> "ProfileAccumulator":
        """Accumulate one input; returns self for chaining.

        ``item`` may be a filesystem path (parsed strictly in wire
        form), raw gmon bytes, a :class:`RawGmon`, or a
        :class:`ProfileData`.  ``source`` labels the input in any
        :class:`MergeError` raised (defaults to the path when one is
        given).
        """
        if isinstance(item, ProfileData):
            return self.add_profile(item, source)
        if isinstance(item, RawGmon):
            return self.add_raw(item, source)
        if isinstance(item, bytes):
            blob = item
        else:
            path = os.fspath(item)
            source = source or str(path)
            with open(path, "rb") as f:
                blob = f.read()
        if self.timings is None:
            return self.add_raw(parse_gmon_raw(blob), source)
        t0 = time.perf_counter()
        raw = parse_gmon_raw(blob)
        self.timings["parse_seconds"] += time.perf_counter() - t0
        self.timings["bytes"] += len(blob)
        return self.add_raw(raw, source)

    def add_raw(self, raw: RawGmon, source: str | None = None) -> "ProfileAccumulator":
        """Accumulate a wire-form profile (the fast path).

        The bucket and arc blobs go straight into the kernel
        accumulators — neither is ever decoded into python objects
        here.
        """
        key = HeaderKey(raw.low_pc, raw.high_pc, raw.nbuckets, raw.profrate)
        self._accept_key(key, source)
        t0 = time.perf_counter() if self.timings is not None else 0.0
        blob = raw.counts_blob
        if blob is not None:
            if raw.nbuckets:
                self._buckets.fold_blob(blob)
        elif raw.counts:
            self._buckets.fold_seq(raw.counts)
        self._arcs.fold_blob(raw.arc_blob)
        if self.timings is not None:
            self.timings["fold_seconds"] += time.perf_counter() - t0
            self.timings["inputs"] += 1
        # Mirror read_gmon's handling of the runs field exactly, so the
        # result is indistinguishable from the parse-then-merge path.
        if raw.runs == 0:
            self._warnings.append(RUNS_ZERO_WARNING)
        self.runs += max(raw.runs, 1)
        if raw.comment:
            self._comments.append(raw.comment)
        self.profiles_added += 1
        return self

    def add_profile(
        self, data: ProfileData, source: str | None = None
    ) -> "ProfileAccumulator":
        """Accumulate a materialized ProfileData (never mutated).

        A salvaged profile's ``warnings`` ride along into the merged
        result — degraded inputs stay visibly degraded.
        """
        h = data.histogram
        key = HeaderKey(h.low_pc, h.high_pc, h.num_buckets, h.profrate)
        self._accept_key(key, source)
        if h.counts:
            self._buckets.fold_seq(h.counts)
        self._arcs.fold_items(
            (a.from_pc, a.self_pc, a.count) for a in data.arcs
        )
        self.runs += data.runs
        if data.comment:
            self._comments.append(data.comment)
        self._warnings.extend(data.warnings)
        self.profiles_added += 1
        return self

    def add_all(
        self, items: Iterable[Addable]
    ) -> "ProfileAccumulator":
        """Accumulate every item of an iterable, in order."""
        for item in items:
            self.add(item)
        return self

    def add_warning(self, warning: str) -> "ProfileAccumulator":
        """Attach a degradation warning to the eventual result.

        The ingest service uses this to restore warnings recorded in a
        journal or checkpoint — evidence that must survive a recovery
        even though the gmon wire format does not carry it.
        """
        self._warnings.append(warning)
        return self

    def merge_from(self, other: "ProfileAccumulator") -> "ProfileAccumulator":
        """Fold another (partial) accumulator into this one.

        Order matters only for the comment/warning concatenation: the
        tree-reduction driver always folds partials in input order, so
        any worker count yields identical output.  The partials need
        not share a kernel backend — folding goes through the
        canonical list/dict forms, which every backend produces
        exactly.
        """
        if other.key is None:
            return self
        if self.key is not None:
            self._accept_key(other.key, None)
        else:
            self.key = other.key
        self._buckets.fold(other._buckets)
        self._arcs.fold(other._arcs)
        self.runs += other.runs
        self._comments.extend(other._comments)
        self._warnings.extend(other._warnings)
        self.profiles_added += other.profiles_added
        if self.timings is not None and other.timings is not None:
            for k, v in other.timings.items():
                self.timings[k] = self.timings.get(k, 0) + v
        return self

    def _accept_key(self, key: HeaderKey, source: str | None) -> None:
        if self.key is None:
            self.key = key
        elif self.key != key:
            raise MergeError(
                f"histogram layout {key.describe()} is incompatible with "
                f"the accumulated layout {self.key.describe()}",
                path=source,
                expected=self.key,
                actual=key,
            )

    # -- results ---------------------------------------------------------------

    @property
    def empty(self) -> bool:
        """True while nothing has been accumulated."""
        return self.key is None

    @property
    def total_ticks(self) -> int:
        """Total PC samples accumulated so far."""
        return self._buckets.total()

    @property
    def distinct_arcs(self) -> int:
        """Distinct (from_pc, self_pc) pairs seen so far."""
        return len(self._arcs)

    def result(self) -> ProfileData:
        """Materialize the merged ProfileData (condensed, sorted arcs)."""
        if self.key is None:
            raise MergeError("cannot merge zero profiles")
        histogram = Histogram(
            self.key.low_pc, self.key.high_pc, self._buckets.to_list(),
            self.key.profrate,
        )
        return ProfileData(
            histogram,
            [RawArc(f, s, c) for (f, s), c in self._arcs.sorted_items()],
            runs=self.runs,
            comment="; ".join(self._comments),
            warnings=list(self._warnings),
        )


def empty_profile_like(data: ProfileData) -> ProfileData:
    """The merge identity for ``data``'s histogram layout.

    Same bounds, bucket count and clock rate, but zero samples, zero
    arcs, zero runs and no comment: ``merge_profiles([p, e])`` equals
    ``merge_profiles([p])`` for every ``p`` sharing the layout.
    """
    h = data.histogram
    return ProfileData(
        Histogram(h.low_pc, h.high_pc, [0] * h.num_buckets, h.profrate),
        [],
        runs=0,
        comment="",
    )
