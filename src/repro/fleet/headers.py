"""Header peeking, digests, and the precheck cache.

Merging a fleet of gmon files dies on the *last* incompatible file if
compatibility is only discovered while summing.  The driver instead
peeks every input's fixed-size header first — a few hundred bytes per
file via :func:`repro.gmon.peek_gmon_header` — and rejects (or skips)
mismatches before any bucket or arc data is parsed.

A :class:`HeaderKey` is the layout identity two profiles must share to
be summable: histogram bounds, bucket count, clock rate.  Its
``digest()`` is a short stable hash of that identity — what the
structured :class:`~repro.errors.MergeError` and the skip log print so
an operator staring at 10,000 paths can grep for the odd one out.

The :class:`HeaderCache` memoizes peeks by ``(size, mtime_ns)`` so
repeated scans over a mostly-static fleet directory (a cron job
re-merging every hour, say) only stat unchanged files.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from dataclasses import dataclass

from repro.gmon.format import GmonHeader, peek_gmon_header

_KEY_PACK = struct.Struct("<QQII")


@dataclass(frozen=True)
class HeaderKey:
    """The summability identity of a profile: its histogram layout."""

    low_pc: int
    high_pc: int
    nbuckets: int
    profrate: int

    @classmethod
    def of(cls, header: GmonHeader) -> "HeaderKey":
        return cls(header.low_pc, header.high_pc, header.nbuckets,
                   header.profrate)

    def digest(self) -> str:
        """A short stable content digest of the layout."""
        packed = _KEY_PACK.pack(
            self.low_pc, self.high_pc, self.nbuckets, self.profrate
        )
        return hashlib.blake2b(packed, digest_size=6).hexdigest()

    def describe(self) -> str:
        """Human-readable layout, digest included."""
        return (
            f"[{self.low_pc:#x},{self.high_pc:#x})x{self.nbuckets}"
            f"@{self.profrate}Hz (digest {self.digest()})"
        )


#: Read/stat retries :meth:`HeaderCache.peek` makes while the file on
#: disk keeps being replaced under it before giving up on caching.
_PEEK_RETRIES = 8


class HeaderCache:
    """Stat-validated memo of peeked headers, keyed by path.

    Safe for concurrent use from several threads, and safe against the
    stat/read race: a file atomically rewritten *between* the stat and
    the header read must never leave the cache pairing one version's
    stat identity with another version's header (a "torn" entry that
    would then be served as a hit for the new file).  ``peek`` brackets
    every read with two stats and only caches when they agree; if the
    file keeps changing it returns the freshest header it read without
    caching it at all.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[int, int, GmonHeader]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def peek(self, path) -> GmonHeader:
        """Header of ``path``, re-read only when the file changed."""
        spath = os.fspath(path)
        st = os.stat(spath)
        ident = (st.st_size, st.st_mtime_ns)
        with self._lock:
            cached = self._entries.get(spath)
            if cached is not None and (cached[0], cached[1]) == ident:
                self.hits += 1
                return cached[2]
            self.misses += 1
        for _ in range(_PEEK_RETRIES):
            header = peek_gmon_header(spath)
            st2 = os.stat(spath)
            after = (st2.st_size, st2.st_mtime_ns)
            if after == ident:
                # The stat identity bracketed the read unchanged: this
                # header really belongs to this (size, mtime) pair.
                with self._lock:
                    self._entries[spath] = (ident[0], ident[1], header)
                return header
            ident = after  # the file was replaced mid-peek; try again
        return header  # still changing: serve it fresh, cache nothing

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def scan_headers(
    paths, cache: HeaderCache | None = None
) -> list[tuple[str, GmonHeader]]:
    """Peek every path's header, in order."""
    if cache is None:  # NB: an empty HeaderCache is falsy (it has __len__)
        cache = HeaderCache()
    return [(os.fspath(p), cache.peek(p)) for p in paths]
