"""repro.fleet — fleet-scale profile aggregation.

The paper combined "the profile data for several executions" so that
short-running routines accumulate visible time; the ROADMAP's
production system needs the same algebra over thousands of ``gmon.out``
files per program.  This package is that scale jump, in three layers:

* :mod:`repro.fleet.accumulator` — :class:`ProfileAccumulator`, a
  streaming single-table merge: one bucket array, one arc table,
  ``add()`` per input, O(total arcs) overall and no per-input object
  materialization when fed paths;
* :mod:`repro.fleet.headers` — header peeking, layout digests and the
  stat-validated :class:`HeaderCache`, so incompatible files are
  rejected (or skipped) from a few hundred bytes before any real
  parsing, with a structured :class:`~repro.errors.MergeError`;
* :mod:`repro.fleet.reduce` — the multiprocessing tree-reduction
  driver: chunk the inputs, stream each chunk through a worker-local
  accumulator, fold the partials in input order.  Output is
  byte-identical for any worker count, and identical to the
  sequential ``merge_profiles([read_gmon(p) ...])`` fold.

The ``repro-merge`` CLI and ``repro-gprof --sum`` sit on top;
``benchmarks/emit_bench.py`` tracks the throughput trajectory in
``BENCH_fleet.json``.
"""

from repro.fleet.accumulator import ProfileAccumulator, empty_profile_like
from repro.fleet.headers import HeaderCache, HeaderKey, scan_headers
from repro.fleet.reduce import (
    expand_inputs,
    merge_paths,
    precheck_headers,
    tree_reduce,
    write_sum,
)

__all__ = [
    "HeaderCache",
    "HeaderKey",
    "ProfileAccumulator",
    "empty_profile_like",
    "expand_inputs",
    "merge_paths",
    "precheck_headers",
    "scan_headers",
    "tree_reduce",
    "write_sum",
]
