"""The tree-reduction merge driver: thousands of gmon files, bounded memory.

Topology: the input paths are split into contiguous chunks (in input
order); each worker streams one chunk through its own
:class:`~repro.fleet.ProfileAccumulator` (memory per worker is one
bucket array plus one arc table, regardless of chunk length); the
partial accumulators are folded in **chunk order** into the final sum.
That order rule is the whole determinism story — workers may finish in
any order on any number of processes, but the reduction always folds
partial[0], partial[1], ... — so the resulting ``gmon.sum`` is
byte-identical whether the merge ran on 1 process or 16, and identical
to the legacy sequential ``merge_profiles([read_gmon(p) ...])``.

Before any bucket data is parsed, a header precheck
(:mod:`repro.fleet.headers`) peeks every file's fixed-size prefix and
either fails fast with a structured :class:`~repro.errors.MergeError`
naming the first incompatible path, or — with
``on_incompatible="skip"`` — drops mismatches with a warning on the
merged result.

Salvage mode (``salvage=True``) reads every input through the
salvaging parser instead: corrupt files contribute their recovered
prefix and their degradation warnings propagate into the merged
``ProfileData.warnings``.
"""

from __future__ import annotations

import glob
import os
from pathlib import Path
from typing import Sequence

from repro.core.profiledata import ProfileData
from repro.errors import GmonFormatError, MergeError
from repro.gmon.format import salvage_gmon_bytes

from repro.fleet.accumulator import ProfileAccumulator
from repro.fleet.headers import HeaderCache, HeaderKey

#: Below this many inputs, process overhead dwarfs the merge itself and
#: the driver stays in-process even when ``jobs`` allows more.
MIN_FILES_PER_WORKER = 32

#: Seconds a partial merge may take before the driver gives up on its
#: worker and re-merges the chunk sequentially (see :func:`tree_reduce`).
DEFAULT_WORKER_TIMEOUT = 300.0

#: Test seam: when set, every worker calls this with its chunk's paths
#: before merging — the regression suite uses it to make a worker
#: ``os._exit`` or hang, in the spirit of
#: :class:`repro.resilience.FaultInjector`.  Propagates to workers via
#: the ``fork`` start method.
_chunk_fault_hook = None


def _dedup_by_inode(matches: list[str]) -> list[str]:
    """Collapse paths that name the same physical file, deterministically.

    Recursive globs can reach one file through many paths when a
    symlink cycle is present (``a/loop -> ..`` makes ``a/loop/a/f``,
    ``a/loop/a/loop/a/f``, ... all resolve to ``a/f`` until the kernel's
    ELOOP limit); merging the same samples dozens of times would be
    silently wrong.  Paths are visited in sorted order and the first
    name for each ``(st_dev, st_ino)`` wins, so the result is a pure
    function of the directory contents, never of enumeration order.
    """
    seen: set[tuple[int, int]] = set()
    kept: list[str] = []
    for p in sorted(matches):
        try:
            st = os.stat(p)
            key = (st.st_dev, st.st_ino)
        except OSError:
            kept.append(p)  # surfaces as the usual error at read time
            continue
        if key in seen:
            continue
        seen.add(key)
        kept.append(p)
    return kept


def expand_inputs(specs: Sequence[str]) -> list[str]:
    """Expand files, glob patterns, and directories into a path list.

    * a path to a regular file is kept as-is (missing files surface as
      the usual ``OSError`` at read time, keeping error messages
      stable);
    * a directory contributes every non-hidden regular file directly
      inside it, sorted by name;
    * a glob pattern (``*``, ``?``, ``[``, including ``**``)
      contributes its matches sorted by name; a pattern matching
      nothing is an error — a typo should not silently merge fewer
      runs.  Recursive (``**``) matches that reach the same physical
      file through several paths — a symlink cycle — are merged once,
      under the lexicographically first name.

    The expansion preserves the order of ``specs``; within one
    directory or glob the order is lexicographic (sorted here, not
    taken from filesystem enumeration), so the same fleet always merges
    in the same order (the determinism contract depends on it).
    """
    paths: list[str] = []
    for spec in specs:
        spec = os.fspath(spec)
        if os.path.isdir(spec):
            entries = sorted(
                e.path
                for e in os.scandir(spec)
                if e.is_file() and not e.name.startswith(".")
            )
            if not entries:
                raise MergeError("directory holds no profile files", path=spec)
            paths.extend(entries)
        elif glob.has_magic(spec):
            matches = [p for p in glob.glob(spec, recursive=True)
                       if os.path.isfile(p)]
            if "**" in spec:
                matches = _dedup_by_inode(matches)
            if not matches:
                raise MergeError("glob pattern matched no files", path=spec)
            paths.extend(sorted(matches))
        else:
            paths.append(spec)
    return paths


def precheck_headers(
    paths: Sequence[str],
    cache: HeaderCache | None = None,
    on_incompatible: str = "error",
    salvage: bool = False,
) -> tuple[list[str], list[str]]:
    """Peek every header; return (mergeable paths, skip warnings).

    With ``on_incompatible="error"`` the first layout mismatch raises a
    structured :class:`MergeError` (path + expected/actual HeaderKey);
    with ``"skip"`` mismatching files are dropped and described in the
    returned warnings.  In salvage mode files whose very header is
    unreadable are left in the list — the salvaging parser deals with
    them — instead of failing the precheck.
    """
    if on_incompatible not in ("error", "skip"):
        raise ValueError(f"unknown on_incompatible {on_incompatible!r}")
    if cache is None:  # NB: an empty HeaderCache is falsy (it has __len__)
        cache = HeaderCache()
    expected: HeaderKey | None = None
    keep: list[str] = []
    warnings: list[str] = []
    for path in paths:
        try:
            key = HeaderKey.of(cache.peek(path))
        except GmonFormatError:
            if salvage:
                # the salvaging reader will recover what it can
                keep.append(os.fspath(path))
                continue
            raise
        if expected is None:
            expected = key
        elif key != expected:
            if on_incompatible == "error":
                raise MergeError(
                    f"histogram layout {key.describe()} is incompatible "
                    f"with the fleet layout {expected.describe()}",
                    path=os.fspath(path),
                    expected=expected,
                    actual=key,
                )
            warnings.append(
                f"{os.fspath(path)}: skipped (layout {key.digest()} != "
                f"fleet layout {expected.digest()})"
            )
            continue
        keep.append(os.fspath(path))
    return keep, warnings


def _merge_chunk(args: tuple[list[str], bool, bool]) -> ProfileAccumulator:
    """Worker body: stream one chunk of paths into a fresh accumulator."""
    paths, salvage, timed = args
    if _chunk_fault_hook is not None:
        _chunk_fault_hook(paths)
    acc = ProfileAccumulator(timed=timed)
    for path in paths:
        if salvage:
            with open(path, "rb") as f:
                data, _report = salvage_gmon_bytes(f.read(), source=str(path))
            acc.add_profile(data, source=str(path))
        else:
            acc.add(path)
    return acc


def _chunked(paths: list[str], nchunks: int) -> list[list[str]]:
    """Split ``paths`` into ``nchunks`` contiguous, near-equal chunks."""
    nchunks = max(min(nchunks, len(paths)), 1)
    size, extra = divmod(len(paths), nchunks)
    chunks, start = [], 0
    for i in range(nchunks):
        end = start + size + (1 if i < extra else 0)
        chunks.append(paths[start:end])
        start = end
    return chunks


def tree_reduce(
    paths: Sequence[str],
    jobs: int | None = None,
    salvage: bool = False,
    precheck: bool = True,
    on_incompatible: str = "error",
    cache: HeaderCache | None = None,
    worker_timeout: float | None = None,
    stats_out: dict | None = None,
) -> ProfileData:
    """Merge many gmon files into one ProfileData, possibly in parallel.

    Arguments:
        paths: gmon files, in merge order (use :func:`expand_inputs`
            to turn globs/directories into such a list).
        jobs: worker processes; None picks ``os.cpu_count()``; 1 (or a
            fleet too small to split) merges in-process.
        salvage: read inputs through the salvaging parser; corrupt
            files contribute their recovered prefix plus warnings.
        precheck: peek all headers first and fail (or skip) early.
        on_incompatible: ``"error"`` (default) or ``"skip"``.
        worker_timeout: seconds to wait for each worker's partial
            before declaring it crashed or hung (default
            :data:`DEFAULT_WORKER_TIMEOUT`).  A chunk whose worker
            never answers — killed, ``os._exit``, wedged — is
            re-merged sequentially in-process with a warning on the
            result, so a dying worker can neither hang the merge nor
            lose its chunk.
        stats_out: optional dict to fill with merge telemetry — the
            kernel backend name plus the fleet-wide parse vs fold
            wall-time split (``repro-merge --stats`` surfaces it).
            Passing one turns on timed accumulators everywhere; with
            workers the per-chunk splits ride home on the partials and
            sum, so the split covers the whole fleet.

    Returns data equal to ``merge_profiles([read_gmon(p) for p in
    paths])`` — byte-identical after :func:`~repro.gmon.write_gmon` —
    for every worker count, including runs where workers crashed.
    """
    paths = [os.fspath(p) for p in paths]
    if not paths:
        raise MergeError("cannot merge zero profiles")
    skip_warnings: list[str] = []
    if precheck:
        paths, skip_warnings = precheck_headers(
            paths, cache=cache, on_incompatible=on_incompatible,
            salvage=salvage,
        )
        if not paths:
            raise MergeError(
                "no mergeable profiles left after the header precheck"
            )
    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = min(jobs, max(len(paths) // MIN_FILES_PER_WORKER, 1))
    timed = stats_out is not None
    fallback_warnings: list[str] = []
    if jobs <= 1:
        acc = _merge_chunk((paths, salvage, timed))
    else:
        import multiprocessing

        if worker_timeout is None:
            worker_timeout = DEFAULT_WORKER_TIMEOUT
        # ~4 chunks per worker keeps the pool busy even when some
        # chunks hit slower storage; results are collected per chunk so
        # one dead worker costs one bounded wait, not a hang.
        chunks = _chunked(paths, jobs * 4)
        partials: list[ProfileAccumulator | None] = [None] * len(chunks)
        failed: list[int] = []
        with multiprocessing.Pool(jobs) as pool:
            pending = [
                pool.apply_async(_merge_chunk, ((c, salvage, timed),))
                for c in chunks
            ]
            for i, res in enumerate(pending):
                try:
                    partials[i] = res.get(worker_timeout)
                except multiprocessing.TimeoutError:
                    # The worker crashed (its task is lost forever) or
                    # is wedged; either way the chunk is re-merged
                    # below and the pool is torn down on context exit
                    # (terminate, bounded), not joined indefinitely.
                    failed.append(i)
        for i in failed:
            fallback_warnings.append(
                f"merge worker for chunk {i + 1}/{len(chunks)} "
                f"({len(chunks[i])} file(s)) did not answer within "
                f"{worker_timeout:g}s (crashed or hung); chunk re-merged "
                "sequentially in-process"
            )
            partials[i] = _merge_chunk((chunks[i], salvage, timed))
        acc = ProfileAccumulator(timed=timed)
        for partial in partials:  # chunk order == input order: deterministic
            acc.merge_from(partial)
    data = acc.result()
    if stats_out is not None:
        stats_out["kernel_backend"] = acc.backend_name
        stats_out.update(acc.timings or {})
    if skip_warnings:
        data.warnings.extend(skip_warnings)
    if fallback_warnings:
        data.warnings.extend(fallback_warnings)
    return data


def merge_paths(
    specs: Sequence[str],
    jobs: int | None = None,
    salvage: bool = False,
    on_incompatible: str = "error",
) -> ProfileData:
    """Convenience front door: expand specs, then :func:`tree_reduce`."""
    return tree_reduce(
        expand_inputs(specs), jobs=jobs, salvage=salvage,
        on_incompatible=on_incompatible,
    )


def write_sum(data: ProfileData, path) -> Path:
    """Write the merged data as ``gmon.sum`` (atomic, like any gmon)."""
    from repro.gmon.format import write_gmon

    write_gmon(data, path)
    return Path(os.fspath(path))
