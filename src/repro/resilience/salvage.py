"""SalvageReport: the structured account of a salvaging parse.

The salvaging gmon reader (``read_gmon(path, mode="salvage")``) never
raises on corrupt input — it recovers the maximal structurally-valid
prefix.  Recovery alone would be dangerous: a profile silently missing
half its arcs looks exactly like a healthy light workload.  The
:class:`SalvageReport` is the other half of the contract: every byte
the reader dropped, every field it repaired, and every anomaly it
tolerated is recorded here, so downstream analysis and reports can say
*this data is degraded and here is how*.

The invariant the fuzz suite enforces: a salvaged profile is either
byte-identical to a strict parse (``report.clean``) or explicitly
flagged (``report.clean`` is False).  No crash, no silent lie.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SalvageReport:
    """What a salvaging parse recovered — and what it could not.

    Attributes:
        source: label of the parsed input (file path, usually).
        total_bytes: size of the input.
        consumed_bytes: how many leading bytes were structurally valid
            and contributed to the recovered :class:`ProfileData`.
        recovered_sections: sections parsed intact, in file order
            (``magic``, ``comment``, ``header``, ``buckets``, ``arcs``).
        dropped: structural losses — records or whole sections that
            were missing or truncated and are absent from the data.
        notes: anomalies repaired or tolerated without data loss
            (replaced comment bytes, trailing garbage, ``runs == 0``).
        buckets_expected: histogram size the header declared, when the
            header was readable.
        buckets_read: bucket counters actually recovered.
        arcs_expected: arc count the arc-table header declared, when
            readable.
        arcs_read: arc records actually recovered.
    """

    source: str = ""
    total_bytes: int = 0
    consumed_bytes: int = 0
    recovered_sections: list[str] = field(default_factory=list)
    dropped: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    buckets_expected: int | None = None
    buckets_read: int = 0
    arcs_expected: int | None = None
    arcs_read: int = 0

    def add_section(self, name: str) -> None:
        """Record that section ``name`` was recovered intact."""
        self.recovered_sections.append(name)

    def add_drop(self, message: str) -> None:
        """Record a structural loss (data absent from the result)."""
        self.dropped.append(message)

    def add_note(self, message: str) -> None:
        """Record a repaired/tolerated anomaly (no data lost)."""
        self.notes.append(message)

    @property
    def clean(self) -> bool:
        """True when the salvage matched a strict parse exactly."""
        return not self.dropped and not self.notes

    @property
    def unsalvageable(self) -> bool:
        """True when nothing at all could be recovered (bad magic)."""
        return "magic" not in self.recovered_sections

    def warnings(self) -> list[str]:
        """The report as degradation warnings for analysis/reports."""
        prefix = f"{self.source}: " if self.source else ""
        return [f"{prefix}salvage: {m}" for m in self.dropped + self.notes]

    def summary(self) -> str:
        """One line: what survived, what did not."""
        if self.unsalvageable:
            return (
                f"unsalvageable ({self.total_bytes} bytes, "
                f"no valid prefix)"
            )
        if self.clean:
            return f"intact ({self.total_bytes} bytes)"
        return (
            f"recovered {self.consumed_bytes}/{self.total_bytes} bytes: "
            f"{self.buckets_read}"
            + (f"/{self.buckets_expected}" if self.buckets_expected is not None else "")
            + " buckets, "
            f"{self.arcs_read}"
            + (f"/{self.arcs_expected}" if self.arcs_expected is not None else "")
            + f" arcs; {len(self.dropped)} drop(s), {len(self.notes)} note(s)"
        )

    def render_text(self) -> str:
        """Multi-line listing: summary, then every drop and note."""
        lines = [f"salvage report: {self.source or '<bytes>'}",
                 f"  {self.summary()}"]
        for message in self.dropped:
            lines.append(f"  dropped: {message}")
        for message in self.notes:
            lines.append(f"  note: {message}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-serializable form (stable field set)."""
        return {
            "format": "repro-salvage-1",
            "source": self.source,
            "total_bytes": self.total_bytes,
            "consumed_bytes": self.consumed_bytes,
            "recovered_sections": list(self.recovered_sections),
            "dropped": list(self.dropped),
            "notes": list(self.notes),
            "buckets_expected": self.buckets_expected,
            "buckets_read": self.buckets_read,
            "arcs_expected": self.arcs_expected,
            "arcs_read": self.arcs_read,
            "clean": self.clean,
            "unsalvageable": self.unsalvageable,
        }
