"""Fault injection for the persistence layer.

Profiles are written by programs that crash, onto disks that fill up,
through buffers that tear.  Rather than hope the recovery code handles
those, this module *manufactures* them: a :class:`FaultInjector` wraps
byte-level file writes and injects one configured fault — truncation,
a bit-flip, a short (dropped-chunk) write, or a mid-write kill — on a
chosen write call.  The gmon writer, the monitor's checkpoint flusher,
and kgmon all accept an injector, so every persistence path in the
system can be crashed on demand by the test suite.

The module also provides the pure corpus builders
(:func:`all_truncations`, :func:`random_bit_flips`) used by
``tests/corrupt_corpus.py`` and the fuzz suite to enumerate corrupted
variants of a valid file.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import BinaryIO, Iterator


class InjectedFault(Exception):
    """A deliberately injected crash (simulated ``kill -9`` mid-write).

    Intentionally *not* a :class:`~repro.errors.ReproError`: it stands
    in for the process dying, which no library error handler would get
    to see either.  Tests catch it where a real deployment would simply
    find the process gone.
    """


@dataclass
class FaultInjector:
    """Injects one configured fault into a byte-level file write.

    Exactly one write call (the ``arm_on_call``-th, counting from 1) is
    faulted; all other calls pass the payload through unchanged, so a
    checkpoint sequence can run normally until the chosen flush dies.

    Attributes:
        truncate_at: silently stop after this many bytes (a torn write
            that nobody noticed — the worst case).
        kill_after: write this many bytes, then raise
            :class:`InjectedFault` (a crash mid-write).
        flip: ``(byte_offset, bit)`` corrupted in flight (media error).
        drop: ``(byte_offset, length)`` silently omitted, shifting the
            rest of the payload earlier (a lost buffer / short write).
        arm_on_call: 1-based index of the write call to fault.
        calls: write calls observed so far (telemetry for tests).
    """

    truncate_at: int | None = None
    kill_after: int | None = None
    flip: tuple[int, int] | None = None
    drop: tuple[int, int] | None = None
    arm_on_call: int = 1
    calls: int = 0

    def write(self, f: BinaryIO, payload: bytes) -> None:
        """Write ``payload`` to ``f``, applying the fault when armed."""
        self.calls += 1
        if self.calls != self.arm_on_call:
            f.write(payload)
            return
        if self.flip is not None:
            offset, bit = self.flip
            mutated = bytearray(payload)
            if 0 <= offset < len(mutated):
                mutated[offset] ^= 1 << (bit & 7)
            payload = bytes(mutated)
        if self.drop is not None:
            offset, length = self.drop
            payload = payload[:offset] + payload[offset + max(length, 0):]
        if self.truncate_at is not None:
            payload = payload[: self.truncate_at]
        if self.kill_after is not None:
            f.write(payload[: self.kill_after])
            f.flush()
            raise InjectedFault(
                f"simulated crash after {min(self.kill_after, len(payload))} "
                f"of {len(payload)} bytes"
            )
        f.write(payload)


# -- corpus builders (pure functions over byte strings) -------------------------


def all_truncations(blob: bytes) -> Iterator[tuple[int, bytes]]:
    """Every proper prefix of ``blob``: ``(cut_position, truncated_bytes)``.

    ``cut_position`` ranges over ``[0, len(blob))`` — the full file is
    not yielded (it is not a corruption).
    """
    for cut in range(len(blob)):
        yield cut, blob[:cut]


def random_bit_flips(
    blob: bytes, n: int, seed: int = 0
) -> Iterator[tuple[int, int, bytes]]:
    """``n`` deterministic single-bit corruptions of ``blob``.

    Yields ``(byte_offset, bit, mutated_bytes)``.  The sequence is a
    pure function of ``seed``, so a corpus can be regenerated bit-for-
    bit for triage.
    """
    if not blob:
        return
    rng = random.Random(seed)
    for _ in range(n):
        offset = rng.randrange(len(blob))
        bit = rng.randrange(8)
        mutated = bytearray(blob)
        mutated[offset] ^= 1 << bit
        yield offset, bit, bytes(mutated)
