"""Crash-safe file persistence: write to a temp file, then rename.

POSIX ``rename(2)`` within a directory is atomic, so a reader of the
destination path sees either the old complete file or the new complete
file — never a torn mixture, no matter when the writer dies.  This is
the invariant the checkpointing monitor relies on: a profiled run
killed mid-flush still leaves the *previous* consistent snapshot.

The injector hook threads the fault-injection harness
(:mod:`repro.resilience.faults`) through the write so tests can kill or
corrupt the write at any byte and then assert the invariant held.
"""

from __future__ import annotations

import os

from repro.resilience.faults import FaultInjector, InjectedFault


def atomic_write_bytes(
    path, payload: bytes, injector: FaultInjector | None = None
) -> None:
    """Write ``payload`` to ``path`` atomically.

    The bytes go to a sibling temp file first and are renamed over
    ``path`` only after a flush+fsync, so a crash at any point leaves
    either the old file or the new one — never a prefix.

    An :class:`InjectedFault` raised by the injector simulates the
    process dying: the temp file is deliberately left behind (as a real
    kill would leave it) and the destination is untouched.  Any other
    failure cleans up the temp file before propagating.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as f:
            if injector is not None:
                injector.write(f, payload)
            else:
                f.write(payload)
            f.flush()
            os.fsync(f.fileno())
    except InjectedFault:
        raise  # simulated kill: leave the debris, destination intact
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    os.replace(tmp, path)
