"""repro.resilience — crash-safe persistence and fault tolerance.

The paper's §3.2 shutdown step condenses the profiling data to a file
"when the profiled program terminates" — which means a crash, a kill,
or a torn write loses (or worse, corrupts) the whole profile.  This
package is the reproduction's answer, in three parts:

* :mod:`repro.resilience.atomic` — write-to-temp-then-rename
  persistence: a reader never observes a half-written file, and a
  writer killed mid-write leaves the previous version intact;
* :mod:`repro.resilience.salvage` — the :class:`SalvageReport`
  record describing what a salvaging reader recovered and, just as
  importantly, what it had to drop ("no crash, no silent lie");
* :mod:`repro.resilience.faults` — a fault-injection harness that
  wraps file writes to simulate truncation, bit-flips, short writes,
  and mid-write kills, so the recovery paths are *tested*, not hoped
  for.

The layer sits below :mod:`repro.gmon` (which uses the atomic writer
and emits salvage reports) and is imported by the VM monitor and
kernel kgmon for periodic checkpoint flushing.
"""

from repro.resilience.atomic import atomic_write_bytes
from repro.resilience.faults import (
    FaultInjector,
    InjectedFault,
    all_truncations,
    random_bit_flips,
)
from repro.resilience.salvage import SalvageReport

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "SalvageReport",
    "all_truncations",
    "atomic_write_bytes",
    "random_bit_flips",
]
