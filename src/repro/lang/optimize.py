"""An optimizing pass for the Rel compiler.

§6's first optimization is a compiler-shaped one ("If this format
routine is expanded inline in the output routine, the overhead of a
function call and return can be saved"), and its drawback is a
profiling story ("the profiling will also become less useful since the
loss of routines will make its output more granular").  This pass
implements the standard local optimizations — constant folding,
algebraic identities, branch pruning, dead code after return — plus
exactly that §6 inline expansion for trivially inlinable routines, so
the trade-off can be *measured* (see tests).

The pass is AST→AST: ``optimize(program, inline=...)`` returns a new
tree that the ordinary code generator consumes.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lang import ast

#: Cap on the body size (statements) of a routine considered for §6
#: inline expansion.
INLINE_BODY_LIMIT = 2


def optimize(program: ast.Program, inline: bool = False) -> ast.Program:
    """Fold constants, prune dead branches, optionally inline.

    Arguments:
        program: the parsed tree (not mutated).
        inline: also perform §6 inline expansion of trivial routines
            (single-``return`` bodies without calls) into their callers.
    """
    functions = [
        replace(fn, body=tuple(_opt_stmts(fn.body))) for fn in program.functions
    ]
    if inline:
        inlinable = _find_inlinable(functions)
        functions = [
            replace(fn, body=_inline_in(fn.body, inlinable, fn.name))
            for fn in functions
        ]
        # §6: a fully-inlined routine disappears from the program (and,
        # later, from the profile — "the loss of routines will make its
        # output more granular").  A routine some call site could not
        # inline (unsafe argument duplication) must of course stay.
        still_called = set()
        for fn in functions:
            _collect_calls(fn.body, still_called)
        functions = [
            fn
            for fn in functions
            if fn.name == "main"
            or fn.name not in inlinable
            or fn.name in still_called
        ]
    result = ast.Program(
        globals_=list(program.globals_),
        arrays=dict(program.arrays),
        functions=functions,
    )
    return result


# -- constant folding ----------------------------------------------------------


def _opt_stmts(stmts) -> list[ast.Stmt]:
    out: list[ast.Stmt] = []
    for stmt in stmts:
        folded = _opt_stmt(stmt)
        out.extend(folded)
        if folded and isinstance(folded[-1], ast.Return):
            break  # §: code after return is unreachable
    return out


def _opt_stmt(stmt: ast.Stmt) -> list[ast.Stmt]:
    if isinstance(stmt, ast.Assign):
        return [replace(stmt, value=_fold(stmt.value))]
    if isinstance(stmt, ast.AssignIndex):
        return [
            replace(stmt, index=_fold(stmt.index), value=_fold(stmt.value))
        ]
    if isinstance(stmt, ast.If):
        cond = _fold(stmt.cond)
        then = tuple(_opt_stmts(stmt.then))
        otherwise = tuple(_opt_stmts(stmt.otherwise))
        if isinstance(cond, ast.Num):
            return list(then if cond.value != 0 else otherwise)
        return [ast.If(cond, then, otherwise, stmt.line)]
    if isinstance(stmt, ast.While):
        cond = _fold(stmt.cond)
        if isinstance(cond, ast.Num) and cond.value == 0:
            return []  # while(0): gone
        return [ast.While(cond, tuple(_opt_stmts(stmt.body)), stmt.line)]
    if isinstance(stmt, ast.Return):
        value = _fold(stmt.value) if stmt.value is not None else None
        return [ast.Return(value, stmt.line)]
    if isinstance(stmt, ast.Print):
        return [ast.Print(_fold(stmt.value), stmt.line)]
    if isinstance(stmt, ast.ExprStmt):
        value = _fold(stmt.value)
        if isinstance(value, (ast.Num, ast.Var)):
            return []  # effect-free statement: gone
        return [ast.ExprStmt(value, stmt.line)]
    return [stmt]  # Burn


def _fold(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.Unary):
        operand = _fold(expr.operand)
        if isinstance(operand, ast.Num):
            if expr.op == "-":
                return ast.Num(-operand.value, expr.line)
            return ast.Num(int(operand.value == 0), expr.line)
        return replace(expr, operand=operand)
    if isinstance(expr, ast.Binary):
        left, right = _fold(expr.left), _fold(expr.right)
        folded = _fold_binary(expr.op, left, right, expr.line)
        if folded is not None:
            return folded
        return replace(expr, left=left, right=right)
    if isinstance(expr, ast.Index):
        return replace(expr, index=_fold(expr.index))
    if isinstance(expr, ast.Call):
        return replace(expr, args=tuple(_fold(a) for a in expr.args))
    return expr


def _fold_binary(op, left, right, line) -> ast.Expr | None:
    lnum = left.value if isinstance(left, ast.Num) else None
    rnum = right.value if isinstance(right, ast.Num) else None
    if lnum is not None and rnum is not None:
        if op in ("/", "%") and rnum == 0:
            return None  # leave the fault to run time
        value = {
            "+": lambda: lnum + rnum,
            "-": lambda: lnum - rnum,
            "*": lambda: lnum * rnum,
            "/": lambda: _trunc(lnum, rnum),
            "%": lambda: lnum - _trunc(lnum, rnum) * rnum,
            "==": lambda: int(lnum == rnum),
            "!=": lambda: int(lnum != rnum),
            "<": lambda: int(lnum < rnum),
            "<=": lambda: int(lnum <= rnum),
            ">": lambda: int(lnum > rnum),
            ">=": lambda: int(lnum >= rnum),
            "&&": lambda: int(bool(lnum) and bool(rnum)),
            "||": lambda: int(bool(lnum) or bool(rnum)),
        }[op]()
        return ast.Num(value, line)
    # algebraic identities (only ones safe without effect analysis:
    # the surviving operand is still evaluated)
    if op == "+" and rnum == 0:
        return left
    if op == "+" and lnum == 0:
        return right
    if op == "-" and rnum == 0:
        return left
    if op == "*" and rnum == 1:
        return left
    if op == "*" and lnum == 1:
        return right
    return None


def _trunc(a: int, b: int) -> int:
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q


# -- §6 inline expansion ----------------------------------------------------------


def _find_inlinable(functions) -> dict[str, ast.Function]:
    """Routines whose whole body is one call-free ``return expr``."""
    table = {}
    for fn in functions:
        if fn.name == "main" or len(fn.body) > INLINE_BODY_LIMIT:
            continue
        if (
            len(fn.body) == 1
            and isinstance(fn.body[0], ast.Return)
            and fn.body[0].value is not None
            and _call_free(fn.body[0].value)
        ):
            table[fn.name] = fn
    return table


def _call_free(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Call):
        return False
    if isinstance(expr, ast.Binary):
        return _call_free(expr.left) and _call_free(expr.right)
    if isinstance(expr, ast.Unary):
        return _call_free(expr.operand)
    if isinstance(expr, ast.Index):
        return _call_free(expr.index)
    return True


def _safe_to_substitute(fn: ast.Function, args) -> bool:
    """Substitution duplicates argument expressions; that is safe only
    when every multiply-used parameter receives a *simple* argument (a
    variable or literal — no work, no effects to duplicate)."""
    counts = {p: 0 for p in fn.params}
    _count_uses(fn.body[0].value, counts)
    for param, arg in zip(fn.params, args):
        if counts[param] > 1 and not isinstance(arg, (ast.Var, ast.Num)):
            return False
    return True


def _collect_calls(node, names: set) -> None:
    """Accumulate every function name called anywhere under ``node``."""
    if isinstance(node, (tuple, list)):
        for item in node:
            _collect_calls(item, names)
    elif isinstance(node, ast.Call):
        names.add(node.name)
        for arg in node.args:
            _collect_calls(arg, names)
    elif isinstance(node, ast.Binary):
        _collect_calls(node.left, names)
        _collect_calls(node.right, names)
    elif isinstance(node, ast.Unary):
        _collect_calls(node.operand, names)
    elif isinstance(node, ast.Index):
        _collect_calls(node.index, names)
    elif isinstance(node, ast.Assign):
        _collect_calls(node.value, names)
    elif isinstance(node, ast.AssignIndex):
        _collect_calls(node.index, names)
        _collect_calls(node.value, names)
    elif isinstance(node, ast.If):
        _collect_calls(node.cond, names)
        _collect_calls(node.then, names)
        _collect_calls(node.otherwise, names)
    elif isinstance(node, ast.While):
        _collect_calls(node.cond, names)
        _collect_calls(node.body, names)
    elif isinstance(node, ast.Return) and node.value is not None:
        _collect_calls(node.value, names)
    elif isinstance(node, (ast.Print, ast.ExprStmt)):
        _collect_calls(node.value, names)


def _count_uses(expr, counts) -> None:
    if isinstance(expr, ast.Var) and expr.name in counts:
        counts[expr.name] += 1
    elif isinstance(expr, ast.Binary):
        _count_uses(expr.left, counts)
        _count_uses(expr.right, counts)
    elif isinstance(expr, ast.Unary):
        _count_uses(expr.operand, counts)
    elif isinstance(expr, ast.Index):
        _count_uses(expr.index, counts)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _count_uses(arg, counts)


def _inline_in(stmts, inlinable, current: str):
    return tuple(_inline_stmt(s, inlinable, current) for s in stmts)


def _inline_stmt(stmt, inlinable, current):
    sub = lambda e: _inline_expr(e, inlinable, current)  # noqa: E731
    if isinstance(stmt, ast.Assign):
        return replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, ast.AssignIndex):
        return replace(stmt, index=sub(stmt.index), value=sub(stmt.value))
    if isinstance(stmt, ast.If):
        return ast.If(
            sub(stmt.cond),
            _inline_in(stmt.then, inlinable, current),
            _inline_in(stmt.otherwise, inlinable, current),
            stmt.line,
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            sub(stmt.cond), _inline_in(stmt.body, inlinable, current), stmt.line
        )
    if isinstance(stmt, ast.Return):
        return replace(
            stmt, value=sub(stmt.value) if stmt.value is not None else None
        )
    if isinstance(stmt, ast.Print):
        return replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, ast.ExprStmt):
        return replace(stmt, value=sub(stmt.value))
    return stmt


def _inline_expr(expr, inlinable, current):
    sub = lambda e: _inline_expr(e, inlinable, current)  # noqa: E731
    if isinstance(expr, ast.Call):
        args = tuple(sub(a) for a in expr.args)
        target = inlinable.get(expr.name)
        if (
            target is not None
            and expr.name != current
            and _safe_to_substitute(target, args)
        ):
            body_expr = target.body[0].value
            mapping = dict(zip(target.params, args))
            return _substitute(body_expr, mapping)
        return replace(expr, args=args)
    if isinstance(expr, ast.Binary):
        return replace(expr, left=sub(expr.left), right=sub(expr.right))
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=sub(expr.operand))
    if isinstance(expr, ast.Index):
        return replace(expr, index=sub(expr.index))
    return expr


def _substitute(expr, mapping):
    if isinstance(expr, ast.Var) and expr.name in mapping:
        return mapping[expr.name]
    if isinstance(expr, ast.Binary):
        return replace(
            expr,
            left=_substitute(expr.left, mapping),
            right=_substitute(expr.right, mapping),
        )
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=_substitute(expr.operand, mapping))
    if isinstance(expr, ast.Index):
        return replace(expr, index=_substitute(expr.index, mapping))
    if isinstance(expr, ast.Call):
        return replace(
            expr, args=tuple(_substitute(a, mapping) for a in expr.args)
        )
    return expr
