"""The optimizer facade: ``optimize(program, level=…, profile=…)``.

The implementation lives in :mod:`repro.lang.passes` as a staged pass
pipeline (const-fold, dead-code, inline, plus the profile-consuming
branch-order / pgo-inline / hot-cold-layout passes).  This module
keeps the stable entry point and its level semantics:

* ``level=0`` — no static optimization;
* ``level=1`` — constant folding, branch pruning, dead-code removal;
* ``level=2`` — level 1 plus §6 inline expansion (static heuristic).

Passing ``profile=`` (a :class:`~repro.lang.feedback.ProfileFeedback`)
adds the profile-guided passes at any level: measured-benefit inlining
replaces the static heuristic, branches reorder onto their measured
fall-through, and functions are laid out hot-first.  Empty or stale
feedback degrades every profile pass to a no-op, so PGO with a useless
profile is exactly the identity transform over the static pipeline.

The historical ``optimize(program, inline=True)`` spelling survives as
a deprecated alias for ``level=2`` (one warning per process).
"""

from __future__ import annotations

import warnings

from repro.lang import ast
from repro.lang.passes import (
    INLINE_BODY_LIMIT,  # noqa: F401  (re-exported: the historical home)
    build_pipeline,
    run_passes,
)

_warned_inline_kwarg = False


def optimize(
    program: ast.Program,
    level: int | None = None,
    profile=None,
    *,
    inline: bool | None = None,
) -> ast.Program:
    """Optimize a parsed program; returns a new tree (input unchanged).

    Arguments:
        program: the parsed tree (not mutated).
        level: 0 (nothing), 1 (fold/prune — the default), or
            2 (fold/prune + §6 inline expansion).
        profile: optional measured feedback
            (:class:`~repro.lang.feedback.ProfileFeedback`); enables
            the profile-guided passes.
        inline: deprecated pre-pipeline spelling — ``inline=True``
            means ``level=2``, ``inline=False`` means ``level=1``.
    """
    global _warned_inline_kwarg
    if isinstance(level, bool):
        # The historical positional call optimize(program, True).
        inline, level = level, None
    if inline is not None:
        if not _warned_inline_kwarg:
            warnings.warn(
                "optimize(program, inline=...) is deprecated; use "
                "optimize(program, level=2) (or level=1 for inline=False)",
                DeprecationWarning,
                stacklevel=2,
            )
            _warned_inline_kwarg = True
        if level is None:
            level = 2 if inline else 1
    if level is None:
        level = 1
    optimized, _traces = run_passes(
        program, build_pipeline(level, profile), profile
    )
    return optimized
