"""The closed §6 loop: measure → optimize → re-measure, hands-free.

The paper frames gprof as half of an iterative cycle — "profiling the
program, eliminating one bottleneck, then finding some other part of
the program that begins to dominate" — with a programmer in the
middle.  :func:`run_pgo` closes that loop mechanically:

1. compile the current tree with monitoring prologues *and* a source
   map, run it, collect gmon data;
2. translate the data into :class:`~repro.lang.feedback.ProfileFeedback`
   (arc counts, §4 masses, branch verdicts);
3. apply the profile-guided passes (branch ordering, benefit-model
   inlining, hot/cold layout);
4. verify the rewritten program is observably identical (same output,
   same final globals) and measure its honest, *unprofiled* cycle
   count;
5. repeat — later rounds profile the already-optimized tree, so a
   bottleneck surfaced by round one's rewrite is found by round two,
   exactly the "some other part begins to dominate" dynamic.

Every step is deterministic: a fixed (source, profile) pair produces
byte-identical assembly on every run, which the pgo benchmark gate
enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.lang import ast
from repro.lang.codegen import generate, generate_mapped
from repro.lang.feedback import ProfileFeedback
from repro.lang.parser import parse
from repro.lang.passes import build_pipeline, merge_counters, run_passes
from repro.machine import Monitor, MonitorConfig, assemble, make_cpu


@dataclass
class PGORound:
    """One trip around the loop."""

    index: int
    samples: int
    calls: int
    cycles_before: int
    cycles_after: int
    counters: dict[str, int] = field(default_factory=dict)
    hints: int = 0
    hot: list[tuple[str, float]] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    identical: bool = True

    @property
    def saved(self) -> int:
        """Cycles shaved off by this round's rewrite."""
        return self.cycles_before - self.cycles_after


@dataclass
class PGOResult:
    """The finished loop: every round plus the final artifacts."""

    name: str
    level: int
    rounds: list[PGORound]
    program: ast.Program
    asm: str
    cycles_baseline: int
    cycles_final: int
    output: list[int]

    @property
    def saved(self) -> int:
        """Total cycles saved versus the pre-PGO baseline."""
        return self.cycles_baseline - self.cycles_final

    @property
    def identical(self) -> bool:
        """Whether every round preserved observable behaviour."""
        return all(r.identical for r in self.rounds)

    @property
    def bottleneck(self) -> str | None:
        """The hottest routine the first measurement found (§6's
        "which routine dominates")."""
        if self.rounds and self.rounds[0].hot:
            return self.rounds[0].hot[0][0]
        return None


def run_pgo(
    source: str,
    *,
    name: str = "a.out",
    level: int = 0,
    rounds: int = 1,
    cycles_per_tick: int = 100,
    engine: str = "fast",
) -> PGOResult:
    """Run the full measure→optimize→re-measure loop on Rel source.

    Arguments:
        source: the program text.
        level: static optimization level applied before the first
            measurement (the loop's baseline).
        rounds: how many measure/rewrite trips to make.
        cycles_per_tick: the monitor's sampling period.
        engine: VM interpreter engine for every run.
    """
    if rounds < 1:
        raise ReproError("run_pgo needs at least one round")
    program = parse(source)
    program, _ = run_passes(program, build_pipeline(level, None))
    baseline = _run_plain(program, name, engine)
    reference = (list(baseline.output), list(baseline.globals))
    cycles_before = baseline.cycles

    done: list[PGORound] = []
    for index in range(1, rounds + 1):
        # 1. the measured run: profiled build of the current tree.
        asm, smap = generate_mapped(program)
        exe = assemble(asm, name=name, profile=True)
        monitor = Monitor(
            MonitorConfig(
                exe.low_pc, exe.high_pc, cycles_per_tick=cycles_per_tick
            )
        )
        cpu = make_cpu(exe, monitor, engine=engine)
        cpu.run()
        data = monitor.mcleanup(comment=name)
        # 2. data → AST-level feedback (against this exact tree).
        fb = ProfileFeedback.from_measurement(
            program, exe, smap, data, cycles_per_tick
        )
        # 3. the profile-guided rewrite.
        optimized, traces = run_passes(program, build_pipeline(0, fb), fb)
        # 4. verification + the honest (unprofiled) measurement.
        after = _run_plain(optimized, name, engine)
        identical = (
            list(after.output) == reference[0]
            and list(after.globals) == reference[1]
        )
        done.append(
            PGORound(
                index=index,
                samples=data.total_ticks,
                calls=data.total_calls,
                cycles_before=cycles_before,
                cycles_after=after.cycles,
                counters=merge_counters(traces),
                hints=len(fb.branch_hints),
                hot=_hot_routines(fb),
                warnings=list(fb.warnings),
                identical=identical,
            )
        )
        program = optimized
        cycles_before = after.cycles

    return PGOResult(
        name=name,
        level=level,
        rounds=done,
        program=program,
        asm=generate(program),
        cycles_baseline=baseline.cycles,
        cycles_final=cycles_before,
        output=reference[0],
    )


def _run_plain(program: ast.Program, name: str, engine: str):
    """An unprofiled run of ``program`` (the honest cycle count)."""
    exe = assemble(generate(program), name=name, profile=False)
    cpu = make_cpu(exe, engine=engine)
    cpu.run()
    return cpu


def _hot_routines(fb: ProfileFeedback, top: int = 3) -> list[tuple[str, float]]:
    """The measured flat-profile leaders, hottest first."""
    if fb.profile is None:
        return []
    return [
        (entry.name, entry.self_seconds)
        for entry in fb.profile.flat_entries[:top]
    ]
