"""Constant folding and algebraic identities (the level-1 workhorse).

Pure expression rewriting: ``2 * 3`` becomes ``6``, ``x + 0`` becomes
``x``.  Statement structure is untouched — an ``if (1)`` keeps its
(now-constant) condition here and is pruned by the dead-code pass,
which keeps each pass's counters honest about what it did.

Every statement rebuild goes through :func:`dataclasses.replace` so
profile-feedback hints (``If.likely``, ``While.rotate``) survive the
rewrite.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lang import ast
from repro.lang.passes.base import Pass


class ConstFoldPass(Pass):
    """Fold constant expressions and apply safe algebraic identities."""

    name = "const-fold"
    provides = ("folded",)

    def run(self, program, feedback, counters):
        self.counters = counters
        functions = [
            replace(fn, body=tuple(self._stmt(s) for s in fn.body))
            for fn in program.functions
        ]
        return replace_program(program, functions)

    # -- statements ------------------------------------------------------

    def _stmts(self, stmts) -> tuple:
        return tuple(self._stmt(s) for s in stmts)

    def _stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.Assign):
            return replace(stmt, value=self._fold(stmt.value))
        if isinstance(stmt, ast.AssignIndex):
            return replace(
                stmt, index=self._fold(stmt.index), value=self._fold(stmt.value)
            )
        if isinstance(stmt, ast.If):
            return replace(
                stmt,
                cond=self._fold(stmt.cond),
                then=self._stmts(stmt.then),
                otherwise=self._stmts(stmt.otherwise),
            )
        if isinstance(stmt, ast.While):
            return replace(
                stmt, cond=self._fold(stmt.cond), body=self._stmts(stmt.body)
            )
        if isinstance(stmt, ast.Return):
            value = self._fold(stmt.value) if stmt.value is not None else None
            return replace(stmt, value=value)
        if isinstance(stmt, (ast.Print, ast.ExprStmt)):
            return replace(stmt, value=self._fold(stmt.value))
        return stmt  # Burn

    # -- expressions -----------------------------------------------------

    def _fold(self, expr: ast.Expr) -> ast.Expr:
        if isinstance(expr, ast.Unary):
            operand = self._fold(expr.operand)
            if isinstance(operand, ast.Num):
                self.counters["folded"] += 1
                if expr.op == "-":
                    return ast.Num(-operand.value, expr.line)
                return ast.Num(int(operand.value == 0), expr.line)
            return replace(expr, operand=operand)
        if isinstance(expr, ast.Binary):
            left, right = self._fold(expr.left), self._fold(expr.right)
            folded = _fold_binary(expr.op, left, right, expr.line)
            if folded is not None:
                self.counters["folded"] += 1
                return folded
            return replace(expr, left=left, right=right)
        if isinstance(expr, ast.Index):
            return replace(expr, index=self._fold(expr.index))
        if isinstance(expr, ast.Call):
            return replace(expr, args=tuple(self._fold(a) for a in expr.args))
        return expr


def replace_program(program: ast.Program, functions) -> ast.Program:
    """A fresh Program with ``functions``; globals/arrays copied."""
    return ast.Program(
        globals_=list(program.globals_),
        arrays=dict(program.arrays),
        functions=list(functions),
    )


def _fold_binary(op, left, right, line) -> ast.Expr | None:
    lnum = left.value if isinstance(left, ast.Num) else None
    rnum = right.value if isinstance(right, ast.Num) else None
    if lnum is not None and rnum is not None:
        if op in ("/", "%") and rnum == 0:
            return None  # leave the fault to run time
        value = {
            "+": lambda: lnum + rnum,
            "-": lambda: lnum - rnum,
            "*": lambda: lnum * rnum,
            "/": lambda: _trunc(lnum, rnum),
            "%": lambda: lnum - _trunc(lnum, rnum) * rnum,
            "==": lambda: int(lnum == rnum),
            "!=": lambda: int(lnum != rnum),
            "<": lambda: int(lnum < rnum),
            "<=": lambda: int(lnum <= rnum),
            ">": lambda: int(lnum > rnum),
            ">=": lambda: int(lnum >= rnum),
            "&&": lambda: int(bool(lnum) and bool(rnum)),
            "||": lambda: int(bool(lnum) or bool(rnum)),
        }[op]()
        return ast.Num(value, line)
    # algebraic identities (only ones safe without effect analysis:
    # the surviving operand is still evaluated)
    if op == "+" and rnum == 0:
        return left
    if op == "+" and lnum == 0:
        return right
    if op == "-" and rnum == 0:
        return left
    if op == "*" and rnum == 1:
        return left
    if op == "*" and lnum == 1:
        return right
    return None


def _trunc(a: int, b: int) -> int:
    q = a // b
    if q < 0 and q * b != a:
        q += 1
    return q
