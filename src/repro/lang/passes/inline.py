"""§6 inline expansion — static heuristic and profile-driven selection.

The paper's first optimization is a compiler-shaped one ("If this
format routine is expanded inline in the output routine, the overhead
of a function call and return can be saved"), and its drawback is a
profiling story ("the profiling will also become less useful since the
loss of routines will make its output more granular").

Two selection policies share one expansion engine:

* **static** (``-O2``, no profile): every safely-inlinable routine is
  expanded — the old ``optimize(program, inline=True)`` behaviour.
* **profile-driven** (feedback present): a candidate is expanded only
  when the measured benefit — arc call count × the per-call linkage
  cost × a body-size discount — clears :data:`MIN_BENEFIT_CYCLES`.
  Routines the profile never saw called stay out-of-line, preserving
  profile granularity exactly where the measurements say it is free
  to keep.

Safety (what *may* be inlined) is unchanged either way: a candidate's
whole body must be one call-free ``return expr``, and substitution
must not duplicate non-trivial argument expressions.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lang import ast
from repro.lang.passes.base import Pass
from repro.lang.passes.fold import replace_program

#: Cap on the body size (statements) of a routine considered for §6
#: inline expansion.
INLINE_BODY_LIMIT = 2

#: Cycles saved per avoided call linkage: CALL (4) + RET (3) + the
#: argument STORE in the prologue (1).  Matches the 8–20 cycles/call
#: band the inline ablation benchmark pins.
LINKAGE_CYCLES = 8

#: A profile-selected candidate must promise at least this many saved
#: cycles (measured calls × LINKAGE_CYCLES) to be worth losing its
#: line in the profile.
MIN_BENEFIT_CYCLES = LINKAGE_CYCLES  # i.e. at least one measured call


class InlinePass(Pass):
    """Expand trivially-inlinable routines into their callers."""

    name = "inline"
    requires = ()
    provides = ("inlined",)
    profile = True  # consumes feedback when present

    def __init__(self, static: bool = False):
        #: Whether to fall back to expand-everything when no usable
        #: feedback is available (the -O2 static policy).
        self.static = static

    def run(self, program, feedback, counters):
        if not Pass.feedback_active(feedback) and not self.static:
            return program  # a true no-op: no policy has data to act on
        candidates = find_inlinable(program.functions)
        counters["candidates"] = len(candidates)
        if Pass.feedback_active(feedback):
            selected = {}
            for name, fn in candidates.items():
                if inline_benefit(fn, feedback.calls_into(name)) >= 0:
                    selected[name] = fn
                else:
                    counters["cold_skipped"] += 1
        else:
            selected = candidates
        if not selected:
            return program
        functions = [
            replace(fn, body=_inline_in(fn.body, selected, fn.name, counters))
            for fn in program.functions
        ]
        # §6: a fully-inlined routine disappears from the program (and,
        # later, from the profile — "the loss of routines will make its
        # output more granular").  A routine some call site could not
        # inline (unsafe argument duplication) must of course stay.
        still_called = set()
        for fn in functions:
            collect_calls(fn.body, still_called)
        kept = [
            fn
            for fn in functions
            if fn.name == "main"
            or fn.name not in selected
            or fn.name in still_called
        ]
        counters["routines_removed"] = len(functions) - len(kept)
        return replace_program(program, kept)


# -- the benefit model ---------------------------------------------------------


def inline_benefit(fn: ast.Function, calls: int) -> float:
    """Net score of inlining ``fn`` given its measured incoming calls.

    The arc-count × body-size model: each avoided call saves the
    linkage cycles, but every expansion duplicates the body at the
    call site, so a bigger body demands proportionally more measured
    calls before it earns its loss of profile granularity.
    Non-negative means "worth it".
    """
    size = _expr_size(fn.body[0].value)
    return calls * LINKAGE_CYCLES - size * MIN_BENEFIT_CYCLES


def _expr_size(expr: ast.Expr) -> int:
    """Node count of an expression — the body-size term of the model."""
    if isinstance(expr, ast.Binary):
        return 1 + _expr_size(expr.left) + _expr_size(expr.right)
    if isinstance(expr, ast.Unary):
        return 1 + _expr_size(expr.operand)
    if isinstance(expr, ast.Index):
        return 1 + _expr_size(expr.index)
    if isinstance(expr, ast.Call):
        return 1 + sum(_expr_size(a) for a in expr.args)
    return 1


# -- candidate discovery -------------------------------------------------------


def find_inlinable(functions) -> dict[str, ast.Function]:
    """Routines whose whole body is one call-free ``return expr``."""
    table = {}
    for fn in functions:
        if fn.name == "main" or len(fn.body) > INLINE_BODY_LIMIT:
            continue
        if (
            len(fn.body) == 1
            and isinstance(fn.body[0], ast.Return)
            and fn.body[0].value is not None
            and _call_free(fn.body[0].value)
        ):
            table[fn.name] = fn
    return table


def _call_free(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.Call):
        return False
    if isinstance(expr, ast.Binary):
        return _call_free(expr.left) and _call_free(expr.right)
    if isinstance(expr, ast.Unary):
        return _call_free(expr.operand)
    if isinstance(expr, ast.Index):
        return _call_free(expr.index)
    return True


def _safe_to_substitute(fn: ast.Function, args) -> bool:
    """Substitution duplicates argument expressions; that is safe only
    when every multiply-used parameter receives a *simple* argument (a
    variable or literal — no work, no effects to duplicate)."""
    counts = {p: 0 for p in fn.params}
    _count_uses(fn.body[0].value, counts)
    for param, arg in zip(fn.params, args):
        if counts[param] > 1 and not isinstance(arg, (ast.Var, ast.Num)):
            return False
    return True


def collect_calls(node, names: set) -> None:
    """Accumulate every function name called anywhere under ``node``."""
    if isinstance(node, (tuple, list)):
        for item in node:
            collect_calls(item, names)
    elif isinstance(node, ast.Call):
        names.add(node.name)
        for arg in node.args:
            collect_calls(arg, names)
    elif isinstance(node, ast.Binary):
        collect_calls(node.left, names)
        collect_calls(node.right, names)
    elif isinstance(node, ast.Unary):
        collect_calls(node.operand, names)
    elif isinstance(node, ast.Index):
        collect_calls(node.index, names)
    elif isinstance(node, ast.Assign):
        collect_calls(node.value, names)
    elif isinstance(node, ast.AssignIndex):
        collect_calls(node.index, names)
        collect_calls(node.value, names)
    elif isinstance(node, ast.If):
        collect_calls(node.cond, names)
        collect_calls(node.then, names)
        collect_calls(node.otherwise, names)
    elif isinstance(node, ast.While):
        collect_calls(node.cond, names)
        collect_calls(node.body, names)
    elif isinstance(node, ast.Return) and node.value is not None:
        collect_calls(node.value, names)
    elif isinstance(node, (ast.Print, ast.ExprStmt)):
        collect_calls(node.value, names)


def _count_uses(expr, counts) -> None:
    if isinstance(expr, ast.Var) and expr.name in counts:
        counts[expr.name] += 1
    elif isinstance(expr, ast.Binary):
        _count_uses(expr.left, counts)
        _count_uses(expr.right, counts)
    elif isinstance(expr, ast.Unary):
        _count_uses(expr.operand, counts)
    elif isinstance(expr, ast.Index):
        _count_uses(expr.index, counts)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            _count_uses(arg, counts)


# -- the expansion engine ------------------------------------------------------


def _inline_in(stmts, inlinable, current: str, counters):
    return tuple(_inline_stmt(s, inlinable, current, counters) for s in stmts)


def _inline_stmt(stmt, inlinable, current, counters):
    sub = lambda e: _inline_expr(e, inlinable, current, counters)  # noqa: E731
    if isinstance(stmt, ast.Assign):
        return replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, ast.AssignIndex):
        return replace(stmt, index=sub(stmt.index), value=sub(stmt.value))
    if isinstance(stmt, ast.If):
        return replace(
            stmt,
            cond=sub(stmt.cond),
            then=_inline_in(stmt.then, inlinable, current, counters),
            otherwise=_inline_in(stmt.otherwise, inlinable, current, counters),
        )
    if isinstance(stmt, ast.While):
        return replace(
            stmt,
            cond=sub(stmt.cond),
            body=_inline_in(stmt.body, inlinable, current, counters),
        )
    if isinstance(stmt, ast.Return):
        return replace(
            stmt, value=sub(stmt.value) if stmt.value is not None else None
        )
    if isinstance(stmt, ast.Print):
        return replace(stmt, value=sub(stmt.value))
    if isinstance(stmt, ast.ExprStmt):
        return replace(stmt, value=sub(stmt.value))
    return stmt


def _inline_expr(expr, inlinable, current, counters):
    sub = lambda e: _inline_expr(e, inlinable, current, counters)  # noqa: E731
    if isinstance(expr, ast.Call):
        args = tuple(sub(a) for a in expr.args)
        target = inlinable.get(expr.name)
        if (
            target is not None
            and expr.name != current
            and _safe_to_substitute(target, args)
        ):
            counters["sites_expanded"] += 1
            body_expr = target.body[0].value
            mapping = dict(zip(target.params, args))
            return _substitute(body_expr, mapping)
        return replace(expr, args=args)
    if isinstance(expr, ast.Binary):
        return replace(expr, left=sub(expr.left), right=sub(expr.right))
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=sub(expr.operand))
    if isinstance(expr, ast.Index):
        return replace(expr, index=sub(expr.index))
    return expr


def _substitute(expr, mapping):
    if isinstance(expr, ast.Var) and expr.name in mapping:
        return mapping[expr.name]
    if isinstance(expr, ast.Binary):
        return replace(
            expr,
            left=_substitute(expr.left, mapping),
            right=_substitute(expr.right, mapping),
        )
    if isinstance(expr, ast.Unary):
        return replace(expr, operand=_substitute(expr.operand, mapping))
    if isinstance(expr, ast.Index):
        return replace(expr, index=_substitute(expr.index, mapping))
    if isinstance(expr, ast.Call):
        return replace(
            expr, args=tuple(_substitute(a, mapping) for a in expr.args)
        )
    return expr
