"""Arc-frequency-guided branch ordering: attach layout hints to the AST.

The feedback layer turns measured histogram mass and call counts into
per-branch decisions — "this if's then-arm ran more than its else-arm",
"this loop averages well over one iteration per entry" — keyed by
``(function name, branch ordinal)`` where the ordinal comes from
:func:`repro.lang.ast.iter_branch_nodes` (the numbering contract
shared with the code generator's source map).  This pass stamps those
decisions onto the tree as ``If.likely`` / ``While.rotate`` hints; the
code generator then emits the measured-likely successor on the
fall-through path and bottom-tests hot loops.

Hints are pure layout advice: the lowering of a hinted branch has the
same instruction count and identical observable behaviour — only the
jump taxes move onto the measured-cold path.
"""

from __future__ import annotations

from dataclasses import replace

from repro.lang import ast
from repro.lang.passes.base import Pass
from repro.lang.passes.fold import replace_program

#: Hint verdicts the feedback layer may record per branch ordinal.
SWAP = "swap"      # If: emit the then-arm on the fall-through path
ROTATE = "rotate"  # While: emit the bottom-tested form


class BranchOrderPass(Pass):
    """Stamp measured-likely-successor hints onto If/While nodes.

    Must run *first* in a feedback pipeline: the ordinals in
    ``feedback.branch_hints`` were assigned on the tree shape that was
    measured, so they must be applied before folding or inlining can
    change that shape.
    """

    name = "branch-order"
    provides = ("branch-hints",)
    profile = True

    def run(self, program, feedback, counters):
        if not Pass.feedback_active(feedback) or not feedback.branch_hints:
            return program
        functions = []
        for fn in program.functions:
            hints = {
                ordinal: verdict
                for (fname, ordinal), verdict in feedback.branch_hints.items()
                if fname == fn.name
            }
            if not hints:
                functions.append(fn)
                continue
            ordinals = {
                id(node): i
                for i, node in enumerate(ast.iter_branch_nodes(fn.body))
            }
            functions.append(
                replace(fn, body=self._stmts(fn.body, ordinals, hints, counters))
            )
        return replace_program(program, functions)

    def _stmts(self, stmts, ordinals, hints, counters) -> tuple:
        out = []
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                verdict = hints.get(ordinals[id(stmt)])
                likely = stmt.likely
                if verdict == SWAP and stmt.otherwise:
                    if likely != "then":
                        counters["reordered_ifs"] += 1
                    likely = "then"
                out.append(
                    replace(
                        stmt,
                        then=self._stmts(stmt.then, ordinals, hints, counters),
                        otherwise=self._stmts(
                            stmt.otherwise, ordinals, hints, counters
                        ),
                        likely=likely,
                    )
                )
            elif isinstance(stmt, ast.While):
                verdict = hints.get(ordinals[id(stmt)])
                rotate = stmt.rotate
                if verdict == ROTATE:
                    if not rotate:
                        counters["rotated_loops"] += 1
                    rotate = True
                out.append(
                    replace(
                        stmt,
                        body=self._stmts(stmt.body, ordinals, hints, counters),
                        rotate=rotate,
                    )
                )
            else:
                out.append(stmt)
        return tuple(out)
