"""The pass protocol: the compiler's analogue of the pipeline stages.

``repro.pipeline.stages`` taught the analysis side to run as named
stages with declared inputs and outputs; the compiler now follows the
same discipline.  A :class:`Pass` is AST → AST, never mutating its
input, and declares what it ``requires`` from and ``provides`` to the
pipeline so :func:`repro.lang.passes.run_passes` can reject a
mis-ordered pipeline instead of silently miscompiling.

A pass that consumes measured feedback sets ``profile = True``; such
passes must be no-ops when the feedback is missing, empty (zero
samples and zero calls), or stale (from a different program version) —
that contract is what makes PGO safe to apply unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast


class Pass:
    """One AST → AST transformation.

    Class attributes:
        name: the pass's stable identifier (appears in traces and CLI
            reports).
        requires: facts that must have been provided by earlier passes.
        provides: facts this pass establishes for later ones.
        profile: True for passes that consume measured feedback.
    """

    name = "?"
    requires: tuple[str, ...] = ()
    provides: tuple[str, ...] = ()
    profile = False

    def run(
        self, program: ast.Program, feedback, counters: dict
    ) -> ast.Program:
        """Return the transformed program (input is never mutated)."""
        raise NotImplementedError

    @staticmethod
    def feedback_active(feedback) -> bool:
        """Whether ``feedback`` carries usable measurements.

        ``None``, stale, and zero-sample feedback all count as absent,
        so every profile pass degrades to the identity transform on
        bad input instead of guessing.
        """
        return feedback is not None and not feedback.empty


@dataclass
class PassTrace:
    """What one pass did: its name and its work counters."""

    name: str
    counters: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        work = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"{self.name}({work})"
