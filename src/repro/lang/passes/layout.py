"""Hot/cold function layout: permute routines by measured self time.

§3.2's histogram spreads each tick across the routines sharing its
bucket, so the sharpness of the flat profile depends on how routines
pack into buckets.  Packing the hot routines contiguously at the front
of the text segment concentrates the samples where the mass is;
never-executed routines sink to a cold tail where their zero-count
buckets stop diluting their neighbours'.

The pass may *only permute* ``program.functions`` — never split, pad,
or reorder within a routine (DESIGN.md records why: the static crawl
and the checker both assume each routine is one contiguous,
declaration-shaped region).  Two more invariants:

* cycle members (from the §4 analysis) stay adjacent, in declaration
  order, and their shared mass is counted once per member's own self
  time — never the cycle total per member;
* ties (and the cold tail) fall back to declaration order, keeping
  the permutation deterministic for byte-identical rebuilds.
"""

from __future__ import annotations

from repro.lang.passes.base import Pass
from repro.lang.passes.fold import replace_program


class HotColdLayoutPass(Pass):
    """Sort functions hottest-first; cold tail keeps declaration order."""

    name = "hot-cold-layout"
    profile = True

    def run(self, program, feedback, counters):
        if not Pass.feedback_active(feedback):
            return program
        decl_index = {fn.name: i for i, fn in enumerate(program.functions)}
        # Group cycle members so they stay adjacent (anchored at the
        # first member's declaration slot, members in declaration order).
        group_of = {}
        for members in feedback.cycle_groups:
            present = sorted(
                (m for m in members if m in decl_index),
                key=decl_index.__getitem__,
            )
            for m in present:
                group_of[m] = tuple(present)
        groups: list[tuple[str, ...]] = []
        seen = set()
        for fn in program.functions:
            if fn.name in seen:
                continue
            group = group_of.get(fn.name, (fn.name,))
            groups.append(group)
            seen.update(group)

        def mass(group: tuple[str, ...]) -> float:
            # Each member contributes its own §4 self seconds exactly
            # once — cycle mass is shared, not multiplied.
            return sum(feedback.self_seconds(name) for name in group)

        def executed(group: tuple[str, ...]) -> bool:
            return any(
                feedback.self_seconds(name) > 0 or feedback.calls_into(name) > 0
                for name in group
            )

        hot = [g for g in groups if executed(g)]
        cold = [g for g in groups if not executed(g)]
        hot.sort(key=lambda g: (-mass(g), decl_index[g[0]]))
        by_name = {fn.name: fn for fn in program.functions}
        ordered = [by_name[name] for g in hot + cold for name in g]
        counters["functions_moved"] = sum(
            1
            for i, fn in enumerate(ordered)
            if decl_index[fn.name] != i
        )
        counters["cold_routines"] = sum(len(g) for g in cold)
        return replace_program(program, ordered)
